//! # dpmsim — the DATE'05 dynamic power management architecture in Rust
//!
//! A from-scratch reproduction of *"SystemC Analysis of a New Dynamic
//! Power Management Architecture"* (M. Conti, DATE 2005): an ACPI-style
//! Power State Machine per IP, a rule-driven Local Energy Manager, a
//! Global Energy Manager with a supplementary fan, and the battery /
//! thermal / workload models needed to regenerate the paper's tables —
//! all running on a SystemC-like discrete-event kernel written in Rust.
//!
//! This meta-crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`units`] | `dpm-units` | simulation time and physical quantities |
//! | [`kernel`] | `dpm-kernel` | discrete-event kernel (signals, events, processes, VCD) |
//! | [`power`] | `dpm-power` | ACPI power states, DVFS, transition costs, break-even |
//! | [`battery`] | `dpm-battery` | battery models and the status monitor |
//! | [`thermal`] | `dpm-thermal` | RC thermal network, fan, temperature sensor |
//! | [`workload`] | `dpm-workload` | task traces and traffic generators |
//! | [`core`] | `dpm-core` | **the paper's contribution**: PSM, LEM, GEM, policies |
//! | [`soc`] | `dpm-soc` | SoC assembly, experiments A1–A4/B/C, reports |
//! | [`campaign`] | `dpm-campaign` | parallel scenario campaigns: grid expansion, aggregation, `dpm` CLI |
//!
//! # Quickstart
//!
//! ```
//! use dpmsim::soc::{build_soc, collect_metrics, SocConfig};
//! use dpmsim::workload::{ActivityLevel, BurstyGenerator, PriorityWeights, TraceGenerator};
//! use dpmsim::units::SimTime;
//!
//! let horizon = SimTime::from_millis(50);
//! let trace = BurstyGenerator::for_activity(ActivityLevel::Low, PriorityWeights::typical_user())
//!     .generate(horizon, 42);
//! let cfg = SocConfig::single_ip(trace);
//! let mut sim = dpmsim::kernel::Simulation::new();
//! let handles = build_soc(&mut sim, &cfg);
//! sim.run_until(horizon);
//! let metrics = collect_metrics(&mut sim, &handles, horizon);
//! assert!(metrics.completed() > 0);
//! ```

#![forbid(unsafe_code)]

pub use dpm_battery as battery;
pub use dpm_campaign as campaign;
pub use dpm_core as core;
pub use dpm_kernel as kernel;
pub use dpm_power as power;
pub use dpm_soc as soc;
pub use dpm_thermal as thermal;
pub use dpm_units as units;
pub use dpm_workload as workload;
