//! Trace persistence round-trip: a workload saved to JSON and reloaded
//! must drive a bit-identical simulation — the property that makes saved
//! traces usable for regression pinning across machines.

use dpmsim::kernel::Simulation;
use dpmsim::soc::{build_soc, collect_metrics, SocConfig, SocMetrics};
use dpmsim::units::SimTime;
use dpmsim::workload::{
    ActivityLevel, BurstyGenerator, PriorityWeights, TaskTrace, TraceGenerator,
};

const HORIZON: SimTime = SimTime::from_millis(80);

fn run(trace: TaskTrace) -> SocMetrics {
    let cfg = SocConfig::single_ip(trace);
    let mut sim = Simulation::new();
    let handles = build_soc(&mut sim, &cfg);
    sim.run_until(HORIZON);
    collect_metrics(&mut sim, &handles, HORIZON)
}

#[test]
fn json_reloaded_trace_replays_bit_identically() {
    let original =
        BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::typical_user())
            .generate(HORIZON, 2024);
    let json = original.to_json().expect("serialize");
    let reloaded = TaskTrace::from_json(&json).expect("deserialize");
    assert_eq!(original, reloaded);

    let a = run(original);
    let b = run(reloaded);
    assert_eq!(a.total_energy, b.total_energy);
    assert_eq!(a.completed(), b.completed());
    assert_eq!(a.mean_temp_elevation, b.mean_temp_elevation);
    let lat_a: Vec<_> = a.per_ip[0]
        .records
        .iter()
        .map(|r| (r.spec.id, r.latency()))
        .collect();
    let lat_b: Vec<_> = b.per_ip[0]
        .records
        .iter()
        .map(|r| (r.spec.id, r.latency()))
        .collect();
    assert_eq!(lat_a, lat_b);
}

#[test]
fn trace_survives_a_disk_round_trip() {
    let original = BurstyGenerator::for_activity(ActivityLevel::Low, PriorityWeights::uniform())
        .generate(HORIZON, 7);
    let path = std::env::temp_dir().join("dpmsim_replay_test.json");
    std::fs::write(&path, original.to_json().unwrap()).expect("write temp file");
    let loaded = TaskTrace::from_json(&std::fs::read_to_string(&path).expect("read back")).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(original, loaded);
    assert_eq!(
        original.stats().total_instructions,
        loaded.stats().total_instructions
    );
}
