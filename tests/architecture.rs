//! Cross-crate integration tests of the full architecture: determinism,
//! controller orderings, power-source behaviour and monitor consistency.

use dpmsim::battery::PowerSource;
use dpmsim::kernel::Simulation;
use dpmsim::power::PowerState;
use dpmsim::soc::{build_soc, collect_metrics, ControllerKind, IpConfig, SocConfig, SocMetrics};
use dpmsim::units::{Energy, Ratio, SimDuration, SimTime};
use dpmsim::workload::{
    ActivityLevel, BurstyGenerator, PriorityWeights, TaskTrace, TraceGenerator,
};

const HORIZON: SimTime = SimTime::from_millis(120);

fn trace(level: ActivityLevel, seed: u64) -> TaskTrace {
    BurstyGenerator::for_activity(level, PriorityWeights::typical_user()).generate(HORIZON, seed)
}

fn run(cfg: &SocConfig) -> SocMetrics {
    let mut sim = Simulation::new();
    let handles = build_soc(&mut sim, cfg);
    sim.run_until(HORIZON);
    collect_metrics(&mut sim, &handles, HORIZON)
}

#[test]
fn identical_configs_replay_identically() {
    let cfg = SocConfig::single_ip(trace(ActivityLevel::High, 5));
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.total_energy, b.total_energy);
    assert_eq!(a.completed(), b.completed());
    assert_eq!(a.mean_temp_elevation, b.mean_temp_elevation);
    let lat_a: Vec<_> = a.per_ip[0].records.iter().map(|r| r.latency()).collect();
    let lat_b: Vec<_> = b.per_ip[0].records.iter().map(|r| r.latency()).collect();
    assert_eq!(lat_a, lat_b, "bit-identical task latencies");
}

#[test]
fn controller_energy_ordering_on_idle_workload() {
    // On a sleep-friendly workload: oracle <= DPM < timeout < always-on.
    // The seed is tuned (crates/soc/examples/seed_search.rs) so the trace
    // drains under every controller before the horizon.
    let t = trace(ActivityLevel::Low, 2);
    let mk = |controller| {
        let mut cfg = SocConfig::single_ip(t.clone()).with_controller(controller);
        cfg.initial_soc = Ratio::new(0.95);
        run(&cfg)
    };
    let dpm = mk(ControllerKind::Dpm);
    let always_on = mk(ControllerKind::AlwaysOn);
    let timeout = mk(ControllerKind::Timeout {
        timeout: SimDuration::from_micros(500),
        state: PowerState::Sl2,
    });
    let oracle = mk(ControllerKind::Oracle);
    assert!(
        dpm.total_energy < always_on.total_energy,
        "DPM {} must beat always-on {}",
        dpm.total_energy,
        always_on.total_energy
    );
    assert!(timeout.total_energy < always_on.total_energy);
    assert!(
        oracle.total_energy < always_on.total_energy * 0.8,
        "the oracle is the energy lower bound among ON1 policies"
    );
    // everyone completes the same trace
    for m in [&dpm, &always_on, &timeout, &oracle] {
        assert_eq!(m.completed(), m.total_tasks());
    }
    // the oracle pays (almost) no latency for its sleeping
    let lat_oracle = oracle.mean_latency().unwrap();
    let lat_base = always_on.mean_latency().unwrap();
    assert!(
        lat_oracle.as_secs_f64() < lat_base.as_secs_f64() * 1.2,
        "oracle {lat_oracle} vs base {lat_base}"
    );
}

#[test]
fn mains_power_runs_fast_and_spares_the_battery() {
    // moderate duty so ON4 stays below saturation and the comparison
    // reflects execution speed, not queueing collapse
    let t = trace(ActivityLevel::Low, 21);
    let mut battery_cfg = SocConfig::single_ip(t.clone());
    battery_cfg.initial_soc = Ratio::new(0.22); // Low: everything at ON4
    let mut mains_cfg = battery_cfg.clone();
    mains_cfg.source = PowerSource::Mains;

    let on_battery = run(&battery_cfg);
    let on_mains = run(&mains_cfg);
    // On mains Table 1's power-supply row selects ON1: far lower latency.
    let lat_batt = on_battery.mean_latency().unwrap();
    let lat_mains = on_mains.mean_latency().unwrap();
    assert!(
        lat_mains.as_secs_f64() * 2.0 < lat_batt.as_secs_f64(),
        "mains {lat_mains} must be much faster than battery-low {lat_batt}"
    );
    // and the battery holds its charge
    assert!(on_mains.final_soc > 0.2199, "soc {}", on_mains.final_soc);
    assert!(on_battery.final_soc < 0.22);
}

#[test]
fn kibam_battery_lasts_longer_on_bursty_loads() {
    let t = trace(ActivityLevel::High, 33);
    let mut linear = SocConfig::single_ip(t.clone());
    linear.battery_capacity = Energy::from_joules(5.0);
    let mut kibam = linear.clone();
    kibam.battery = dpmsim::soc::BatteryKind::Kibam;
    let m_linear = run(&linear);
    let m_kibam = run(&kibam);
    // Recovery during sleep periods keeps the KiBaM total >= linear.
    assert!(
        m_kibam.final_soc >= m_linear.final_soc - 1e-6,
        "kibam {} vs linear {}",
        m_kibam.final_soc,
        m_linear.final_soc
    );
}

#[test]
fn four_ip_soc_under_gem_respects_static_ranks() {
    let ips = (0..4)
        .map(|i| {
            IpConfig::new(
                format!("ip{i}"),
                trace(ActivityLevel::High, 40 + i),
                i as u8 + 1,
            )
        })
        .collect();
    let mut cfg = SocConfig::multi_ip(ips);
    cfg.initial_soc = Ratio::new(0.22); // Low: GEM enables ranks 1-2 only
    let m = run(&cfg);
    assert!(m.per_ip[0].completed() > 0);
    assert!(m.per_ip[1].completed() > 0);
    assert_eq!(m.per_ip[2].completed(), 0);
    assert_eq!(m.per_ip[3].completed(), 0);
}

#[test]
fn energy_accounting_is_consistent_with_battery_drain() {
    let mut cfg = SocConfig::single_ip(trace(ActivityLevel::High, 55));
    cfg.initial_soc = Ratio::new(0.9);
    let mut sim = Simulation::new();
    let handles = build_soc(&mut sim, &cfg);
    sim.run_until(HORIZON);
    let m = collect_metrics(&mut sim, &handles, HORIZON);
    // meter-side total (IP + transitions + fan) ≈ battery-side drain
    let drained = cfg.battery_capacity.as_joules() * (0.9 - m.final_soc);
    let metered = m.total_energy.as_joules();
    let err = (drained - metered).abs() / metered;
    assert!(
        err < 0.02,
        "battery drained {drained} J vs metered {metered} J ({:.1}% off)",
        err * 100.0
    );
}

#[test]
fn psm_residency_covers_the_whole_run() {
    let cfg = SocConfig::single_ip(trace(ActivityLevel::Low, 60));
    let m = run(&cfg);
    let ip = &m.per_ip[0];
    let covered: SimDuration =
        ip.residency.iter().copied().sum::<SimDuration>() + ip.psm.transition_time;
    assert_eq!(covered, HORIZON - SimTime::ZERO);
}

#[test]
fn disabling_sleep_pins_the_ip_awake() {
    let mut cfg = SocConfig::single_ip(trace(ActivityLevel::Low, 70));
    cfg.lem.sleep_enabled = false;
    let m = run(&cfg);
    assert_eq!(m.per_ip[0].low_power_time(), SimDuration::ZERO);
    // and costs energy compared to the sleeping configuration
    let mut sleepy = SocConfig::single_ip(trace(ActivityLevel::Low, 70));
    sleepy.lem.sleep_enabled = true;
    let m_sleepy = run(&sleepy);
    assert!(m_sleepy.total_energy < m.total_energy);
}

#[test]
fn vcd_tracing_captures_psm_activity() {
    let cfg = SocConfig::single_ip(trace(ActivityLevel::Low, 80));
    let mut sim = Simulation::new();
    sim.enable_vcd();
    let handles = build_soc(&mut sim, &cfg);
    sim.trace_signal(handles.ips[0].psm_ports.state);
    sim.trace_signal(handles.battery.soc);
    sim.run_until(HORIZON);
    let vcd = sim.vcd().unwrap();
    assert!(vcd.contains("$var wire 4"), "power state is a 4-bit var");
    assert!(vcd.contains("$var real 64"), "soc is a real var");
    // at least one sleep transition was dumped (state index < 5)
    assert!(vcd.lines().any(|l| l.starts_with("b1") && l.contains('!')));
}
