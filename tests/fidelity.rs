//! Coarse-vs-fine fidelity contract on the paper's Table 2 corpus.
//!
//! The coarse evaluator (`dpm_soc::run_config_coarse`) replaces the
//! event-driven kernel with an analytic dwell-time walk. It is the
//! screening stage of multi-fidelity search, so its value is *relative*
//! accuracy: a cell that wins at fine fidelity must also look good at
//! coarse fidelity. These tests pin that contract on the six hand-wired
//! scenarios of the paper's Table 2:
//!
//! * **Tolerance band** — coarse energy saving stays within a few
//!   percentage points of fine (measured worst case ~1.1 pp; asserted
//!   at 2.5 pp so constant retunes don't flake the suite).
//! * **Rank agreement** — ordering the six scenarios by coarse saving
//!   agrees with the fine ordering up to near-ties (Spearman ≥ 0.9;
//!   A2/A4 differ by ~0.1 pp at fine fidelity and may legally swap).
//!
//! Absolute thermal numbers are *not* pinned: the coarse path models
//! temperature from average power, which is enough for ranking but not
//! for the fine path's transient peaks (see crates/soc/src/coarse.rs).

use dpmsim::soc::experiment::{run_config, scenario_config, table2_row, ScenarioId, HORIZON};
use dpmsim::soc::{run_config_coarse, ControllerKind, SocConfig, SocMetrics};

/// Worst observed gap is ~1.1 pp (scenario A3); leave headroom for
/// power-constant retunes without letting the band go vacuous.
const SAVING_TOLERANCE_PP: f64 = 2.5;

/// One scenario evaluated at both fidelities, DPM vs always-on baseline.
struct Pair {
    id: ScenarioId,
    fine_saving_pct: f64,
    coarse_saving_pct: f64,
    fine: SocMetrics,
    coarse: SocMetrics,
}

fn evaluate(id: ScenarioId) -> Pair {
    let cfg = scenario_config(id);
    let base: SocConfig = cfg.clone().with_controller(ControllerKind::AlwaysOn);
    let fine = run_config(&cfg, HORIZON);
    let fine_row = table2_row(&fine, &run_config(&base, HORIZON));
    let coarse = run_config_coarse(&cfg, HORIZON);
    let coarse_row = table2_row(&coarse, &run_config_coarse(&base, HORIZON));
    Pair {
        id,
        fine_saving_pct: fine_row.energy_saving_pct,
        coarse_saving_pct: coarse_row.energy_saving_pct,
        fine,
        coarse,
    }
}

fn corpus() -> Vec<Pair> {
    ScenarioId::ALL.iter().map(|&id| evaluate(id)).collect()
}

/// Ranks (0 = smallest) of a value slice; ties broken by position,
/// which is fine here because exact ties do not occur in the corpus.
fn ranks(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0usize; values.len()];
    for (rank, &idx) in order.iter().enumerate() {
        out[idx] = rank;
    }
    out
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

#[test]
fn coarse_energy_saving_tracks_fine_within_the_band() {
    for p in corpus() {
        let gap = (p.coarse_saving_pct - p.fine_saving_pct).abs();
        assert!(
            gap <= SAVING_TOLERANCE_PP,
            "{}: coarse saving {:.3}% vs fine {:.3}% — gap {gap:.3} pp exceeds {SAVING_TOLERANCE_PP} pp",
            p.id,
            p.coarse_saving_pct,
            p.fine_saving_pct,
        );
    }
}

#[test]
fn coarse_ranks_the_corpus_like_fine() {
    let pairs = corpus();
    let fine: Vec<f64> = pairs.iter().map(|p| p.fine_saving_pct).collect();
    let coarse: Vec<f64> = pairs.iter().map(|p| p.coarse_saving_pct).collect();
    let rho = spearman(&fine, &coarse);
    assert!(
        rho >= 0.9,
        "rank agreement too weak: Spearman {rho:.3}\nfine: {fine:?}\ncoarse: {coarse:?}"
    );
    // The clear (non-tied) regime calls must agree exactly: battery-Low
    // scenarios save more than their battery-Full siblings, and the
    // multi-IP GEM scenarios save the most — at both fidelities.
    for vals in [&fine, &coarse] {
        let by = |id: ScenarioId| vals[ScenarioId::ALL.iter().position(|&x| x == id).unwrap()];
        assert!(by(ScenarioId::A2) > by(ScenarioId::A1) + 10.0);
        assert!(by(ScenarioId::A4) > by(ScenarioId::A3) + 10.0);
        assert!(by(ScenarioId::B) > by(ScenarioId::A2));
        assert!(by(ScenarioId::C) > by(ScenarioId::A4));
    }
}

#[test]
fn coarse_preserves_task_accounting_and_conserves_time() {
    for p in corpus() {
        // Clairvoyant dwell walk executes the same trace: the work the
        // fine kernel completes must also complete coarsely (the coarse
        // path has no queueing delays, so it can only complete more).
        assert_eq!(p.coarse.total_tasks(), p.fine.total_tasks(), "{}", p.id);
        assert!(
            p.coarse.completed() >= p.fine.completed(),
            "{}: coarse completed {} < fine {}",
            p.id,
            p.coarse.completed(),
            p.fine.completed()
        );
        // Σ residency + transition time covers the horizon exactly.
        for ip in &p.coarse.per_ip {
            let covered = ip
                .residency
                .iter()
                .copied()
                .sum::<dpmsim::units::SimDuration>()
                + ip.psm.transition_time;
            assert_eq!(
                covered,
                HORIZON.saturating_duration_since(dpmsim::units::SimTime::ZERO),
                "{}",
                p.id
            );
        }
    }
}
