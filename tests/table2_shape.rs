//! The paper's Table 2, shape-checked.
//!
//! Absolute percentages depend on power/thermal constants the paper never
//! published, so these tests pin the *qualitative* claims — who wins, by
//! roughly what factor, where the regimes change (see DESIGN.md §5).
//!
//! Two tiers:
//!
//! * **Seed-averaged regime tests** run each battery/thermal condition as
//!   a small campaign grid over several *untuned* workload seeds (via
//!   `dpm-campaign`) and assert on across-seed statistics. This replaces
//!   the old single-seed regime assertions, which held only for seeds
//!   hand-tuned to leave a quiet tail (see tests/README.md).
//! * **Structural tests** (GEM blocking, baseline behaviour, report
//!   rendering) still use the paper's six hand-wired scenarios at the
//!   canonical `SEED_A` — they assert wiring, not seed-sensitive regimes.

use dpmsim::campaign::{
    metric_stat_where, run_campaign_with, BatteryAxis, CampaignResult, CampaignSpec,
    ControllerAxis, Metric, RunnerConfig, StreamingStat, ThermalAxis, TuningAxis, WorkloadAxis,
};
use dpmsim::soc::experiment::{run_scenario, ScenarioId, ScenarioOutcome};
use std::collections::HashMap;
use std::sync::OnceLock;

// ---- seed-averaged regime statistics ---------------------------------

/// Seeds deliberately *not* tuned: the statistics below must hold on an
/// arbitrary handful of seeds, which is the whole point of averaging.
const SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// The paper's battery/thermal conditions, as campaign grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Condition {
    /// A1: battery Full, temperature Low.
    FullCool,
    /// A2: battery Low, temperature Low.
    LowCool,
    /// A3: battery Full, temperature High.
    FullHot,
    /// A4: battery Low, temperature High.
    LowHot,
    /// B-like: four busy IPs under the GEM, battery Low.
    GemLow,
}

impl Condition {
    const ALL: [Condition; 5] = [
        Condition::FullCool,
        Condition::LowCool,
        Condition::FullHot,
        Condition::LowHot,
        Condition::GemLow,
    ];

    fn spec(self) -> CampaignSpec {
        let (initial_soc, thermal, workload, ip_count) = match self {
            Condition::FullCool => (0.95, ThermalAxis::Cool, WorkloadAxis::PaperA, 1),
            Condition::LowCool => (0.22, ThermalAxis::Cool, WorkloadAxis::PaperA, 1),
            Condition::FullHot => (0.95, ThermalAxis::Hot, WorkloadAxis::PaperA, 1),
            Condition::LowHot => (0.22, ThermalAxis::Hot, WorkloadAxis::PaperA, 1),
            Condition::GemLow => (0.22, ThermalAxis::Cool, WorkloadAxis::PaperBusy, 4),
        };
        CampaignSpec {
            name: format!("regime_{self:?}"),
            horizon_ms: 200, // the paper's horizon
            master_seed: 0xDA7E_2005,
            initial_soc,
            controllers: vec![ControllerAxis::Dpm],
            tunings: vec![TuningAxis::Paper],
            workloads: vec![workload],
            seeds: SEEDS.to_vec(),
            batteries: vec![BatteryAxis::Linear],
            thermals: vec![thermal],
            ip_counts: vec![ip_count],
        }
    }
}

fn campaigns() -> &'static HashMap<Condition, CampaignResult> {
    static CELL: OnceLock<HashMap<Condition, CampaignResult>> = OnceLock::new();
    CELL.get_or_init(|| {
        Condition::ALL
            .into_iter()
            .map(|c| {
                let run = run_campaign_with(&c.spec(), &RunnerConfig::default(), None)
                    .expect("regime spec is valid");
                for r in &run.result.results {
                    assert!(r.error.is_none(), "{c:?}: {:?}", r.error);
                }
                (c, run.result)
            })
            .collect()
    })
}

/// Across-seed distribution of one metric under one condition.
fn stat(c: Condition, metric: Metric) -> StreamingStat {
    metric_stat_where(&campaigns()[&c], metric, |_| true)
}

fn mean_saving(c: Condition) -> f64 {
    stat(c, Metric::EnergySavingPct).mean()
}

fn mean_delay(c: Condition) -> f64 {
    stat(c, Metric::DelayOverheadPct).mean()
}

/// Mean completed-task fraction across seeds.
fn mean_completion(c: Condition) -> f64 {
    let mut s = StreamingStat::new();
    for r in &campaigns()[&c].results {
        let m = r.metrics.as_ref().unwrap();
        s.push(m.completed as f64 / m.total_tasks.max(1) as f64);
    }
    s.mean()
}

#[test]
fn every_condition_saves_energy_on_average() {
    for c in Condition::ALL {
        let s = stat(c, Metric::EnergySavingPct);
        assert_eq!(s.count(), SEEDS.len(), "{c:?}: one cell per seed");
        assert!(s.mean() > 10.0, "{c:?}: mean saving {}", s.mean());
        assert!(s.mean() < 100.0, "{c:?}: mean saving must be physical");
        assert!(s.min() > 0.0, "{c:?}: every seed saves ({})", s.min());
        assert!(s.max() < 100.0, "{c:?}: max saving {}", s.max());
    }
}

#[test]
fn battery_low_saves_more_than_battery_full() {
    // paper: A2 (55) > A1 (39), A4 (55) > A3 (39) — the ON4 V² dividend.
    assert!(mean_saving(Condition::LowCool) > mean_saving(Condition::FullCool) + 5.0);
    assert!(mean_saving(Condition::LowHot) > mean_saving(Condition::FullHot) + 5.0);
}

#[test]
fn gem_soc_saves_at_least_as_much_as_a_single_ip() {
    // paper: B (65), C (64) >= A2 (55) — blocked low-priority IPs sleep.
    assert!(mean_saving(Condition::GemLow) + 2.0 >= mean_saving(Condition::LowCool));
}

#[test]
fn battery_low_multiplies_delay() {
    // paper: A2 (339) vs A1 (30) — an order of magnitude, on average.
    let full = mean_delay(Condition::FullCool);
    let low = mean_delay(Condition::LowCool);
    assert!(low > 5.0 * full, "low {low} vs full {full}");
    // and the paper's regime: roughly the ON1/ON4 slowdown, not a
    // saturated queue (tens of thousands of %). Median across seeds —
    // single seeds land anywhere in a heavy-tailed distribution, which
    // is exactly why the old single-seed bound needed a tuned seed.
    let p50 = stat(Condition::LowCool, Metric::DelayOverheadPct).percentile(50.0);
    assert!(p50 > 250.0, "median low-battery delay {p50}");
    assert!(p50 < 1300.0, "median low-battery delay {p50}");
}

#[test]
fn hot_start_delay_is_modest() {
    // paper: A3 (37) sits between A1 (30) and A2 (339): a brief SL1
    // cool-down, then business as usual at full speed.
    assert!(mean_delay(Condition::FullHot) > mean_delay(Condition::FullCool));
    assert!(mean_delay(Condition::FullHot) < 0.5 * mean_delay(Condition::LowCool));
}

#[test]
fn battery_and_heat_combine_in_a4() {
    // paper: A4 ≈ A2 in saving and delay (battery dominates).
    let d_saving = (mean_saving(Condition::LowHot) - mean_saving(Condition::LowCool)).abs();
    assert!(d_saving < 10.0, "saving gap {d_saving}");
    let ratio = mean_delay(Condition::LowHot) / mean_delay(Condition::LowCool);
    assert!((0.8..=2.0).contains(&ratio), "delay ratio {ratio}");
}

#[test]
fn temperature_reduction_everywhere() {
    for c in Condition::ALL {
        let s = stat(c, Metric::TempReductionPct);
        assert!(s.mean() > 0.0, "{c:?}: mean temp reduction {}", s.mean());
        assert!(s.min() > 0.0, "{c:?}: every seed reduces ({})", s.min());
    }
    // cool-start reduction exceeds hot-start reduction (paper: 31 vs 18):
    // a hot die cools in both runs, shrinking the relative gap.
    let cool = stat(Condition::FullCool, Metric::TempReductionPct).mean();
    let hot = stat(Condition::FullHot, Metric::TempReductionPct).mean();
    assert!(cool > hot, "cool {cool} vs hot {hot}");
}

#[test]
fn single_ip_conditions_complete_nearly_everything() {
    // full battery: the LEM runs at ON1 speed and drains every queue
    assert!(mean_completion(Condition::FullCool) > 0.999);
    assert!(mean_completion(Condition::FullHot) > 0.999);
    // battery Low executes at ON4 (4× slower): on *average* the queue
    // still drains by the horizon, though individual untuned seeds may
    // defer a handful of tail tasks — the old single-seed test needed a
    // tuned seed precisely to make that handful zero
    assert!(mean_completion(Condition::LowCool) > 0.9);
    assert!(mean_completion(Condition::LowHot) > 0.9);
}

// ---- structural tests on the paper's six hand-wired scenarios --------

fn outcomes() -> &'static HashMap<ScenarioId, ScenarioOutcome> {
    static CELL: OnceLock<HashMap<ScenarioId, ScenarioOutcome>> = OnceLock::new();
    CELL.get_or_init(|| {
        ScenarioId::ALL
            .into_iter()
            .map(|id| (id, run_scenario(id)))
            .collect()
    })
}

#[test]
fn hand_wired_scenarios_save_energy() {
    for id in ScenarioId::ALL {
        let saving = outcomes()[&id].row.energy_saving_pct;
        assert!(saving > 10.0, "{id}: saving {saving} must be significant");
        assert!(saving < 100.0, "{id}: saving must be physical");
    }
}

#[test]
fn gem_blocks_only_low_priority_ips() {
    let b = &outcomes()[&ScenarioId::B];
    // IP0/IP1 (ranks 1-2) keep running; IP2/IP3 are parked in SL1.
    let completed: Vec<usize> = b.dpm.per_ip.iter().map(|ip| ip.completed()).collect();
    let trace: Vec<usize> = b.dpm.per_ip.iter().map(|ip| ip.trace_len).collect();
    assert!(completed[0] > 0 && completed[1] > 0, "{completed:?}");
    assert_eq!(completed[2], 0, "rank-3 IP must be blocked: {completed:?}");
    assert_eq!(completed[3], 0, "rank-4 IP must be blocked: {completed:?}");
    assert!(trace[2] > 0 && trace[3] > 0, "blocked IPs did have work");
    // blocked IPs spend essentially the whole run in low-power states
    for ip in &b.dpm.per_ip[2..] {
        let low = ip.low_power_time().as_secs_f64();
        let total = b.dpm.horizon.as_secs_f64();
        assert!(low > 0.95 * total, "{}: {low} of {total}", ip.name);
    }
}

#[test]
fn c_swaps_the_victims() {
    let c = &outcomes()[&ScenarioId::C];
    let completed: Vec<usize> = c.dpm.per_ip.iter().map(|ip| ip.completed()).collect();
    assert!(completed[0] > 0 && completed[1] > 0);
    assert_eq!(completed[2] + completed[3], 0);
    // in C the *busy* IPs are the blocked ones, so more work is deferred
    assert!(
        c.row.deferred > outcomes()[&ScenarioId::B].row.deferred,
        "C defers the high-activity traces"
    );
}

#[test]
fn baseline_never_sleeps_and_never_transitions() {
    for id in ScenarioId::ALL {
        let o = &outcomes()[&id];
        for ip in &o.baseline.per_ip {
            assert_eq!(ip.psm.transitions, 0, "{id}/{}", ip.name);
            assert_eq!(
                ip.low_power_time(),
                dpmsim::units::SimDuration::ZERO,
                "{id}/{}",
                ip.name
            );
        }
    }
}

#[test]
fn report_renders_all_scenarios() {
    let all: Vec<ScenarioOutcome> = ScenarioId::ALL
        .into_iter()
        .map(|id| outcomes()[&id].clone())
        .collect();
    let ascii = dpmsim::soc::report::table2_ascii(&all);
    let md = dpmsim::soc::report::table2_markdown(&all);
    let json = dpmsim::soc::report::table2_json(&all).unwrap();
    for id in ScenarioId::ALL {
        assert!(ascii.contains(&id.to_string()));
        assert!(md.contains(&format!("| {id} |")));
        assert!(json.contains(&format!("\"{id}\"")));
    }
}
