//! The paper's Table 2, shape-checked.
//!
//! Absolute percentages depend on power/thermal constants the paper never
//! published, so this test pins the *qualitative* claims — who wins, by
//! roughly what factor, where the regimes change (see DESIGN.md §5).

use dpmsim::soc::experiment::{run_scenario, ScenarioId, ScenarioOutcome};
use std::collections::HashMap;
use std::sync::OnceLock;

fn outcomes() -> &'static HashMap<ScenarioId, ScenarioOutcome> {
    static CELL: OnceLock<HashMap<ScenarioId, ScenarioOutcome>> = OnceLock::new();
    CELL.get_or_init(|| {
        ScenarioId::ALL
            .into_iter()
            .map(|id| (id, run_scenario(id)))
            .collect()
    })
}

fn saving(id: ScenarioId) -> f64 {
    outcomes()[&id].row.energy_saving_pct
}
fn delay(id: ScenarioId) -> f64 {
    outcomes()[&id].row.delay_overhead_pct
}
fn temp_red(id: ScenarioId) -> f64 {
    outcomes()[&id].row.temp_reduction_pct
}

#[test]
fn every_scenario_saves_energy() {
    for id in ScenarioId::ALL {
        assert!(
            saving(id) > 10.0,
            "{id}: saving {} must be significant",
            saving(id)
        );
        assert!(saving(id) < 100.0, "{id}: saving must be physical");
    }
}

#[test]
fn battery_low_saves_more_than_battery_full() {
    // paper: A2 (55) > A1 (39), A4 (55) > A3 (39) — the ON4 V² dividend.
    assert!(saving(ScenarioId::A2) > saving(ScenarioId::A1) + 5.0);
    assert!(saving(ScenarioId::A4) > saving(ScenarioId::A3) + 5.0);
}

#[test]
fn gem_scenarios_save_at_least_as_much_as_a2() {
    // paper: B (65), C (64) >= A2 (55) — blocked low-priority IPs sleep.
    assert!(saving(ScenarioId::B) + 2.0 >= saving(ScenarioId::A2));
    assert!(saving(ScenarioId::C) + 2.0 >= saving(ScenarioId::A2));
}

#[test]
fn battery_low_multiplies_delay() {
    // paper: A2 (339) vs A1 (30) — an order of magnitude.
    assert!(
        delay(ScenarioId::A2) > 5.0 * delay(ScenarioId::A1),
        "A2 {} vs A1 {}",
        delay(ScenarioId::A2),
        delay(ScenarioId::A1)
    );
    // and the paper's regime: roughly the ON1/ON4 slowdown (4x => 300%),
    // not a saturated queue (thousands of %)
    assert!(delay(ScenarioId::A2) > 250.0);
    assert!(delay(ScenarioId::A2) < 800.0);
}

#[test]
fn hot_start_delay_is_modest() {
    // paper: A3 (37) sits between A1 (30) and A2 (339): a brief SL1
    // cool-down, then business as usual at full speed.
    assert!(delay(ScenarioId::A3) > delay(ScenarioId::A1));
    assert!(delay(ScenarioId::A3) < 0.5 * delay(ScenarioId::A2));
}

#[test]
fn battery_and_heat_combine_in_a4() {
    // paper: A4 ≈ A2 in saving and delay (battery dominates).
    assert!((saving(ScenarioId::A4) - saving(ScenarioId::A2)).abs() < 10.0);
    assert!(delay(ScenarioId::A4) >= delay(ScenarioId::A2) * 0.8);
    assert!(delay(ScenarioId::A4) <= delay(ScenarioId::A2) * 2.0);
}

#[test]
fn temperature_reduction_everywhere() {
    for id in ScenarioId::ALL {
        assert!(temp_red(id) > 0.0, "{id}: temp reduction {}", temp_red(id));
    }
    // cool-start reduction exceeds hot-start reduction (paper: 31 vs 18):
    // a hot die cools in both runs, shrinking the relative gap.
    assert!(temp_red(ScenarioId::A1) > temp_red(ScenarioId::A3));
}

#[test]
fn a_scenarios_complete_everything() {
    for id in [
        ScenarioId::A1,
        ScenarioId::A2,
        ScenarioId::A3,
        ScenarioId::A4,
    ] {
        let o = &outcomes()[&id];
        assert_eq!(
            o.row.completed.0, o.row.completed.1,
            "{id}: DPM must complete what the baseline completes"
        );
        assert_eq!(o.row.deferred, 0, "{id}: nothing deferred at the horizon");
    }
}

#[test]
fn gem_blocks_only_low_priority_ips() {
    let b = &outcomes()[&ScenarioId::B];
    // IP0/IP1 (ranks 1-2) keep running; IP2/IP3 are parked in SL1.
    let completed: Vec<usize> = b.dpm.per_ip.iter().map(|ip| ip.completed()).collect();
    let trace: Vec<usize> = b.dpm.per_ip.iter().map(|ip| ip.trace_len).collect();
    assert!(completed[0] > 0 && completed[1] > 0, "{completed:?}");
    assert_eq!(completed[2], 0, "rank-3 IP must be blocked: {completed:?}");
    assert_eq!(completed[3], 0, "rank-4 IP must be blocked: {completed:?}");
    assert!(trace[2] > 0 && trace[3] > 0, "blocked IPs did have work");
    // blocked IPs spend essentially the whole run in low-power states
    for ip in &b.dpm.per_ip[2..] {
        let low = ip.low_power_time().as_secs_f64();
        let total = b.dpm.horizon.as_secs_f64();
        assert!(low > 0.95 * total, "{}: {low} of {total}", ip.name);
    }
}

#[test]
fn c_swaps_the_victims() {
    let c = &outcomes()[&ScenarioId::C];
    let completed: Vec<usize> = c.dpm.per_ip.iter().map(|ip| ip.completed()).collect();
    assert!(completed[0] > 0 && completed[1] > 0);
    assert_eq!(completed[2] + completed[3], 0);
    // in C the *busy* IPs are the blocked ones, so more work is deferred
    assert!(
        c.row.deferred > outcomes()[&ScenarioId::B].row.deferred,
        "C defers the high-activity traces"
    );
}

#[test]
fn baseline_never_sleeps_and_never_transitions() {
    for id in ScenarioId::ALL {
        let o = &outcomes()[&id];
        for ip in &o.baseline.per_ip {
            assert_eq!(ip.psm.transitions, 0, "{id}/{}", ip.name);
            assert_eq!(
                ip.low_power_time(),
                dpmsim::units::SimDuration::ZERO,
                "{id}/{}",
                ip.name
            );
        }
    }
}

#[test]
fn report_renders_all_scenarios() {
    let all: Vec<ScenarioOutcome> = ScenarioId::ALL
        .into_iter()
        .map(|id| outcomes()[&id].clone())
        .collect();
    let ascii = dpmsim::soc::report::table2_ascii(&all);
    let md = dpmsim::soc::report::table2_markdown(&all);
    let json = dpmsim::soc::report::table2_json(&all).unwrap();
    for id in ScenarioId::ALL {
        assert!(ascii.contains(&id.to_string()));
        assert!(md.contains(&format!("| {id} |")));
        assert!(json.contains(&format!("\"{id}\"")));
    }
}
