//! Property-based tests of the workload generators and traces.

use dpm_units::SimTime;
use dpm_workload::{
    ActivityLevel, BurstyGenerator, Dist, PeriodicGenerator, PoissonGenerator, Priority,
    PriorityWeights, TraceGenerator,
};
use proptest::prelude::*;

fn horizon_strategy() -> impl Strategy<Value = SimTime> {
    (1u64..500).prop_map(SimTime::from_millis)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bursty_traces_are_valid(seed in 0u64..1000, horizon in horizon_strategy()) {
        let g = BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::typical_user());
        let trace = g.generate(horizon, seed);
        prop_assert!(trace.is_sorted_by_arrival());
        prop_assert!(trace.tasks().iter().all(|t| t.arrival < horizon));
        prop_assert!(trace.tasks().iter().all(|t| t.instructions > 0));
        // ids unique and dense
        let ids: Vec<u64> = trace.tasks().iter().map(|t| t.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn generation_is_a_pure_function_of_seed(seed in 0u64..1000) {
        let g = BurstyGenerator::for_activity(ActivityLevel::Low, PriorityWeights::uniform());
        let h = SimTime::from_millis(100);
        prop_assert_eq!(g.generate(h, seed), g.generate(h, seed));
    }

    #[test]
    fn longer_horizons_extend_traces_prefix_stable(seed in 0u64..200) {
        // generating to 2x the horizon must reproduce the shorter trace as
        // a prefix (the RNG stream is arrival-ordered)
        let g = BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::uniform());
        let short = g.generate(SimTime::from_millis(50), seed);
        let long = g.generate(SimTime::from_millis(100), seed);
        prop_assert!(long.len() >= short.len());
        for (a, b) in short.tasks().iter().zip(long.tasks()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn poisson_rate_scales_with_interarrival(mean_us in 50.0..2000.0f64, seed in 0u64..100) {
        let g = PoissonGenerator {
            mean_interarrival_us: mean_us,
            task_instructions: Dist::Constant(1000.0),
            mix: dpm_power::InstructionMix::default(),
            priorities: PriorityWeights::uniform(),
        };
        let horizon_ms = 400u64;
        let trace = g.generate(SimTime::from_millis(horizon_ms), seed);
        let expected = (horizon_ms as f64 * 1e3) / mean_us;
        let n = trace.len() as f64;
        // 5-sigma band of a Poisson count
        let sigma = expected.sqrt();
        prop_assert!((n - expected).abs() < 5.0 * sigma + 5.0, "n={n} expected={expected}");
    }

    #[test]
    fn periodic_counts_exactly(period_us in 100u64..5000, horizon_ms in 1u64..100) {
        let g = PeriodicGenerator::exact(
            dpm_units::SimDuration::from_micros(period_us),
            500,
            Priority::Medium,
        );
        let horizon = SimTime::from_millis(horizon_ms);
        let trace = g.generate(horizon, 0);
        // arrivals at period, 2*period, ... < horizon
        let expected = (horizon.as_ps().saturating_sub(1)) / (period_us * 1_000_000);
        prop_assert_eq!(trace.len() as u64, expected);
    }

    #[test]
    fn priority_only_weights_are_respected(seed in 0u64..100) {
        for p in Priority::ALL {
            let g = PoissonGenerator {
                mean_interarrival_us: 200.0,
                task_instructions: Dist::Constant(100.0),
                mix: dpm_power::InstructionMix::default(),
                priorities: PriorityWeights::only(p),
            };
            let trace = g.generate(SimTime::from_millis(20), seed);
            prop_assert!(trace.tasks().iter().all(|t| t.priority == p));
        }
    }

    #[test]
    fn json_roundtrip_any_trace(seed in 0u64..200) {
        let g = BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::typical_user());
        let trace = g.generate(SimTime::from_millis(30), seed);
        let json = trace.to_json().unwrap();
        let back = dpm_workload::TaskTrace::from_json(&json).unwrap();
        prop_assert_eq!(back, trace);
    }
}
