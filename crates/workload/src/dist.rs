//! Seedable scalar distributions.
//!
//! Implemented from first principles (inverse transform, Box–Muller) to
//! keep the workspace's dependency set to the sanctioned crates.

use rand::{Rng, RngExt};

/// A distribution over non-negative reals (samples are clamped at zero
/// where the support allows negative values).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Dist {
    /// Always `value`.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (inverse transform).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Pareto with scale `x_m` and shape `alpha` (heavy-tailed idle gaps).
    Pareto {
        /// Minimum value (scale).
        scale: f64,
        /// Tail index; smaller is heavier. Must exceed zero.
        shape: f64,
    },
    /// Normal via Box–Muller, clamped at zero.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
}

impl Dist {
    /// Draws one sample.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or inconsistent parameters (checked lazily so
    /// configs can be deserialized before validation).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => {
                assert!(v.is_finite(), "constant sample must be finite");
                v
            }
            Dist::Uniform { lo, hi } => {
                assert!(
                    lo.is_finite() && hi.is_finite() && lo < hi,
                    "bad uniform bounds"
                );
                rng.random_range(lo..hi)
            }
            Dist::Exponential { mean } => {
                assert!(
                    mean > 0.0 && mean.is_finite(),
                    "exponential mean must be positive"
                );
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
            Dist::Pareto { scale, shape } => {
                assert!(
                    scale > 0.0 && shape > 0.0 && scale.is_finite() && shape.is_finite(),
                    "bad pareto parameters"
                );
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                scale / u.powf(1.0 / shape)
            }
            Dist::Normal { mean, std_dev } => {
                assert!(std_dev >= 0.0 && mean.is_finite(), "bad normal parameters");
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mean + std_dev * z).max(0.0)
            }
        }
    }

    /// The analytic mean (Pareto with `shape <= 1` has none and returns
    /// infinity; Normal's clamping at zero is ignored).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { mean } => mean,
            Dist::Pareto { scale, shape } => {
                if shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::Normal { mean, .. } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD0E5)
    }

    fn empirical_mean(d: Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(Dist::Constant(2.5).sample(&mut r), 2.5);
        }
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 6.0 };
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((2.0..6.0).contains(&x));
        }
        assert!((empirical_mean(d, 20_000) - 4.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::Exponential { mean: 3.0 };
        assert!((empirical_mean(d, 50_000) - 3.0).abs() < 0.1);
        let mut r = rng();
        assert!((0..1000).all(|_| d.sample(&mut r) >= 0.0));
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Dist::Pareto {
            scale: 1.5,
            shape: 2.5,
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 1.5);
        }
        // analytic mean = 2.5*1.5/1.5 = 2.5
        assert!((empirical_mean(d, 100_000) - 2.5).abs() < 0.1);
        assert!(Dist::Pareto {
            scale: 1.0,
            shape: 0.8
        }
        .mean()
        .is_infinite());
    }

    #[test]
    fn normal_mean_and_clamp() {
        let d = Dist::Normal {
            mean: 5.0,
            std_dev: 1.0,
        };
        assert!((empirical_mean(d, 50_000) - 5.0).abs() < 0.05);
        // heavily negative mean clamps at zero
        let clamped = Dist::Normal {
            mean: -10.0,
            std_dev: 1.0,
        };
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(clamped.sample(&mut r), 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Dist::Exponential { mean: 1.0 };
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bad uniform bounds")]
    fn inverted_uniform_rejected() {
        let mut r = rng();
        let _ = Dist::Uniform { lo: 5.0, hi: 1.0 }.sample(&mut r);
    }
}
