//! Task descriptions.

use core::fmt;

use dpm_power::InstructionMix;
use dpm_units::SimTime;

use crate::priority::Priority;

/// Identifier of a task within one IP's trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// One task of a traffic-generator sequence: a burst of instructions with
/// a priority, arriving at a fixed instant.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TaskSpec {
    /// Identifier, unique within the trace.
    pub id: TaskId,
    /// Arrival (service-request) time.
    pub arrival: SimTime,
    /// Number of instructions to execute.
    pub instructions: u64,
    /// Instruction class blend (drives energy and CPI).
    pub mix: InstructionMix,
    /// User-defined priority forwarded to the LEM.
    pub priority: Priority,
}

impl TaskSpec {
    /// A new task.
    ///
    /// # Panics
    ///
    /// Panics on a zero instruction count (empty tasks break latency
    /// accounting).
    pub fn new(
        id: TaskId,
        arrival: SimTime,
        instructions: u64,
        mix: InstructionMix,
        priority: Priority,
    ) -> Self {
        assert!(
            instructions > 0,
            "a task must execute at least one instruction"
        );
        Self {
            id,
            arrival,
            instructions,
            mix,
            priority,
        }
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{} ({} instr, {} priority)",
            self.id, self.arrival, self.instructions, self.priority
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let t = TaskSpec::new(
            TaskId(3),
            SimTime::from_micros(10),
            1000,
            InstructionMix::default(),
            Priority::High,
        );
        assert_eq!(t.to_string(), "task#3 @10 us (1000 instr, High priority)");
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_task_rejected() {
        let _ = TaskSpec::new(
            TaskId(0),
            SimTime::ZERO,
            0,
            InstructionMix::default(),
            Priority::Low,
        );
    }

    #[test]
    fn serde_roundtrip() {
        let t = TaskSpec::new(
            TaskId(1),
            SimTime::from_nanos(5),
            42,
            InstructionMix::typical_streaming(),
            Priority::VeryHigh,
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: TaskSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
