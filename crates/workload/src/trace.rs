//! Pre-generated task sequences and their statistics.

use dpm_units::{SimDuration, SimTime};

use crate::task::TaskSpec;

/// An arrival-ordered task sequence for one IP.
///
/// Traces are generated before simulation so the DPM run and the
/// always-max-frequency baseline replay identical arrivals, and they can
/// be saved/loaded as JSON for regression pinning.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct TaskTrace {
    tasks: Vec<TaskSpec>,
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceStats {
    /// Number of tasks.
    pub count: usize,
    /// Total instructions across all tasks.
    pub total_instructions: u64,
    /// Mean inter-arrival time (zero for traces with < 2 tasks).
    pub mean_interarrival: SimDuration,
    /// Arrival of the first task.
    pub first_arrival: SimTime,
    /// Arrival of the last task.
    pub last_arrival: SimTime,
}

impl TaskTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace from tasks, sorted by arrival.
    ///
    /// # Panics
    ///
    /// Panics on duplicate task ids.
    pub fn from_tasks(mut tasks: Vec<TaskSpec>) -> Self {
        tasks.sort_by_key(|t| (t.arrival, t.id));
        let mut ids: Vec<u64> = tasks.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len(), "duplicate task ids in trace");
        Self { tasks }
    }

    /// The tasks in arrival order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the trace holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// `true` when arrivals are non-decreasing (always true for traces
    /// built through [`from_tasks`](Self::from_tasks); exposed for replay
    /// validation).
    pub fn is_sorted_by_arrival(&self) -> bool {
        self.tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival)
    }

    /// Summary statistics.
    pub fn stats(&self) -> TraceStats {
        let count = self.tasks.len();
        let total_instructions = self.tasks.iter().map(|t| t.instructions).sum();
        let first_arrival = self.tasks.first().map_or(SimTime::ZERO, |t| t.arrival);
        let last_arrival = self.tasks.last().map_or(SimTime::ZERO, |t| t.arrival);
        let mean_interarrival = if count >= 2 {
            (last_arrival - first_arrival) / (count as u64 - 1)
        } else {
            SimDuration::ZERO
        };
        TraceStats {
            count,
            total_instructions,
            mean_interarrival,
            first_arrival,
            last_arrival,
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error on malformed input; the trace is
    /// re-sorted and re-validated.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let raw: TaskTrace = serde_json::from_str(json)?;
        Ok(Self::from_tasks(raw.tasks))
    }
}

impl FromIterator<TaskSpec> for TaskTrace {
    fn from_iter<I: IntoIterator<Item = TaskSpec>>(iter: I) -> Self {
        Self::from_tasks(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a TaskTrace {
    type Item = &'a TaskSpec;
    type IntoIter = std::slice::Iter<'a, TaskSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::Priority;
    use crate::task::TaskId;
    use dpm_power::InstructionMix;

    fn task(id: u64, at_us: u64, instr: u64) -> TaskSpec {
        TaskSpec::new(
            TaskId(id),
            SimTime::from_micros(at_us),
            instr,
            InstructionMix::default(),
            Priority::Medium,
        )
    }

    #[test]
    fn from_tasks_sorts() {
        let trace = TaskTrace::from_tasks(vec![task(2, 30, 10), task(1, 10, 10), task(3, 20, 10)]);
        let arrivals: Vec<u64> = trace.tasks().iter().map(|t| t.arrival.as_ps()).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(trace.is_sorted_by_arrival());
    }

    #[test]
    #[should_panic(expected = "duplicate task ids")]
    fn duplicate_ids_rejected() {
        let _ = TaskTrace::from_tasks(vec![task(1, 0, 1), task(1, 5, 1)]);
    }

    #[test]
    fn stats_are_consistent() {
        let trace =
            TaskTrace::from_tasks(vec![task(1, 0, 100), task(2, 10, 200), task(3, 40, 300)]);
        let s = trace.stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.total_instructions, 600);
        assert_eq!(s.first_arrival, SimTime::ZERO);
        assert_eq!(s.last_arrival, SimTime::from_micros(40));
        assert_eq!(s.mean_interarrival, SimDuration::from_micros(20));
    }

    #[test]
    fn empty_trace_stats() {
        let s = TaskTrace::new().stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_interarrival, SimDuration::ZERO);
    }

    #[test]
    fn json_roundtrip() {
        let trace = TaskTrace::from_tasks(vec![task(1, 5, 10), task(2, 15, 20)]);
        let json = trace.to_json().unwrap();
        let back = TaskTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn collect_from_iterator() {
        let trace: TaskTrace = vec![task(5, 50, 1), task(4, 40, 1)].into_iter().collect();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.tasks()[0].id, TaskId(4));
    }
}
