//! Traffic generators producing deterministic, seedable task traces.

use dpm_power::InstructionMix;
use dpm_units::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::dist::Dist;
use crate::priority::Priority;
use crate::task::{TaskId, TaskSpec};
use crate::trace::TaskTrace;

/// Anything that can produce a [`TaskTrace`] up to a horizon.
pub trait TraceGenerator {
    /// Generates all tasks arriving strictly before `horizon`, using a
    /// deterministic stream derived from `seed`.
    fn generate(&self, horizon: SimTime, seed: u64) -> TaskTrace;
}

/// Categorical distribution over the four priorities.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PriorityWeights([f64; 4]);

impl PriorityWeights {
    /// Weights `[low, medium, high, very_high]`, normalized internally.
    ///
    /// # Panics
    ///
    /// Panics on negative weights or an all-zero vector.
    pub fn new(weights: [f64; 4]) -> Self {
        let sum: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && sum > 0.0,
            "priority weights must be non-negative with a positive sum"
        );
        Self(weights.map(|w| w / sum))
    }

    /// Every priority equally likely.
    pub fn uniform() -> Self {
        Self::new([1.0; 4])
    }

    /// Always the same priority.
    pub fn only(p: Priority) -> Self {
        let mut w = [0.0; 4];
        w[p.index()] = 1.0;
        Self(w)
    }

    /// The paper's "user defined" flavour: mostly medium with occasional
    /// high/very-high spikes.
    pub fn typical_user() -> Self {
        Self::new([0.2, 0.45, 0.25, 0.1])
    }

    /// Draws a priority.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Priority {
        let x: f64 = rng.random_range(0.0..1.0);
        let mut acc = 0.0;
        for p in Priority::ALL {
            acc += self.0[p.index()];
            if x < acc {
                return p;
            }
        }
        Priority::VeryHigh
    }

    /// The normalized weight of `p`.
    pub fn weight(&self, p: Priority) -> f64 {
        self.0[p.index()]
    }
}

/// Activity presets matching the paper's scenario descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ActivityLevel {
    /// *"often busy"* — long bursts, short idle gaps (~75 % duty).
    High,
    /// *"often in idle state"* — short bursts, long idle gaps (~15 % duty).
    Low,
}

impl ActivityLevel {
    /// Both presets, for axis enumeration in sweeps.
    pub const ALL: [ActivityLevel; 2] = [ActivityLevel::High, ActivityLevel::Low];
}

/// Busy/idle alternating generator (the paper's traffic model: *"Each IP
/// executes a sequence of tasks or remains in idle state"*).
///
/// A burst of `burst_len` tasks arrives with small `intra_gap_us` spacing;
/// bursts are separated by `idle_gap_us`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BurstyGenerator {
    /// Tasks per busy burst.
    pub burst_len: Dist,
    /// Instructions per task.
    pub task_instructions: Dist,
    /// Gap between tasks inside a burst (µs).
    pub intra_gap_us: Dist,
    /// Idle gap between bursts (µs).
    pub idle_gap_us: Dist,
    /// Instruction class blend of every task.
    pub mix: InstructionMix,
    /// Priority distribution.
    pub priorities: PriorityWeights,
}

impl BurstyGenerator {
    /// The preset for an [`ActivityLevel`], with the default task size
    /// (≈ 60 k instructions ≈ 0.4 ms at the default ON1 clock).
    pub fn for_activity(level: ActivityLevel, priorities: PriorityWeights) -> Self {
        let (burst_len, idle_gap_us) = match level {
            ActivityLevel::High => (
                Dist::Uniform { lo: 4.0, hi: 9.0 },
                Dist::Exponential { mean: 400.0 },
            ),
            ActivityLevel::Low => (
                Dist::Uniform { lo: 1.0, hi: 3.0 },
                Dist::Exponential { mean: 4_000.0 },
            ),
        };
        Self {
            burst_len,
            task_instructions: Dist::Normal {
                mean: 60_000.0,
                std_dev: 15_000.0,
            },
            intra_gap_us: Dist::Exponential { mean: 50.0 },
            idle_gap_us,
            mix: InstructionMix::default(),
            priorities,
        }
    }
}

fn gap(d: &Dist, rng: &mut StdRng) -> SimDuration {
    SimDuration::from_secs_f64(d.sample(rng).max(0.0) * 1e-6)
}

impl TraceGenerator for BurstyGenerator {
    fn generate(&self, horizon: SimTime, seed: u64) -> TaskTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tasks = Vec::new();
        let mut t = SimTime::ZERO + gap(&self.intra_gap_us, &mut rng);
        let mut id = 0u64;
        while t < horizon {
            let burst = self.burst_len.sample(&mut rng).round().max(1.0) as u64;
            for _ in 0..burst {
                if t >= horizon {
                    break;
                }
                let instructions = self.task_instructions.sample(&mut rng).round().max(1.0) as u64;
                tasks.push(TaskSpec::new(
                    TaskId(id),
                    t,
                    instructions,
                    self.mix,
                    self.priorities.sample(&mut rng),
                ));
                id += 1;
                t += gap(&self.intra_gap_us, &mut rng);
            }
            t += gap(&self.idle_gap_us, &mut rng);
        }
        TaskTrace::from_tasks(tasks)
    }
}

/// Fixed-period arrivals with optional jitter — the classic periodic
/// real-time workload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PeriodicGenerator {
    /// Arrival period.
    pub period: SimDuration,
    /// Instructions per task.
    pub instructions: u64,
    /// Uniform jitter added to each arrival (µs).
    pub jitter_us: Dist,
    /// Instruction class blend.
    pub mix: InstructionMix,
    /// Priority of every task.
    pub priority: Priority,
}

impl PeriodicGenerator {
    /// A jitter-free periodic workload.
    pub fn exact(period: SimDuration, instructions: u64, priority: Priority) -> Self {
        Self {
            period,
            instructions,
            jitter_us: Dist::Constant(0.0),
            mix: InstructionMix::default(),
            priority,
        }
    }
}

impl TraceGenerator for PeriodicGenerator {
    fn generate(&self, horizon: SimTime, seed: u64) -> TaskTrace {
        assert!(!self.period.is_zero(), "period must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tasks = Vec::new();
        let mut base = SimTime::ZERO + self.period;
        let mut id = 0u64;
        while base < horizon {
            let arrival = base + gap(&self.jitter_us, &mut rng);
            if arrival < horizon {
                tasks.push(TaskSpec::new(
                    TaskId(id),
                    arrival,
                    self.instructions,
                    self.mix,
                    self.priority,
                ));
                id += 1;
            }
            base += self.period;
        }
        TaskTrace::from_tasks(tasks)
    }
}

/// Poisson arrivals (exponential inter-arrival times).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PoissonGenerator {
    /// Mean inter-arrival time (µs).
    pub mean_interarrival_us: f64,
    /// Instructions per task.
    pub task_instructions: Dist,
    /// Instruction class blend.
    pub mix: InstructionMix,
    /// Priority distribution.
    pub priorities: PriorityWeights,
}

impl TraceGenerator for PoissonGenerator {
    fn generate(&self, horizon: SimTime, seed: u64) -> TaskTrace {
        assert!(
            self.mean_interarrival_us > 0.0,
            "mean inter-arrival must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let inter = Dist::Exponential {
            mean: self.mean_interarrival_us,
        };
        let mut tasks = Vec::new();
        let mut t = SimTime::ZERO + gap(&inter, &mut rng);
        let mut id = 0u64;
        while t < horizon {
            let instructions = self.task_instructions.sample(&mut rng).round().max(1.0) as u64;
            tasks.push(TaskSpec::new(
                TaskId(id),
                t,
                instructions,
                self.mix,
                self.priorities.sample(&mut rng),
            ));
            id += 1;
            t += gap(&inter, &mut rng);
        }
        TaskTrace::from_tasks(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: SimTime = SimTime::from_millis(200);

    #[test]
    fn bursty_high_is_busier_than_low() {
        let high = BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::uniform())
            .generate(HORIZON, 1);
        let low = BurstyGenerator::for_activity(ActivityLevel::Low, PriorityWeights::uniform())
            .generate(HORIZON, 1);
        assert!(
            high.len() > 2 * low.len(),
            "high {} low {}",
            high.len(),
            low.len()
        );
        assert!(high.stats().total_instructions > 2 * low.stats().total_instructions);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::typical_user());
        assert_eq!(g.generate(HORIZON, 9), g.generate(HORIZON, 9));
        assert_ne!(g.generate(HORIZON, 9), g.generate(HORIZON, 10));
    }

    #[test]
    fn all_arrivals_before_horizon() {
        let g = BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::uniform());
        let trace = g.generate(HORIZON, 3);
        assert!(trace.tasks().iter().all(|t| t.arrival < HORIZON));
        assert!(trace.is_sorted_by_arrival());
    }

    #[test]
    fn periodic_spacing_is_exact() {
        let g = PeriodicGenerator::exact(SimDuration::from_micros(500), 1_000, Priority::Medium);
        let trace = g.generate(SimTime::from_millis(5), 0);
        assert_eq!(trace.len(), 9); // arrivals at 0.5..4.5 ms
        for (i, t) in trace.tasks().iter().enumerate() {
            assert_eq!(t.arrival, SimTime::from_micros(500 * (i as u64 + 1)));
        }
    }

    #[test]
    fn poisson_mean_interarrival_converges() {
        let g = PoissonGenerator {
            mean_interarrival_us: 100.0,
            task_instructions: Dist::Constant(1000.0),
            mix: InstructionMix::default(),
            priorities: PriorityWeights::uniform(),
        };
        let trace = g.generate(SimTime::from_secs(1), 5);
        let stats = trace.stats();
        let mean_us = stats.mean_interarrival.as_secs_f64() * 1e6;
        assert!((mean_us - 100.0).abs() < 10.0, "mean {mean_us} µs");
    }

    #[test]
    fn priority_weights_respected() {
        let g = PoissonGenerator {
            mean_interarrival_us: 20.0,
            task_instructions: Dist::Constant(100.0),
            mix: InstructionMix::default(),
            priorities: PriorityWeights::only(Priority::VeryHigh),
        };
        let trace = g.generate(SimTime::from_millis(10), 2);
        assert!(trace
            .tasks()
            .iter()
            .all(|t| t.priority == Priority::VeryHigh));
    }

    #[test]
    fn priority_sampler_distribution() {
        let w = PriorityWeights::new([0.0, 0.0, 0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut high = 0;
        let mut very = 0;
        for _ in 0..10_000 {
            match w.sample(&mut rng) {
                Priority::High => high += 1,
                Priority::VeryHigh => very += 1,
                p => panic!("unexpected priority {p}"),
            }
        }
        let ratio = high as f64 / very as f64;
        assert!((ratio - 1.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn zero_weights_rejected() {
        let _ = PriorityWeights::new([0.0; 4]);
    }
}
