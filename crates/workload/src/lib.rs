//! Workload models for the DATE'05 DPM experiments.
//!
//! The paper's functional IPs are *"pure traffic generators"*: each IP
//! *"executes a sequence of tasks or remains in idle state for a fixed
//! time"*, with *"different types of input statistics … in some sequences
//! the IP is often busy, in some it is often in idle state"*. This crate
//! provides:
//!
//! * [`Priority`] — the four task priority classes (Low, Medium, High,
//!   Very high) the LEM receives with every request.
//! * [`TaskSpec`] / [`TaskTrace`] — pre-generated, deterministic task
//!   sequences. Generating traces ahead of simulation is what makes the
//!   paper's baseline comparison exact: the DPM run and the
//!   always-max-frequency run replay *the same* arrivals.
//! * [`Dist`] — seedable samplers (constant, uniform, exponential,
//!   Pareto, normal) implemented via inverse-transform/Box–Muller so the
//!   workspace needs no extra distribution crate.
//! * [`BurstyGenerator`], [`PeriodicGenerator`], [`PoissonGenerator`] —
//!   trace generators; [`ActivityLevel`] presets reproduce the paper's
//!   "high activity" / "low activity" IPs.
//!
//! # Examples
//!
//! ```
//! use dpm_workload::{ActivityLevel, BurstyGenerator, PriorityWeights, TraceGenerator};
//! use dpm_units::SimTime;
//!
//! let generator = BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::uniform());
//! let trace = generator.generate(SimTime::from_millis(50), 42);
//! assert!(!trace.is_empty());
//! assert!(trace.is_sorted_by_arrival());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod generator;
mod priority;
mod seed;
mod task;
mod trace;

pub use dist::Dist;
pub use generator::{
    ActivityLevel, BurstyGenerator, PeriodicGenerator, PoissonGenerator, PriorityWeights,
    TraceGenerator,
};
pub use priority::Priority;
pub use seed::SeedSequence;
pub use task::{TaskId, TaskSpec};
pub use trace::{TaskTrace, TraceStats};
