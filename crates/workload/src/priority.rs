//! The four task priority classes.

use core::fmt;

/// Task priority as received by the LEM (paper §1.3: *"the task priority
/// (coded in 4 classes: Low, Medium, High and Very high)"*).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Priority {
    /// Background work; latency is irrelevant.
    Low,
    /// Normal work.
    Medium,
    /// Latency-sensitive work.
    High,
    /// Critical work that must run even on an empty battery (Table 1
    /// selects `ON4` for it in every emergency).
    VeryHigh,
}

impl Priority {
    /// All priorities, ascending.
    pub const ALL: [Priority; 4] = [
        Priority::Low,
        Priority::Medium,
        Priority::High,
        Priority::VeryHigh,
    ];

    /// Dense index (0 = Low).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Medium => 1,
            Priority::High => 2,
            Priority::VeryHigh => 3,
        }
    }

    /// Single-letter code used in the paper's Table 1 (`L, M, H, V`).
    pub const fn code(self) -> char {
        match self {
            Priority::Low => 'L',
            Priority::Medium => 'M',
            Priority::High => 'H',
            Priority::VeryHigh => 'V',
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Low => "Low",
            Priority::Medium => "Medium",
            Priority::High => "High",
            Priority::VeryHigh => "VeryHigh",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_codes() {
        assert!(Priority::Low < Priority::VeryHigh);
        let codes: String = Priority::ALL.iter().map(|p| p.code()).collect();
        assert_eq!(codes, "LMHV");
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Priority::VeryHigh).unwrap();
        let back: Priority = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Priority::VeryHigh);
    }
}
