//! Deterministic seed derivation for multi-stream workloads.
//!
//! Campaign-style sweeps need many statistically independent traces that
//! are still *reproducible from one number*: the same master seed must
//! produce the same per-scenario and per-IP seeds no matter how many
//! threads execute the sweep or in which order. [`SeedSequence`] provides
//! that: a keyed SplitMix64 expansion where `stream(i)` depends only on
//! the master seed and `i`.

use rand::split_mix64;

/// Derives reproducible, well-mixed child seeds from one master seed.
///
/// ```
/// use dpm_workload::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// assert_eq!(seq.stream(7), SeedSequence::new(42).stream(7));
/// assert_ne!(seq.stream(7), seq.stream(8));
/// // nested derivation: one child per (scenario, ip)
/// assert_ne!(seq.derive(3).stream(0), seq.derive(4).stream(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// A sequence keyed by `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed.
    pub fn master(self) -> u64 {
        self.master
    }

    /// The `i`-th independent child seed.
    pub fn stream(self, i: u64) -> u64 {
        let mut state = self.master ^ 0xA076_1D64_78BD_642F;
        let _ = split_mix64(&mut state);
        state = state.wrapping_add(i.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        split_mix64(&mut state)
    }

    /// A nested sequence for the `i`-th child (e.g. one per scenario,
    /// then one stream per IP).
    pub fn derive(self, i: u64) -> SeedSequence {
        SeedSequence {
            master: self.stream(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let seq = SeedSequence::new(0xDA7E);
        let a: Vec<u64> = (0..100).map(|i| seq.stream(i)).collect();
        let b: Vec<u64> = (0..100)
            .map(|i| SeedSequence::new(0xDA7E).stream(i))
            .collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "no stream collisions in 100 draws");
    }

    #[test]
    fn different_masters_diverge() {
        assert_ne!(
            SeedSequence::new(1).stream(0),
            SeedSequence::new(2).stream(0)
        );
    }

    #[test]
    fn derive_nests_independently() {
        let seq = SeedSequence::new(7);
        assert_ne!(seq.derive(0).stream(0), seq.stream(0));
        assert_eq!(seq.derive(5).master(), seq.stream(5));
    }
}
