//! Lumped RC thermal network.
//!
//! Topology (Cauer form):
//!
//! ```text
//!  P_0 ──► [IP node 0: C₀] ──R₀──┐
//!  P_1 ──► [IP node 1: C₁] ──R₁──┤── [package: C_p] ──R_amb──► ambient
//!  ...                           │        ▲ (R_fan when the fan runs)
//!  P_n ──► [IP node n: C_n] ─R_n─┘
//! ```
//!
//! Each IP dissipates its instantaneous power into its own die node; heat
//! flows through per-node spreading resistances into a shared package node
//! and onward to ambient. The supplementary fan (GEM-controlled) switches
//! a much lower package-to-ambient resistance in parallel.
//!
//! The time constants default to *scenario-scaled* values: the paper's
//! workloads simulate fractions of a second, so package time constants of
//! real hardware (tens of seconds) would never move. DESIGN.md documents
//! this substitution; the *relative* temperature metrics of Table 2 are
//! unaffected.

use dpm_units::{Celsius, Power, SimDuration};

/// Thermal parameters of one IP die node.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThermalNodeParams {
    /// Heat capacitance of the node (J/K).
    pub capacitance: f64,
    /// Spreading resistance from the node to the package (K/W).
    pub resistance_to_package: f64,
}

impl ThermalNodeParams {
    /// Default die-node parameters (τ ≈ 1.5 ms, scenario-scaled).
    pub fn default_ip() -> Self {
        Self {
            capacitance: 1.0e-4,
            resistance_to_package: 15.0,
        }
    }
}

/// Thermal parameters of the shared package node.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PackageParams {
    /// Heat capacitance of the package (J/K).
    pub capacitance: f64,
    /// Package-to-ambient resistance without fan (K/W).
    pub resistance_to_ambient: f64,
    /// Effective package-to-ambient resistance with the fan on (K/W).
    pub resistance_with_fan: f64,
}

impl PackageParams {
    /// Default package (τ ≈ 100 ms without fan, scenario-scaled).
    pub fn default_package() -> Self {
        Self {
            capacitance: 2.5e-3,
            resistance_to_ambient: 40.0,
            resistance_with_fan: 8.0,
        }
    }
}

/// Full network configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThermalNetworkConfig {
    /// Ambient temperature.
    pub ambient: Celsius,
    /// Initial temperature of every node (die + package).
    pub initial: Celsius,
    /// Per-IP node parameters.
    pub nodes: Vec<ThermalNodeParams>,
    /// Package parameters.
    pub package: PackageParams,
}

impl ThermalNetworkConfig {
    /// A default SoC with `n` identical IP nodes starting at ambient.
    pub fn default_soc(n: usize) -> Self {
        Self {
            ambient: Celsius::new(25.0),
            initial: Celsius::new(25.0),
            nodes: vec![ThermalNodeParams::default_ip(); n],
            package: PackageParams::default_package(),
        }
    }

    /// Same network but starting hot (the paper's "Temperature High"
    /// scenarios).
    pub fn starting_at(mut self, t0: Celsius) -> Self {
        self.initial = t0;
        self
    }
}

/// The integrating network.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalNetwork {
    config: ThermalNetworkConfig,
    /// Die temperatures (°C), one per IP node.
    node_temps: Vec<f64>,
    package_temp: f64,
    /// Euler sub-step, derived from the smallest time constant.
    max_step: SimDuration,
}

impl ThermalNetwork {
    /// Builds the network at the configured initial temperature.
    ///
    /// # Panics
    ///
    /// Panics on an empty node list or non-physical parameters.
    pub fn new(config: ThermalNetworkConfig) -> Self {
        assert!(
            !config.nodes.is_empty(),
            "thermal network needs at least one IP node"
        );
        for n in &config.nodes {
            assert!(
                n.capacitance > 0.0 && n.resistance_to_package > 0.0,
                "node parameters must be positive"
            );
        }
        let p = &config.package;
        assert!(
            p.capacitance > 0.0 && p.resistance_to_ambient > 0.0 && p.resistance_with_fan > 0.0,
            "package parameters must be positive"
        );
        assert!(
            p.resistance_with_fan <= p.resistance_to_ambient,
            "the fan must not make cooling worse"
        );
        // Smallest time constant bounds the stable Euler step.
        let tau_nodes = config
            .nodes
            .iter()
            .map(|n| n.capacitance * n.resistance_to_package)
            .fold(f64::INFINITY, f64::min);
        let tau_pkg = p.capacitance * p.resistance_with_fan;
        let tau_min = tau_nodes.min(tau_pkg);
        let max_step = SimDuration::from_secs_f64(tau_min / 5.0);
        let node_temps = vec![config.initial.as_celsius(); config.nodes.len()];
        let package_temp = config.initial.as_celsius();
        Self {
            config,
            node_temps,
            package_temp,
            max_step,
        }
    }

    /// Number of IP nodes.
    pub fn node_count(&self) -> usize {
        self.config.nodes.len()
    }

    /// Ambient temperature.
    pub fn ambient(&self) -> Celsius {
        self.config.ambient
    }

    /// Die temperature of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node_temp(&self, i: usize) -> Celsius {
        Celsius::new(self.node_temps[i])
    }

    /// Package temperature.
    pub fn package_temp(&self) -> Celsius {
        Celsius::new(self.package_temp)
    }

    /// The hottest die temperature (the "chip temperature" the sensor
    /// reports).
    pub fn hottest(&self) -> Celsius {
        let t = self
            .node_temps
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Celsius::new(t.max(self.package_temp))
    }

    /// The integration sub-step used internally.
    pub fn integration_step(&self) -> SimDuration {
        self.max_step
    }

    fn euler_step(&mut self, powers: &[Power], fan_on: bool, dt_s: f64) {
        let r_amb = if fan_on {
            self.config.package.resistance_with_fan
        } else {
            self.config.package.resistance_to_ambient
        };
        let mut into_package = 0.0;
        for (i, node) in self.config.nodes.iter().enumerate() {
            let flow = (self.node_temps[i] - self.package_temp) / node.resistance_to_package;
            into_package += flow;
            let p = powers.get(i).map_or(0.0, |p| p.as_watts());
            self.node_temps[i] += (p - flow) * dt_s / node.capacitance;
        }
        let out = (self.package_temp - self.config.ambient.as_celsius()) / r_amb;
        self.package_temp += (into_package - out) * dt_s / self.config.package.capacitance;
    }

    /// Advances the network by `dt` with constant per-node `powers` and fan
    /// state. Extra powers beyond the node count are ignored; missing ones
    /// are treated as zero.
    pub fn step(&mut self, powers: &[Power], fan_on: bool, dt: SimDuration) {
        let mut left = dt;
        while !left.is_zero() {
            let slice = left.min(self.max_step);
            self.euler_step(powers, fan_on, slice.as_secs_f64());
            left -= slice;
        }
    }

    /// The analytic steady-state temperatures for constant inputs:
    /// all heat flows through the package, so
    /// `T_pkg = T_amb + R_amb·ΣP` and `T_i = T_pkg + R_i·P_i`.
    pub fn steady_state(&self, powers: &[Power], fan_on: bool) -> (Vec<Celsius>, Celsius) {
        let r_amb = if fan_on {
            self.config.package.resistance_with_fan
        } else {
            self.config.package.resistance_to_ambient
        };
        let total: f64 = powers
            .iter()
            .take(self.node_count())
            .map(|p| p.as_watts())
            .sum();
        let t_pkg = self.config.ambient.as_celsius() + r_amb * total;
        let nodes = self
            .config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let p = powers.get(i).map_or(0.0, |p| p.as_watts());
                Celsius::new(t_pkg + n.resistance_to_package * p)
            })
            .collect();
        (nodes, Celsius::new(t_pkg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watts(mw: f64) -> Power {
        Power::from_milliwatts(mw)
    }

    #[test]
    fn heats_toward_steady_state() {
        let mut net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        let p = [watts(250.0)];
        let (nodes, _) = net.steady_state(&p, false);
        // run long enough (≈ 10 package time constants)
        net.step(&p, false, SimDuration::from_secs(1));
        let t = net.node_temp(0);
        assert!((t - nodes[0]).abs() < 0.5, "got {t}, steady {}", nodes[0]);
    }

    #[test]
    fn cools_back_to_ambient_without_power() {
        let cfg = ThermalNetworkConfig::default_soc(2).starting_at(Celsius::new(85.0));
        let mut net = ThermalNetwork::new(cfg);
        net.step(
            &[Power::ZERO, Power::ZERO],
            false,
            SimDuration::from_secs(2),
        );
        assert!((net.hottest() - net.ambient()).abs() < 0.5);
    }

    #[test]
    fn fan_lowers_steady_state() {
        let net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        let p = [watts(500.0)];
        let (_, no_fan) = net.steady_state(&p, false);
        let (_, fan) = net.steady_state(&p, true);
        assert!(fan < no_fan);
    }

    #[test]
    fn fan_speeds_up_cooling() {
        let cfg = ThermalNetworkConfig::default_soc(1).starting_at(Celsius::new(90.0));
        let mut slow = ThermalNetwork::new(cfg.clone());
        let mut fast = ThermalNetwork::new(cfg);
        let dt = SimDuration::from_millis(50);
        slow.step(&[Power::ZERO], false, dt);
        fast.step(&[Power::ZERO], true, dt);
        assert!(fast.hottest() < slow.hottest());
    }

    #[test]
    fn hotter_ip_is_the_loaded_one() {
        let mut net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(3));
        net.step(
            &[watts(50.0), watts(400.0), watts(50.0)],
            false,
            SimDuration::from_secs(1),
        );
        assert!(net.node_temp(1) > net.node_temp(0));
        assert!(net.node_temp(1) > net.node_temp(2));
        assert_eq!(net.hottest(), net.node_temp(1));
    }

    #[test]
    fn temperatures_stay_bounded() {
        // Between ambient and the steady state for any reasonable power.
        let mut net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        let p = [watts(800.0)];
        let (nodes, _) = net.steady_state(&p, false);
        for _ in 0..100 {
            net.step(&p, false, SimDuration::from_millis(20));
            assert!(net.node_temp(0) >= net.ambient());
            assert!(net.node_temp(0) <= nodes[0].plus_kelvin(0.5));
        }
    }

    #[test]
    fn missing_power_entries_mean_zero() {
        let mut net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(2));
        net.step(&[watts(300.0)], false, SimDuration::from_secs(1));
        assert!(net.node_temp(0) > net.node_temp(1));
    }

    #[test]
    #[should_panic(expected = "at least one IP node")]
    fn empty_network_rejected() {
        let _ = ThermalNetwork::new(ThermalNetworkConfig::default_soc(0));
    }

    #[test]
    #[should_panic(expected = "must not make cooling worse")]
    fn fan_worse_than_passive_rejected() {
        let mut cfg = ThermalNetworkConfig::default_soc(1);
        cfg.package.resistance_with_fan = cfg.package.resistance_to_ambient * 2.0;
        let _ = ThermalNetwork::new(cfg);
    }
}
