//! The thermal monitor process: the paper's SystemC thermal sensor.
//!
//! Drives the RC network with the per-IP power signals and the fan state,
//! publishes the hottest die temperature and its class, mirrors the fan's
//! own power draw (so the battery sees it), and accumulates the
//! time-averaged temperature elevation used by the Table 2 metric.

use dpm_kernel::{Ctx, EventId, Process, ProcessId, Signal, Simulation};
use dpm_units::{Celsius, Power, SimDuration, SimTime};

use crate::network::ThermalNetwork;
use crate::sensor::{ThermalClass, ThermalClassifier};

/// Handles to a spawned [`ThermalMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct ThermalMonitorHandles {
    /// The monitor process.
    pub pid: ProcessId,
    /// Hottest die temperature in °C.
    pub temperature: Signal<f64>,
    /// Quantized temperature class.
    pub class: Signal<ThermalClass>,
    /// Power drawn by the fan right now (W), for the battery monitor.
    pub fan_power: Signal<f64>,
}

/// Simulation process integrating the thermal network.
pub struct ThermalMonitor {
    network: ThermalNetwork,
    power_inputs: Vec<Signal<f64>>,
    fan_on: Signal<bool>,
    fan_draw: Power,
    cached_powers: Vec<Power>,
    cached_fan: bool,
    tick: EventId,
    period: SimDuration,
    last_step: SimTime,
    temp_out: Signal<f64>,
    class_out: Signal<ThermalClass>,
    fan_power_out: Signal<f64>,
    classifier: ThermalClassifier,
    /// ∫ (T_hot − T_amb) dt in kelvin-seconds, for the Table 2 metric.
    elevation_integral_ks: f64,
    max_temp: Celsius,
    fan_on_time: SimDuration,
    /// Last published outputs, to skip no-op writes (the monitor runs on
    /// every IP power event; unconditional writes would push three no-op
    /// updates through the kernel's update queue each activation).
    published: (f64, ThermalClass, f64),
}

impl ThermalMonitor {
    /// Builds the monitor, its output signals and sensitivity list.
    ///
    /// `power_inputs[i]` heats network node `i`; `fan_on` is written by
    /// the GEM; `fan_draw` is the fan's own consumption while running.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the network's node count
    /// or the period is zero.
    #[allow(clippy::too_many_arguments)] // one port per physical connection
    pub fn spawn(
        sim: &mut Simulation,
        name: &str,
        network: ThermalNetwork,
        power_inputs: Vec<Signal<f64>>,
        fan_on: Signal<bool>,
        fan_draw: Power,
        period: SimDuration,
        mut classifier: ThermalClassifier,
    ) -> ThermalMonitorHandles {
        assert!(
            !period.is_zero(),
            "thermal sampling period must be non-zero"
        );
        assert_eq!(
            power_inputs.len(),
            network.node_count(),
            "one power input per thermal node"
        );
        let t0 = network.hottest();
        let class0 = classifier.classify(t0);
        let temp_out = sim.signal(&format!("{name}.temp"), t0.as_celsius());
        let class_out = sim.signal(&format!("{name}.class"), class0);
        let fan_power_out = sim.signal(&format!("{name}.fan_power"), 0.0f64);
        let tick = sim.event(&format!("{name}.tick"));
        let n = power_inputs.len();
        let monitor = ThermalMonitor {
            network,
            power_inputs: power_inputs.clone(),
            fan_on,
            fan_draw,
            cached_powers: vec![Power::ZERO; n],
            cached_fan: false,
            tick,
            period,
            last_step: SimTime::ZERO,
            temp_out,
            class_out,
            fan_power_out,
            classifier,
            elevation_integral_ks: 0.0,
            max_temp: t0,
            fan_on_time: SimDuration::ZERO,
            published: (t0.as_celsius(), class0, 0.0),
        };
        let pid = sim.add_process(name, monitor);
        sim.sensitize(pid, tick);
        for sig in power_inputs {
            sim.sensitize_signal(pid, sig);
        }
        sim.sensitize_signal(pid, fan_on);
        ThermalMonitorHandles {
            pid,
            temperature: temp_out,
            class: class_out,
            fan_power: fan_power_out,
        }
    }

    /// Time-averaged temperature elevation over ambient (kelvin) across
    /// the window `[0, now_of_last_activation]`.
    pub fn mean_elevation(&self) -> f64 {
        let secs = self.last_step.as_secs_f64();
        if secs > 0.0 {
            self.elevation_integral_ks / secs
        } else {
            0.0
        }
    }

    /// Raw elevation integral (K·s).
    pub fn elevation_integral(&self) -> f64 {
        self.elevation_integral_ks
    }

    /// Hottest temperature observed so far.
    pub fn max_temp(&self) -> Celsius {
        self.max_temp
    }

    /// Total time the fan has been running.
    pub fn fan_on_time(&self) -> SimDuration {
        self.fan_on_time
    }

    /// The fan's electrical draw while running.
    pub fn fan_draw(&self) -> Power {
        self.fan_draw
    }

    /// Immutable view of the thermal network (post-run inspection).
    pub fn network(&self) -> &ThermalNetwork {
        &self.network
    }

    fn refresh_cache(&mut self, ctx: &Ctx<'_>) {
        for (i, sig) in self.power_inputs.iter().enumerate() {
            self.cached_powers[i] = Power::from_watts(ctx.read(*sig).max(0.0));
        }
        self.cached_fan = ctx.read(self.fan_on);
    }

    fn settle(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let dt = now.saturating_duration_since(self.last_step);
        let mut hottest = self.network.hottest();
        if !dt.is_zero() {
            // Integrate the elevation with the trapezoid of pre/post temps.
            let before = hottest;
            self.network.step(&self.cached_powers, self.cached_fan, dt);
            let after = self.network.hottest();
            let amb = self.network.ambient();
            let mean_elev = ((before - amb) + (after - amb)) * 0.5;
            self.elevation_integral_ks += mean_elev.max(0.0) * dt.as_secs_f64();
            if self.cached_fan {
                self.fan_on_time += dt;
            }
            self.max_temp = self.max_temp.max(after);
            hottest = after;
        }
        self.last_step = now;
        self.refresh_cache(ctx);
        let class = self.classifier.classify(hottest);
        let fan_power = if self.cached_fan {
            self.fan_draw.as_watts()
        } else {
            0.0
        };
        // Publish only on change — a write of an equal value never fires a
        // change event, so skipping it is behaviour-preserving while
        // avoiding redundant update-queue work on zero-dt activations.
        if self.published.0 != hottest.as_celsius() {
            self.published.0 = hottest.as_celsius();
            ctx.write(self.temp_out, hottest.as_celsius());
        }
        if self.published.1 != class {
            self.published.1 = class;
            ctx.write(self.class_out, class);
        }
        if self.published.2 != fan_power {
            self.published.2 = fan_power;
            ctx.write(self.fan_power_out, fan_power);
        }
    }
}

impl Process for ThermalMonitor {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.last_step = ctx.now();
        self.refresh_cache(ctx);
        ctx.notify(self.tick, self.period);
    }

    fn react(&mut self, ctx: &mut Ctx<'_>) {
        self.settle(ctx);
        if ctx.triggered(self.tick) {
            ctx.notify(self.tick, self.period);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ThermalNetworkConfig;

    fn setup(initial: Celsius, watts: f64) -> (Simulation, ThermalMonitorHandles, Signal<bool>) {
        let mut sim = Simulation::new();
        let power = sim.signal("ip0.power", watts);
        let fan = sim.signal("fan.on", false);
        let net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1).starting_at(initial));
        let handles = ThermalMonitor::spawn(
            &mut sim,
            "thermal",
            net,
            vec![power],
            fan,
            Power::from_milliwatts(150.0),
            SimDuration::from_millis(1),
            ThermalClassifier::with_defaults(),
        );
        (sim, handles, fan)
    }

    #[test]
    fn reports_heating_and_class_changes() {
        let (mut sim, handles, _) = setup(Celsius::new(25.0), 1.2);
        assert_eq!(sim.peek(handles.class), ThermalClass::Low);
        sim.run_until(SimTime::from_secs(1));
        // 1.2 W through 40 K/W => ~73 K elevation at the package: High.
        assert!(sim.peek(handles.temperature) > 60.0);
        assert_eq!(sim.peek(handles.class), ThermalClass::High);
        let max = sim.with_process::<ThermalMonitor, _>(handles.pid, |m| m.max_temp());
        assert!(max > Celsius::new(60.0));
    }

    #[test]
    fn elevation_integral_grows_with_heat() {
        let (mut sim, handles, _) = setup(Celsius::new(25.0), 0.8);
        sim.run_until(SimTime::from_millis(500));
        let mean = sim.with_process::<ThermalMonitor, _>(handles.pid, |m| m.mean_elevation());
        assert!(mean > 1.0, "mean elevation {mean} K");
        let (mut cool_sim, cool_handles, _) = setup(Celsius::new(25.0), 0.05);
        cool_sim.run_until(SimTime::from_millis(500));
        let cool_mean =
            cool_sim.with_process::<ThermalMonitor, _>(cool_handles.pid, |m| m.mean_elevation());
        assert!(cool_mean < mean);
    }

    /// Turns the fan on at a fixed time (stand-in for the GEM).
    struct FanSwitcher {
        fan: Signal<bool>,
        at: EventId,
    }
    impl Process for FanSwitcher {
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.notify(self.at, SimDuration::from_millis(100));
        }
        fn react(&mut self, ctx: &mut Ctx<'_>) {
            ctx.write(self.fan, true);
        }
    }

    #[test]
    fn fan_cools_and_draws_power() {
        let (mut sim, handles, fan) = setup(Celsius::new(90.0), 0.0);
        let at = sim.event("switch.at");
        let pid = sim.add_process("switcher", FanSwitcher { fan, at });
        sim.sensitize(pid, at);
        // just before the switch: fan idle (the horizon is inclusive, so
        // stopping exactly at 100 ms would already see the fan on)
        sim.run_until(SimTime::from_millis(99));
        let before_fan = sim.peek(handles.temperature);
        assert_eq!(sim.peek(handles.fan_power), 0.0);
        sim.run_until(SimTime::from_millis(160));
        assert!(sim.peek(handles.temperature) < before_fan);
        assert!(sim.peek(handles.fan_power) > 0.0);
        let on_time = sim.with_process::<ThermalMonitor, _>(handles.pid, |m| m.fan_on_time());
        assert!(on_time >= SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "one power input per thermal node")]
    fn input_count_mismatch_rejected() {
        let mut sim = Simulation::new();
        let fan = sim.signal("fan.on", false);
        let net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(2));
        let _ = ThermalMonitor::spawn(
            &mut sim,
            "thermal",
            net,
            vec![],
            fan,
            Power::ZERO,
            SimDuration::from_millis(1),
            ThermalClassifier::with_defaults(),
        );
    }
}
