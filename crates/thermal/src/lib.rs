//! Thermal model and temperature sensor of the DATE'05 DPM architecture.
//!
//! The paper develops a SystemC *"thermal sensor"* model: the LEM reads a
//! three-class chip temperature (Low, Medium, High) and the GEM can switch
//! on *"a supplementary fan"* when resources are critical. This crate
//! provides:
//!
//! * [`ThermalNetwork`] — a lumped RC (Cauer) network: one node per IP
//!   block coupled through a shared package node to ambient, integrated
//!   with sub-stepped explicit Euler; the fan switches a lower
//!   package-to-ambient resistance in parallel.
//! * [`ThermalClass`] / [`ThermalClassifier`] — the paper's three classes
//!   with hysteresis.
//! * [`ThermalMonitor`] — a simulation process driving the network from
//!   per-IP power signals and the fan state, publishing the hottest-node
//!   temperature and its class, and accumulating the time-averaged
//!   temperature elevation used by the Table 2 metric.
//!
//! # Examples
//!
//! ```
//! use dpm_thermal::{ThermalNetwork, ThermalNetworkConfig};
//! use dpm_units::{Power, SimDuration};
//!
//! let mut net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
//! for _ in 0..200 {
//!     net.step(&[Power::from_milliwatts(250.0)], false, SimDuration::from_millis(10));
//! }
//! assert!(net.hottest() > net.ambient());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod monitor;
mod network;
mod sensor;

pub use monitor::{ThermalMonitor, ThermalMonitorHandles};
pub use network::{PackageParams, ThermalNetwork, ThermalNetworkConfig, ThermalNodeParams};
pub use sensor::{ThermalClass, ThermalClassifier};
