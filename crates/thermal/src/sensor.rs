//! The paper's three temperature classes and the quantizing sensor.

use core::fmt;

use dpm_kernel::{Traceable, VcdValue};
use dpm_units::Celsius;

/// Chip temperature as the managers see it (paper §1.3: *"the chip
/// temperature (coded in 3 classes: Low, Medium and High)"*).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ThermalClass {
    /// Comfortable temperature; no thermal constraint.
    Low,
    /// Warm; prefer slower execution states.
    Medium,
    /// Hot; throttle hard (Table 1 forces `SL1` for most priorities).
    High,
}

impl ThermalClass {
    /// All classes, ascending.
    pub const ALL: [ThermalClass; 3] =
        [ThermalClass::Low, ThermalClass::Medium, ThermalClass::High];

    /// Dense index (0 = Low).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ThermalClass::Low => 0,
            ThermalClass::Medium => 1,
            ThermalClass::High => 2,
        }
    }

    /// Single-letter code used in the paper's Table 1 (`L, M, H`).
    pub const fn code(self) -> char {
        match self {
            ThermalClass::Low => 'L',
            ThermalClass::Medium => 'M',
            ThermalClass::High => 'H',
        }
    }
}

impl fmt::Display for ThermalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThermalClass::Low => "Low",
            ThermalClass::Medium => "Medium",
            ThermalClass::High => "High",
        })
    }
}

impl Traceable for ThermalClass {
    const WIDTH: u32 = 2;
    fn vcd_value(&self) -> VcdValue {
        VcdValue::Bits(self.index() as u64)
    }
}

/// Quantizes a temperature into a [`ThermalClass`] with hysteresis, so a
/// die hovering at a boundary does not flood the managers with class
/// changes.
///
/// # Examples
///
/// ```
/// use dpm_thermal::{ThermalClass, ThermalClassifier};
/// use dpm_units::Celsius;
///
/// let mut c = ThermalClassifier::with_defaults();
/// assert_eq!(c.classify(Celsius::new(40.0)), ThermalClass::Low);
/// assert_eq!(c.classify(Celsius::new(75.0)), ThermalClass::High);
/// assert_eq!(c.classify(Celsius::new(69.0)), ThermalClass::High); // hysteresis
/// assert_eq!(c.classify(Celsius::new(66.0)), ThermalClass::Medium);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalClassifier {
    /// `[low→medium, medium→high]` boundaries.
    thresholds: [Celsius; 2],
    hysteresis_k: f64,
    last: Option<ThermalClass>,
}

impl ThermalClassifier {
    /// Default boundaries: Medium at 50 °C, High at 70 °C, 2 K hysteresis.
    pub fn with_defaults() -> Self {
        Self::new([Celsius::new(50.0), Celsius::new(70.0)], 2.0)
    }

    /// Custom boundaries (ascending) and hysteresis (kelvin).
    ///
    /// # Panics
    ///
    /// Panics on unsorted boundaries or a hysteresis that is negative or
    /// wider than half the class band.
    pub fn new(thresholds: [Celsius; 2], hysteresis_k: f64) -> Self {
        assert!(
            thresholds[0] < thresholds[1],
            "thermal thresholds must be ascending"
        );
        assert!(hysteresis_k >= 0.0, "hysteresis must be non-negative");
        assert!(
            2.0 * hysteresis_k < thresholds[1] - thresholds[0],
            "hysteresis too wide for the class band"
        );
        Self {
            thresholds,
            hysteresis_k,
            last: None,
        }
    }

    fn raw(&self, t: Celsius) -> ThermalClass {
        if t >= self.thresholds[1] {
            ThermalClass::High
        } else if t >= self.thresholds[0] {
            ThermalClass::Medium
        } else {
            ThermalClass::Low
        }
    }

    /// Classifies `t`, honouring hysteresis against the previous result.
    pub fn classify(&mut self, t: Celsius) -> ThermalClass {
        let raw = self.raw(t);
        let Some(last) = self.last else {
            self.last = Some(raw);
            return raw;
        };
        if raw == last {
            return last;
        }
        let next = if raw > last {
            // heating: cross the boundary above `last` plus hysteresis
            let boundary = self.thresholds[last.index()];
            if t - boundary >= self.hysteresis_k {
                raw
            } else {
                last
            }
        } else {
            // cooling: cross the boundary below `last` minus hysteresis
            let boundary = self.thresholds[last.index() - 1];
            if boundary - t >= self.hysteresis_k {
                raw
            } else {
                last
            }
        };
        self.last = Some(next);
        next
    }

    /// The last classification, if any.
    pub fn current(&self) -> Option<ThermalClass> {
        self.last
    }

    /// Forgets history; the next classification is raw.
    pub fn reset(&mut self) {
        self.last = None;
    }
}

impl Default for ThermalClassifier {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_boundaries() {
        let mut c = ThermalClassifier::with_defaults();
        assert_eq!(c.classify(Celsius::new(25.0)), ThermalClass::Low);
        c.reset();
        assert_eq!(c.classify(Celsius::new(55.0)), ThermalClass::Medium);
        c.reset();
        assert_eq!(c.classify(Celsius::new(85.0)), ThermalClass::High);
    }

    #[test]
    fn hysteresis_blocks_chatter_at_boundary() {
        let mut c = ThermalClassifier::with_defaults();
        assert_eq!(c.classify(Celsius::new(49.0)), ThermalClass::Low);
        // wobble right at 50: stays Low until 52
        assert_eq!(c.classify(Celsius::new(50.5)), ThermalClass::Low);
        assert_eq!(c.classify(Celsius::new(51.9)), ThermalClass::Low);
        assert_eq!(c.classify(Celsius::new(52.1)), ThermalClass::Medium);
        // and back: stays Medium until 48
        assert_eq!(c.classify(Celsius::new(49.5)), ThermalClass::Medium);
        assert_eq!(c.classify(Celsius::new(47.9)), ThermalClass::Low);
    }

    #[test]
    fn double_jump_resolves_raw() {
        let mut c = ThermalClassifier::with_defaults();
        assert_eq!(c.classify(Celsius::new(30.0)), ThermalClass::Low);
        assert_eq!(c.classify(Celsius::new(95.0)), ThermalClass::High);
        assert_eq!(c.classify(Celsius::new(30.0)), ThermalClass::Low);
    }

    #[test]
    fn codes_match_paper() {
        let codes: String = ThermalClass::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes, "LMH");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_thresholds_rejected() {
        let _ = ThermalClassifier::new([Celsius::new(70.0), Celsius::new(50.0)], 1.0);
    }
}
