//! Property-based tests of the thermal network and classifier.

use dpm_thermal::{ThermalClass, ThermalClassifier, ThermalNetwork, ThermalNetworkConfig};
use dpm_units::{Celsius, Power, SimDuration};
use proptest::prelude::*;

fn power_vec(n: usize) -> impl Strategy<Value = Vec<Power>> {
    prop::collection::vec((0.0..1.0f64).prop_map(Power::from_watts), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn temperatures_stay_within_physical_bounds(
        n in 1usize..5,
        seed_powers in power_vec(4),
        steps in 1usize..50,
    ) {
        let powers = &seed_powers[..n.min(seed_powers.len()).max(1)];
        let mut net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(powers.len()));
        let (steady, _) = net.steady_state(powers, false);
        let hottest_steady = steady
            .iter()
            .fold(Celsius::new(f64::NEG_INFINITY), |acc, t| acc.max(*t));
        for _ in 0..steps {
            net.step(powers, false, SimDuration::from_millis(7));
            prop_assert!(net.hottest() >= net.ambient().plus_kelvin(-1e-9));
            prop_assert!(
                net.hottest() <= hottest_steady.plus_kelvin(1e-6),
                "{} exceeded steady {}",
                net.hottest(),
                hottest_steady
            );
        }
    }

    #[test]
    fn monotone_in_power(p1 in 0.0..1.0f64, p2 in 0.0..1.0f64, ms in 1u64..200) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let mut cool = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        let mut warm = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        cool.step(&[Power::from_watts(lo)], false, SimDuration::from_millis(ms));
        warm.step(&[Power::from_watts(hi)], false, SimDuration::from_millis(ms));
        prop_assert!(warm.hottest() >= cool.hottest().plus_kelvin(-1e-9));
    }

    #[test]
    fn fan_never_hurts(p in 0.0..1.5f64, ms in 1u64..200) {
        let mut with_fan = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        let mut without = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        with_fan.step(&[Power::from_watts(p)], true, SimDuration::from_millis(ms));
        without.step(&[Power::from_watts(p)], false, SimDuration::from_millis(ms));
        prop_assert!(with_fan.hottest() <= without.hottest().plus_kelvin(1e-9));
    }

    #[test]
    fn step_composition_is_consistent(p in 0.0..1.0f64, ms in 2u64..100) {
        // one long step == two half steps (the integrator sub-slices
        // internally, so composition must be exact)
        let powers = [Power::from_watts(p)];
        let mut whole = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        let mut halves = ThermalNetwork::new(ThermalNetworkConfig::default_soc(1));
        whole.step(&powers, false, SimDuration::from_millis(ms));
        halves.step(&powers, false, SimDuration::from_millis(ms / 2));
        halves.step(&powers, false, SimDuration::from_millis(ms - ms / 2));
        prop_assert!((whole.hottest() - halves.hottest()).abs() < 0.05);
    }

    #[test]
    fn classifier_is_stable_on_repeats(temps in prop::collection::vec(0.0..120.0f64, 1..60)) {
        let mut c = ThermalClassifier::with_defaults();
        for t in temps {
            let first = c.classify(Celsius::new(t));
            prop_assert_eq!(c.classify(Celsius::new(t)), first);
        }
    }

    #[test]
    fn classifier_large_jumps_land_on_raw_class(t in 0.0..120.0f64) {
        let mut c = ThermalClassifier::with_defaults();
        // move far away first, then to t: the hysteresis band is only
        // ±2 K, so a > 25 K jump must resolve to the raw class
        let far = if t < 60.0 { t + 40.0 } else { t - 40.0 };
        let _ = c.classify(Celsius::new(far));
        let got = c.classify(Celsius::new(t));
        let mut fresh = ThermalClassifier::with_defaults();
        let raw = fresh.classify(Celsius::new(t));
        // allow a one-step difference only within the hysteresis margin
        if (t - 50.0).abs() > 2.5 && (t - 70.0).abs() > 2.5 {
            prop_assert_eq!(got, raw, "t={}", t);
        }
    }

    #[test]
    fn classes_are_ordered_with_temperature(t1 in 0.0..120.0f64, t2 in 0.0..120.0f64) {
        let mut c1 = ThermalClassifier::with_defaults();
        let mut c2 = ThermalClassifier::with_defaults();
        let a = c1.classify(Celsius::new(t1));
        let b = c2.classify(Celsius::new(t2));
        if t1 <= t2 {
            prop_assert!(a <= b);
        } else {
            prop_assert!(a >= b);
        }
    }
}

#[test]
fn class_all_is_sorted() {
    let mut sorted = ThermalClass::ALL.to_vec();
    sorted.sort();
    assert_eq!(sorted.as_slice(), ThermalClass::ALL.as_slice());
}
