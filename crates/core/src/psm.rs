//! The Power State Machine.
//!
//! The paper (§1.2): the PSM holds the ACPI-style state of its IP, and
//! *"the LEM sets the power state to the PSM that communicates the actual
//! state to the functional block"*. Transitions are not free: each takes
//! the latency and energy of the IP's characterized
//! [`TransitionTable`], during which the IP can do no useful work.
//!
//! Interface (all created by the SoC builder):
//!
//! * `cmd` fifo — target states commanded by the LEM; while a transition
//!   is in flight the **latest** queued command wins (it reflects the
//!   LEM's most recent intent).
//! * `state` signal — the actual state, updated when a transition
//!   *completes* (the functional IP reads its execution speed from this).
//! * `busy` signal — `true` while a transition is in flight.
//! * `trans_power` signal — the transition's energy spread over its
//!   latency as average power, so the battery and thermal monitors see
//!   transition costs with no extra plumbing.

use dpm_kernel::{Ctx, EventId, Fifo, Process, ProcessId, Signal, Simulation};
use dpm_power::{PowerState, TransitionTable};
use dpm_units::{Energy, SimDuration, SimTime};

/// Signal/fifo bundle of one PSM instance.
#[derive(Debug, Clone, Copy)]
pub struct PsmPorts {
    /// Command fifo (LEM → PSM).
    pub cmd: Fifo<PowerState>,
    /// Actual power state (PSM → IP/LEM).
    pub state: Signal<PowerState>,
    /// Transition-in-flight flag.
    pub busy: Signal<bool>,
    /// Average transition power while busy (W).
    pub trans_power: Signal<f64>,
}

/// Activity counters of one PSM.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PsmStats {
    /// Completed transitions.
    pub transitions: u64,
    /// Commands ignored because the PSM was already in the target state.
    pub redundant_commands: u64,
    /// Commands superseded while a transition was in flight.
    pub superseded_commands: u64,
    /// Total time spent transitioning.
    pub transition_time: SimDuration,
    /// Total transition energy.
    pub transition_energy: Energy,
    /// Residency per state (index = `PowerState::index()`), updated on
    /// each departure; call [`Psm::residency`] for a closed-out view.
    pub time_in_state: [SimDuration; 9],
}

/// The Power State Machine process.
pub struct Psm {
    ports: PsmPorts,
    table: TransitionTable,
    current: PowerState,
    in_flight: Option<PowerState>,
    pending: Option<PowerState>,
    done: EventId,
    entered_current: SimTime,
    stats: PsmStats,
}

impl Psm {
    /// Creates a PSM named `name` starting in `initial`, returning its
    /// ports and process id.
    pub fn spawn(
        sim: &mut Simulation,
        name: &str,
        table: TransitionTable,
        initial: PowerState,
    ) -> (PsmPorts, ProcessId) {
        let cmd = sim.fifo(&format!("{name}.cmd"), 16);
        let state = sim.signal(&format!("{name}.state"), initial);
        let busy = sim.signal(&format!("{name}.busy"), false);
        let trans_power = sim.signal(&format!("{name}.trans_power"), 0.0f64);
        let done = sim.event(&format!("{name}.done"));
        let ports = PsmPorts {
            cmd,
            state,
            busy,
            trans_power,
        };
        let psm = Psm {
            ports,
            table,
            current: initial,
            in_flight: None,
            pending: None,
            done,
            entered_current: SimTime::ZERO,
            stats: PsmStats::default(),
        };
        let pid = sim.add_process(name, psm);
        sim.sensitize(pid, cmd.written_event());
        sim.sensitize(pid, done);
        (ports, pid)
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &PsmStats {
        &self.stats
    }

    /// The state the PSM currently holds (post-run inspection).
    pub fn current_state(&self) -> PowerState {
        self.current
    }

    /// State residency including the still-open stay in the current state
    /// up to `now`.
    pub fn residency(&self, now: SimTime) -> [SimDuration; 9] {
        let mut r = self.stats.time_in_state;
        if self.in_flight.is_none() {
            r[self.current.index()] += now.saturating_duration_since(self.entered_current);
        }
        r
    }

    fn start_transition(&mut self, ctx: &mut Ctx<'_>, target: PowerState) {
        debug_assert!(self.in_flight.is_none());
        if target == self.current {
            self.stats.redundant_commands += 1;
            return;
        }
        let cost = self.table.cost(self.current, target);
        // close out residency of the departing state
        self.stats.time_in_state[self.current.index()] +=
            ctx.now().saturating_duration_since(self.entered_current);
        self.stats.transition_time += cost.latency;
        self.stats.transition_energy += cost.energy;
        if cost.latency.is_zero() {
            // Degenerate characterization: complete instantaneously (the
            // energy still counts in the stats).
            self.current = target;
            self.entered_current = ctx.now();
            self.stats.transitions += 1;
            ctx.write(self.ports.state, target);
            return;
        }
        self.in_flight = Some(target);
        ctx.write(self.ports.busy, true);
        ctx.write(
            self.ports.trans_power,
            cost.energy.as_joules() / cost.latency.as_secs_f64(),
        );
        ctx.notify(self.done, cost.latency);
    }

    fn complete_transition(&mut self, ctx: &mut Ctx<'_>) {
        let target = self
            .in_flight
            .take()
            .expect("done event without a transition in flight");
        self.current = target;
        self.entered_current = ctx.now();
        self.stats.transitions += 1;
        ctx.write(self.ports.state, target);
        ctx.write(self.ports.busy, false);
        ctx.write(self.ports.trans_power, 0.0);
        if let Some(next) = self.pending.take() {
            self.start_transition(ctx, next);
        }
    }
}

impl Process for Psm {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.entered_current = ctx.now();
        ctx.write(self.ports.state, self.current);
    }

    fn react(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.triggered(self.done) {
            self.complete_transition(ctx);
        }
        // Drain commands; the newest one expresses the LEM's current
        // intent, earlier ones are superseded.
        let mut desired = None;
        while let Some(cmd) = ctx.fifo_pop(self.ports.cmd) {
            if desired.is_some() {
                self.stats.superseded_commands += 1;
            }
            desired = Some(cmd);
        }
        if let Some(target) = desired {
            if self.in_flight.is_some() {
                if self.pending.replace(target).is_some() {
                    self.stats.superseded_commands += 1;
                }
            } else {
                self.start_transition(ctx, target);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_power::IpPowerModel;
    use dpm_units::SimTime;

    fn setup(initial: PowerState) -> (Simulation, PsmPorts, ProcessId) {
        let mut sim = Simulation::new();
        let table = TransitionTable::for_model(&IpPowerModel::default_cpu());
        let (ports, pid) = Psm::spawn(&mut sim, "psm", table, initial);
        (sim, ports, pid)
    }

    /// Pushes one command at a given time.
    struct Commander {
        cmd: Fifo<PowerState>,
        plan: Vec<(SimDuration, PowerState)>,
        at: EventId,
        idx: usize,
    }
    impl Process for Commander {
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if let Some((d, _)) = self.plan.first() {
                ctx.notify(self.at, *d);
            }
        }
        fn react(&mut self, ctx: &mut Ctx<'_>) {
            let (_, s) = self.plan[self.idx];
            ctx.fifo_push(self.cmd, s).expect("cmd fifo full");
            self.idx += 1;
            if let Some((d, _)) = self.plan.get(self.idx) {
                ctx.notify(self.at, *d);
            }
        }
    }

    fn with_commands(
        initial: PowerState,
        plan: Vec<(SimDuration, PowerState)>,
    ) -> (Simulation, PsmPorts, ProcessId) {
        let (mut sim, ports, pid) = setup(initial);
        let at = sim.event("commander.at");
        let cpid = sim.add_process(
            "commander",
            Commander {
                cmd: ports.cmd,
                plan,
                at,
                idx: 0,
            },
        );
        sim.sensitize(cpid, at);
        (sim, ports, pid)
    }

    #[test]
    fn transition_takes_latency_and_publishes_power() {
        let (mut sim, ports, pid) = with_commands(
            PowerState::On1,
            vec![(SimDuration::from_micros(10), PowerState::Sl2)],
        );
        // during the 20 µs down-transition the PSM is busy and dissipating
        sim.run_until(SimTime::from_micros(15));
        assert_eq!(
            sim.peek(ports.state),
            PowerState::On1,
            "state changes on completion"
        );
        assert!(sim.peek(ports.busy));
        assert!(sim.peek(ports.trans_power) > 0.0);
        // after it completes
        sim.run_until(SimTime::from_micros(40));
        assert_eq!(sim.peek(ports.state), PowerState::Sl2);
        assert!(!sim.peek(ports.busy));
        assert_eq!(sim.peek(ports.trans_power), 0.0);
        let stats = sim.with_process::<Psm, _>(pid, |p| p.stats().clone());
        assert_eq!(stats.transitions, 1);
        assert!(stats.transition_energy > Energy::ZERO);
    }

    #[test]
    fn latest_command_wins_while_in_flight() {
        let (mut sim, ports, pid) = with_commands(
            PowerState::On1,
            vec![
                (SimDuration::from_micros(10), PowerState::Sl4), // 500 µs down
                (SimDuration::from_micros(50), PowerState::On2), // supersedes queue
                (SimDuration::from_micros(10), PowerState::On3), // supersedes On2
            ],
        );
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.peek(ports.state), PowerState::On3);
        let stats = sim.with_process::<Psm, _>(pid, |p| p.stats().clone());
        // Sl4 then On3: exactly two transitions; On2 was superseded.
        assert_eq!(stats.transitions, 2);
        assert_eq!(stats.superseded_commands, 1);
    }

    #[test]
    fn redundant_commands_are_cheap() {
        let (mut sim, ports, pid) = with_commands(
            PowerState::On1,
            vec![
                (SimDuration::from_micros(10), PowerState::On1),
                (SimDuration::from_micros(10), PowerState::On1),
            ],
        );
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.peek(ports.state), PowerState::On1);
        let stats = sim.with_process::<Psm, _>(pid, |p| p.stats().clone());
        assert_eq!(stats.transitions, 0);
        assert_eq!(stats.redundant_commands, 2);
        assert_eq!(stats.transition_energy, Energy::ZERO);
    }

    #[test]
    fn residency_accounts_for_all_time() {
        let (mut sim, _ports, pid) = with_commands(
            PowerState::On1,
            vec![(SimDuration::from_micros(100), PowerState::Sl1)],
        );
        let horizon = SimTime::from_millis(1);
        sim.run_until(horizon);
        let (residency, stats) =
            sim.with_process::<Psm, _>(pid, |p| (p.residency(horizon), p.stats().clone()));
        let total: SimDuration = residency.iter().copied().sum();
        assert_eq!(total + stats.transition_time, horizon - SimTime::ZERO);
        assert!(residency[PowerState::On1.index()] >= SimDuration::from_micros(100));
        assert!(residency[PowerState::Sl1.index()] > SimDuration::ZERO);
    }
}
