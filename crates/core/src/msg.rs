//! Messages exchanged between the functional IP, LEM, GEM and PSM.

use dpm_units::Energy;
use dpm_workload::{Priority, TaskSpec};

/// "Task execution request" sent by the functional IP to its LEM before
/// the execution of each task (paper §1.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRequest {
    /// The task to execute.
    pub spec: TaskSpec,
}

/// Execution grant returned by the LEM to the functional IP once the PSM
/// has reached the selected execution state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskGrant {
    /// The granted task.
    pub spec: TaskSpec,
}

/// Resource request forwarded by a LEM to the GEM when a task is about to
/// be serviced (paper §1.4: the GEM *"receives resource requests from all
/// the IP blocks"* and redistributes the energy estimates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemRequest {
    /// Index of the requesting IP.
    pub ip: u8,
    /// The task's priority (the GEM's own gating uses the *static* IP
    /// priority; the task priority is carried for accounting).
    pub priority: Priority,
    /// LEM's estimate of the task's energy at nominal speed.
    pub energy_estimate: Energy,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_power::InstructionMix;
    use dpm_units::SimTime;
    use dpm_workload::TaskId;

    #[test]
    fn messages_are_plain_data() {
        let spec = TaskSpec::new(
            TaskId(1),
            SimTime::ZERO,
            10,
            InstructionMix::default(),
            Priority::High,
        );
        let req = TaskRequest { spec };
        let grant = TaskGrant { spec };
        assert_eq!(req.spec, grant.spec);
        let gem = GemRequest {
            ip: 2,
            priority: Priority::High,
            energy_estimate: Energy::from_microjoules(10.0),
        };
        assert_eq!(gem.ip, 2);
    }
}
