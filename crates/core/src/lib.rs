//! The DATE'05 dynamic power management architecture (Conti, DATE 2005).
//!
//! This crate is the paper's primary contribution, re-implemented on the
//! [`dpm_kernel`] discrete-event kernel:
//!
//! * [`Psm`] — the Power State Machine: ACPI-style state holder that
//!   sequences commanded transitions with their latency/energy cost and
//!   publishes the actual state to the functional IP.
//! * [`Lem`] — the Local Energy Manager: per-task execution-state
//!   selection through the paper's Table 1 rule set (over task priority,
//!   battery status, chip temperature and power source), end-of-task
//!   battery/temperature estimation, idle-time prediction and
//!   break-even-based sleep state selection.
//! * [`Gem`] — the Global Energy Manager: static IP priorities, the
//!   paper's conditional-enable algorithm, energy-request redistribution
//!   and the supplementary fan.
//! * [`policy`] — the rule engine: Table 1 as data, wildcard matching with
//!   first-match semantics, completeness/shadowing analysis, a parser for
//!   the paper's natural-language rule form, and a fuzzy-inference variant
//!   (the paper explicitly frames the rules "as in the fuzzy rules").
//! * [`predictor`] — pluggable idle-time predictors (last-idle,
//!   exponential average, fixed, sliding-window) feeding the break-even
//!   comparison.
//! * [`baseline`] — reference controllers: the paper's
//!   always-max-frequency baseline (the denominator of every Table 2
//!   metric), a classic fixed-timeout policy and an oracle with perfect
//!   idle knowledge.
//!
//! The SoC assembly that wires these to traffic generators, battery and
//! thermal monitors lives in the `dpm-soc` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod estimator;
pub mod gem;
pub mod lem;
pub mod msg;
pub mod policy;
pub mod predictor;
pub mod psm;

pub use baseline::{AlwaysOnController, OracleController, TimeoutController};
pub use estimator::EndOfTaskEstimator;
pub use gem::{Gem, GemConfig, GemLemPorts, GemStats};
pub use lem::{Lem, LemConfig, LemPorts, LemStats, SleepSelection};
pub use msg::{GemRequest, TaskGrant, TaskRequest};
pub use policy::{PolicyInputs, PolicyTable, Rule, RuleSet, Selection};
pub use predictor::{
    ExpAveragePredictor, FixedPredictor, IdlePredictor, LastIdlePredictor, PredictorKind,
    WindowPredictor,
};
pub use psm::{Psm, PsmPorts, PsmStats};
