//! The Local Energy Manager.
//!
//! Per the paper (§1.3), the LEM:
//!
//! * receives a *task execution request* from its IP before each task;
//! * forwards the request to the GEM (when present) and reads back the
//!   energy requested by the other IPs;
//! * *estimates the battery status and temperature at the end of the
//!   task* and selects the execution state through the Table 1 rules
//!   (over task priority, battery class, temperature class, power
//!   source);
//! * commands the PSM, waits for the transition, then grants execution;
//! * when the IP goes idle, *predicts the idle time*, compares it against
//!   the *break-even times* of the sleep states and sends the PSM into
//!   the deepest profitable one;
//! * defers tasks entirely (PSM to `SL1`) when the rules demand it
//!   (battery Empty / temperature High for non-critical priorities) or
//!   when the GEM withdraws its enable.

use std::collections::VecDeque;

use dpm_battery::{BatteryClass, PowerSource};
use dpm_kernel::{Ctx, EventId, Fifo, Process, ProcessId, Signal, Simulation};
use dpm_power::{BreakEvenTable, IpPowerModel, PowerState, TransitionTable};
use dpm_thermal::ThermalClass;
use dpm_units::{Celsius, Energy, SimDuration};
use dpm_workload::TaskSpec;

use crate::estimator::EndOfTaskEstimator;
use crate::gem::GemLemPorts;
use crate::msg::{GemRequest, TaskGrant, TaskRequest};
use crate::policy::{PolicyInputs, PolicyTable, RuleSet, Selection};
use crate::predictor::{IdlePredictor, PredictorKind};

/// Signal/fifo bundle connecting one LEM to its IP, PSM, sensors and GEM.
#[derive(Debug, Clone, Copy)]
pub struct LemPorts {
    /// Task requests from the functional IP.
    pub requests: Fifo<TaskRequest>,
    /// Execution grants to the functional IP.
    pub grants: Fifo<TaskGrant>,
    /// Completed-task counter published by the IP.
    pub done_count: Signal<u64>,
    /// PSM command fifo.
    pub psm_cmd: Fifo<PowerState>,
    /// PSM actual state.
    pub psm_state: Signal<PowerState>,
    /// PSM transition-in-flight flag.
    pub psm_busy: Signal<bool>,
    /// Battery class from the battery monitor.
    pub battery_class: Signal<BatteryClass>,
    /// Raw state of charge (for end-of-task estimation).
    pub battery_soc: Signal<f64>,
    /// Temperature class from the thermal monitor.
    pub temp_class: Signal<ThermalClass>,
    /// Raw hottest temperature in °C (for estimation).
    pub temp_c: Signal<f64>,
    /// GEM-facing ports, when a GEM exists in the SoC.
    pub gem: Option<GemLemPorts>,
}

/// How the LEM picks its sleep state from the break-even table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SleepSelection {
    /// The paper's heuristic: the deepest state whose break-even time
    /// fits the predicted idle.
    #[default]
    Deepest,
    /// Extension: the state minimizing the estimated idle-period energy
    /// (a deep state's transition cost can outweigh its hold savings).
    CheapestEnergy,
}

/// Tunable configuration of one LEM (*"whose parameters can be adapted to
/// the single IP to optimize its performances"*, §1.4).
#[derive(Debug, Clone)]
pub struct LemConfig {
    /// The selection policy (defaults to the paper's Table 1).
    pub rules: RuleSet,
    /// Idle-time predictor choice.
    pub predictor: PredictorKind,
    /// Seed prediction before any idle period completes.
    pub initial_prediction: SimDuration,
    /// Use end-of-task estimates (paper behaviour) instead of the current
    /// sensor classes; ablated in the benches.
    pub use_estimates: bool,
    /// Master switch for idle-time sleeping.
    pub sleep_enabled: bool,
    /// Grace delay between detecting idleness and commanding sleep.
    pub sleep_delay: SimDuration,
    /// Optional cap on acceptable wake-up latency (limits sleep depth).
    pub max_wake_latency: Option<SimDuration>,
    /// Sleep-state selection strategy.
    pub sleep_selection: SleepSelection,
    /// Whether the SoC runs from battery or mains.
    pub source: PowerSource,
    /// Index of the governed IP (used in GEM requests).
    pub ip_index: u8,
    /// End-of-task projection model.
    pub estimator: EndOfTaskEstimator,
}

impl LemConfig {
    /// Paper-faithful defaults for IP `ip_index` powered by `source`, with
    /// the battery capacity needed by the estimator.
    pub fn new(ip_index: u8, source: PowerSource, battery_capacity: Energy) -> Self {
        Self {
            rules: crate::policy::table1(),
            predictor: PredictorKind::default(),
            initial_prediction: SimDuration::from_micros(500),
            use_estimates: true,
            sleep_enabled: true,
            sleep_delay: SimDuration::from_micros(10),
            max_wake_latency: None,
            sleep_selection: SleepSelection::default(),
            source,
            ip_index,
            estimator: EndOfTaskEstimator::new(battery_capacity),
        }
    }
}

/// Activity counters of one LEM.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LemStats {
    /// Task requests received.
    pub tasks_seen: u64,
    /// Execution grants issued.
    pub tasks_granted: u64,
    /// Policy selections per state (index = `PowerState::index()`).
    pub selections_by_state: [u64; 9],
    /// Selections that needed the rule-set fallback.
    pub fallback_selections: u64,
    /// Sleep commands issued from idle management.
    pub sleeps_commanded: u64,
    /// Wake-ups commanded for arriving tasks.
    pub wakes_commanded: u64,
    /// Times a task was deferred by the rules (`SL1` selections).
    pub rule_deferrals: u64,
    /// Times the GEM blocked this LEM with tasks queued.
    pub gem_blocks: u64,
    /// Requests forwarded to the GEM.
    pub gem_requests: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// No task being serviced.
    Idle,
    /// Waiting for the PSM to reach the selected execution state.
    Preparing(PowerState),
    /// A grant is outstanding; the IP is executing.
    Running,
    /// The rules selected a sleep state for the head-of-queue task; retry
    /// on battery/temperature class changes.
    Deferred,
    /// The GEM withdrew its enable; retry when it returns.
    Blocked,
}

/// The Local Energy Manager process.
pub struct Lem {
    cfg: LemConfig,
    ports: LemPorts,
    model: IpPowerModel,
    /// Break-even tables per ON hold level (index = level − 1).
    breakeven: [BreakEvenTable; 4],
    /// Dense precomputation of `cfg.rules` (O(1) per selection).
    policy: PolicyTable,
    predictor: Box<dyn IdlePredictor>,
    sleep_timer: EventId,
    phase: Phase,
    queue: VecDeque<TaskSpec>,
    seen_done: u64,
    chosen_sleep: Option<PowerState>,
    /// Task id the last GEM request was sent for (avoid duplicates).
    gem_requested_for: Option<dpm_workload::TaskId>,
    stats: LemStats,
}

impl Lem {
    /// Creates a LEM named `name` and wires its sensitivity list.
    pub fn spawn(
        sim: &mut Simulation,
        name: &str,
        cfg: LemConfig,
        model: IpPowerModel,
        transitions: &TransitionTable,
        ports: LemPorts,
    ) -> ProcessId {
        let sleep_timer = sim.event(&format!("{name}.sleep_timer"));
        let breakeven = [
            BreakEvenTable::compute(&model, transitions, PowerState::On1),
            BreakEvenTable::compute(&model, transitions, PowerState::On2),
            BreakEvenTable::compute(&model, transitions, PowerState::On3),
            BreakEvenTable::compute(&model, transitions, PowerState::On4),
        ];
        let predictor = cfg.predictor.build(cfg.initial_prediction);
        let policy = PolicyTable::new(&cfg.rules);
        let lem = Lem {
            cfg,
            ports,
            model,
            breakeven,
            policy,
            predictor,
            sleep_timer,
            phase: Phase::Idle,
            queue: VecDeque::new(),
            seen_done: 0,
            chosen_sleep: None,
            gem_requested_for: None,
            stats: LemStats::default(),
        };
        let use_estimates = lem.cfg.use_estimates;
        let pid = sim.add_process(name, lem);
        sim.sensitize(pid, ports.requests.written_event());
        sim.sensitize_signal(pid, ports.done_count);
        sim.sensitize_signal(pid, ports.psm_state);
        sim.sensitize_signal(pid, ports.psm_busy);
        sim.sensitize_signal(pid, ports.battery_class);
        sim.sensitize_signal(pid, ports.temp_class);
        sim.sensitize(pid, sleep_timer);
        if use_estimates {
            // Deferred tasks are re-evaluated on *estimated* classes, which
            // move with the continuous measurements — without these
            // sensitivities a deferral could outlive the condition that
            // caused it (the sensor class alone may never flip back).
            sim.sensitize_signal(pid, ports.battery_soc);
            sim.sensitize_signal(pid, ports.temp_c);
        }
        if let Some(gem) = ports.gem {
            sim.sensitize_signal(pid, gem.enable);
            if use_estimates {
                sim.sensitize_signal(pid, gem.others_energy);
            }
        }
        pid
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &LemStats {
        &self.stats
    }

    /// Tasks queued but not yet completed (including the running one).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn gem_enabled(&self, ctx: &Ctx<'_>) -> bool {
        self.ports.gem.is_none_or(|g| ctx.read(g.enable))
    }

    fn command(&mut self, ctx: &mut Ctx<'_>, state: PowerState) {
        if ctx.fifo_push(self.ports.psm_cmd, state).is_err() {
            // The PSM drains its fifo every activation; a full fifo means
            // 16 commands in one delta, which is a control bug.
            panic!("PSM command fifo overflow");
        }
    }

    /// Policy inputs for `task`, using end-of-task estimates when enabled.
    fn inputs_for(&self, ctx: &Ctx<'_>, task: &TaskSpec) -> PolicyInputs {
        let (battery, temperature) = if self.cfg.use_estimates {
            let soc = ctx.read(self.ports.battery_soc);
            let temp = Celsius::new(ctx.read(self.ports.temp_c));
            let others = self
                .ports
                .gem
                .map(|g| Energy::from_joules(ctx.read(g.others_energy).max(0.0)))
                .unwrap_or(Energy::ZERO);
            self.cfg.estimator.estimate(
                &self.model,
                task.instructions,
                &task.mix,
                soc,
                temp,
                others,
            )
        } else {
            (
                ctx.read(self.ports.battery_class),
                ctx.read(self.ports.temp_class),
            )
        };
        PolicyInputs {
            priority: task.priority,
            battery,
            temperature,
            source: self.cfg.source,
        }
    }

    fn grant(&mut self, ctx: &mut Ctx<'_>, task: TaskSpec) {
        ctx.fifo_push(self.ports.grants, TaskGrant { spec: task })
            .unwrap_or_else(|_| panic!("grant fifo overflow"));
        self.stats.tasks_granted += 1;
        self.phase = Phase::Running;
    }

    /// Starts servicing the head-of-queue task. Sets the next phase.
    fn begin_service(&mut self, ctx: &mut Ctx<'_>, task: TaskSpec) {
        ctx.cancel(self.sleep_timer);
        if let Some(gem) = self.ports.gem {
            if self.gem_requested_for != Some(task.id) {
                self.gem_requested_for = Some(task.id);
                let (energy, _) =
                    self.cfg
                        .estimator
                        .task_nominal(&self.model, task.instructions, &task.mix);
                let _ = ctx.fifo_push(
                    gem.requests,
                    GemRequest {
                        ip: self.cfg.ip_index,
                        priority: task.priority,
                        energy_estimate: energy,
                    },
                );
                self.stats.gem_requests += 1;
            }
        }
        let selection: Selection = self.policy.select(self.inputs_for(ctx, &task));
        self.stats.selections_by_state[selection.state.index()] += 1;
        if selection.used_fallback {
            self.stats.fallback_selections += 1;
        }
        if selection.state.is_execution() {
            let current = ctx.read(self.ports.psm_state);
            let busy = ctx.read(self.ports.psm_busy);
            if current == selection.state && !busy {
                self.grant(ctx, task);
            } else {
                if !current.is_execution() {
                    self.stats.wakes_commanded += 1;
                }
                self.command(ctx, selection.state);
                self.phase = Phase::Preparing(selection.state);
            }
        } else {
            // The rules demand deferral (battery Empty / temperature High).
            self.stats.rule_deferrals += 1;
            self.command(ctx, selection.state);
            self.phase = Phase::Deferred;
        }
    }

    /// Idle management: predict, compare with break-even, arm the sleep
    /// timer.
    fn plan_idle(&mut self, ctx: &mut Ctx<'_>) {
        if !self.cfg.sleep_enabled || ctx.is_pending(self.sleep_timer) {
            return;
        }
        let current = ctx.read(self.ports.psm_state);
        if !current.is_execution() {
            return; // already sleeping (or off)
        }
        let hold_level = current.on_level().expect("execution state").get();
        let table = &self.breakeven[(hold_level - 1) as usize];
        let predicted = self.predictor.predict();
        self.chosen_sleep = match self.cfg.sleep_selection {
            SleepSelection::Deepest => table.deepest_within(predicted, self.cfg.max_wake_latency),
            SleepSelection::CheapestEnergy => {
                table.cheapest_within(predicted, self.cfg.max_wake_latency)
            }
        };
        if self.chosen_sleep.is_some() {
            ctx.notify(self.sleep_timer, self.cfg.sleep_delay);
        }
    }
}

impl Process for Lem {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.predictor.idle_started(ctx.now());
        self.plan_idle(ctx);
    }

    fn react(&mut self, ctx: &mut Ctx<'_>) {
        // 1. Ingest newly arrived requests.
        while let Some(req) = ctx.fifo_pop(self.ports.requests) {
            self.stats.tasks_seen += 1;
            if self.queue.is_empty() && self.phase == Phase::Idle {
                self.predictor.idle_ended(ctx.now());
                ctx.cancel(self.sleep_timer);
                self.chosen_sleep = None;
            }
            self.queue.push_back(req.spec);
        }

        // 2. Detect completion of the running task.
        let done = ctx.read(self.ports.done_count);
        if done > self.seen_done && self.phase == Phase::Running {
            self.seen_done = done;
            self.queue.pop_front();
            self.phase = Phase::Idle;
            if self.queue.is_empty() {
                self.predictor.idle_started(ctx.now());
            }
        }

        // 3. Sleep timer: commit to the chosen sleep state if still idle.
        if ctx.triggered(self.sleep_timer) && self.phase == Phase::Idle && self.queue.is_empty() {
            if let Some(sleep) = self.chosen_sleep.take() {
                self.command(ctx, sleep);
                self.stats.sleeps_commanded += 1;
            }
        }

        // 4. Drive the service state machine.
        let enabled = self.gem_enabled(ctx);
        let mut budget = 8; // phases converge in < 8 steps by construction
        loop {
            budget -= 1;
            assert!(budget > 0, "LEM state machine did not converge");
            match self.phase {
                Phase::Idle => {
                    if let Some(task) = self.queue.front().copied() {
                        if !enabled {
                            self.stats.gem_blocks += 1;
                            self.command(ctx, PowerState::Sl1);
                            self.phase = Phase::Blocked;
                            break;
                        }
                        self.begin_service(ctx, task);
                        // Preparing/Running/Deferred now; loop once more to
                        // catch the already-in-state fast path.
                        if self.phase == Phase::Running {
                            break;
                        }
                        continue;
                    }
                    self.plan_idle(ctx);
                    break;
                }
                Phase::Preparing(target) => {
                    if ctx.read(self.ports.psm_state) == target && !ctx.read(self.ports.psm_busy) {
                        let task = *self.queue.front().expect("preparing without a task");
                        self.grant(ctx, task);
                    }
                    break;
                }
                Phase::Running => break,
                Phase::Deferred => {
                    // Conditions may have improved; re-evaluate once.
                    if enabled {
                        if let Some(task) = self.queue.front().copied() {
                            let selection = self.policy.select(self.inputs_for(ctx, &task));
                            if selection.state.is_execution() {
                                self.phase = Phase::Idle;
                                continue;
                            }
                        }
                    }
                    break;
                }
                Phase::Blocked => {
                    if enabled {
                        self.phase = Phase::Idle;
                        continue;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psm::Psm;
    use dpm_kernel::StopReason;
    use dpm_power::InstructionMix;
    use dpm_units::SimTime;
    use dpm_workload::{Priority, TaskId};

    /// Minimal functional IP for driving the LEM in isolation: submits a
    /// fixed plan of tasks and "executes" each grant at the PSM state's
    /// speed (assuming the state holds for the task's duration, which the
    /// tests arrange).
    struct MiniIp {
        requests: Fifo<TaskRequest>,
        grants: Fifo<TaskGrant>,
        done_count: Signal<u64>,
        psm_state: Signal<PowerState>,
        model: IpPowerModel,
        plan: Vec<TaskSpec>,
        next: usize,
        arrival: EventId,
        exec_done: EventId,
        running: Option<TaskSpec>,
        done: u64,
        finished_states: Vec<PowerState>,
    }

    impl MiniIp {
        fn schedule_next_arrival(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(spec) = self.plan.get(self.next) {
                let delay = spec.arrival.saturating_duration_since(ctx.now());
                ctx.notify(self.arrival, delay);
            }
        }
    }

    impl Process for MiniIp {
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            self.schedule_next_arrival(ctx);
        }
        fn react(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.triggered(self.arrival) {
                let spec = self.plan[self.next];
                self.next += 1;
                ctx.fifo_push(self.requests, TaskRequest { spec })
                    .expect("request fifo");
                self.schedule_next_arrival(ctx);
            }
            if ctx.triggered(self.exec_done) {
                if let Some(_spec) = self.running.take() {
                    self.done += 1;
                    self.finished_states.push(ctx.read(self.psm_state));
                    ctx.write(self.done_count, self.done);
                }
            }
            if self.running.is_none() {
                if let Some(grant) = ctx.fifo_pop(self.grants) {
                    let state = ctx.read(self.psm_state);
                    let dt = self
                        .model
                        .execution_time(grant.spec.instructions, &grant.spec.mix, state)
                        .expect("granted in an execution state");
                    self.running = Some(grant.spec);
                    ctx.notify(self.exec_done, dt);
                }
            }
        }
    }

    struct Rig {
        sim: Simulation,
        lem: ProcessId,
        ip: ProcessId,
        psm: ProcessId,
        ports: LemPorts,
        battery_class: Signal<BatteryClass>,
        battery_soc: Signal<f64>,
        temp_class: Signal<ThermalClass>,
    }

    fn task(id: u64, at_us: u64, instructions: u64, priority: Priority) -> TaskSpec {
        TaskSpec::new(
            TaskId(id),
            SimTime::from_micros(at_us),
            instructions,
            InstructionMix::default(),
            priority,
        )
    }

    fn rig(plan: Vec<TaskSpec>, cfg_mut: impl FnOnce(&mut LemConfig)) -> Rig {
        let mut sim = Simulation::new();
        let model = IpPowerModel::default_cpu();
        let table = TransitionTable::for_model(&model);
        let (psm_ports, psm) = Psm::spawn(&mut sim, "psm", table.clone(), PowerState::On1);
        let requests = sim.fifo("lem.requests", 64);
        let grants = sim.fifo("lem.grants", 64);
        let done_count = sim.signal("ip.done_count", 0u64);
        let battery_class = sim.signal("battery.class", BatteryClass::Full);
        let battery_soc = sim.signal("battery.soc", 0.95f64);
        let temp_class = sim.signal("thermal.class", ThermalClass::Low);
        let temp_c = sim.signal("thermal.temp", 30.0f64);
        let ports = LemPorts {
            requests,
            grants,
            done_count,
            psm_cmd: psm_ports.cmd,
            psm_state: psm_ports.state,
            psm_busy: psm_ports.busy,
            battery_class,
            battery_soc,
            temp_class,
            temp_c,
            gem: None,
        };
        let mut cfg = LemConfig::new(0, PowerSource::Battery, Energy::from_joules(100.0));
        cfg.use_estimates = false; // class signals drive the tests directly
        cfg_mut(&mut cfg);
        let lem = Lem::spawn(&mut sim, "lem", cfg, model.clone(), &table, ports);
        let arrival = sim.event("ip.arrival");
        let exec_done = sim.event("ip.exec_done");
        let ip = sim.add_process(
            "ip",
            MiniIp {
                requests,
                grants,
                done_count,
                psm_state: psm_ports.state,
                model,
                plan,
                next: 0,
                arrival,
                exec_done,
                running: None,
                done: 0,
                finished_states: Vec::new(),
            },
        );
        sim.sensitize(ip, arrival);
        sim.sensitize(ip, exec_done);
        sim.sensitize(ip, grants.written_event());
        Rig {
            sim,
            lem,
            ip,
            psm,
            ports,
            battery_class,
            battery_soc,
            temp_class,
        }
    }

    #[test]
    fn grants_at_on1_when_battery_full_and_cool() {
        let mut r = rig(vec![task(0, 100, 50_000, Priority::High)], |_| {});
        r.sim.run_until(SimTime::from_millis(2));
        let done = r.sim.peek(r.ports.done_count);
        assert_eq!(done, 1);
        let states = r
            .sim
            .with_process::<MiniIp, _>(r.ip, |p| p.finished_states.clone());
        // battery Full + temp Low + priority High -> ON1 (Table 1 row 10)
        assert_eq!(states, vec![PowerState::On1]);
        let stats = r.sim.with_process::<Lem, _>(r.lem, |l| l.stats().clone());
        assert_eq!(stats.tasks_granted, 1);
        assert_eq!(stats.selections_by_state[PowerState::On1.index()], 1);
    }

    #[test]
    fn battery_low_forces_on4() {
        let mut r = rig(vec![task(0, 100, 50_000, Priority::High)], |_| {});
        // drop the battery class before the task arrives
        r.sim.run_until(SimTime::from_micros(50));
        // poke the signal from outside: emulate the battery monitor
        r.sim.run_for(SimDuration::ZERO);
        set_signal(&mut r.sim, r.battery_class, BatteryClass::Low);
        r.sim.run_until(SimTime::from_millis(3));
        let states = r
            .sim
            .with_process::<MiniIp, _>(r.ip, |p| p.finished_states.clone());
        assert_eq!(states, vec![PowerState::On4]);
    }

    /// Writes a signal from outside the simulation via a one-shot process.
    fn set_signal<T: dpm_kernel::SignalValue>(sim: &mut Simulation, sig: Signal<T>, value: T) {
        struct Setter<T: dpm_kernel::SignalValue> {
            sig: Signal<T>,
            value: Option<T>,
            kick: EventId,
        }
        impl<T: dpm_kernel::SignalValue> Process for Setter<T> {
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.notify_delta(self.kick);
            }
            fn react(&mut self, ctx: &mut Ctx<'_>) {
                if let Some(v) = self.value.take() {
                    ctx.write(self.sig, v);
                }
            }
        }
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let kick = sim.event(&format!("setter{n}.kick"));
        let pid = sim.add_process(
            &format!("setter{n}"),
            Setter {
                sig,
                value: Some(value),
                kick,
            },
        );
        sim.sensitize(pid, kick);
        sim.run_for(SimDuration::ZERO);
    }

    #[test]
    fn thermal_emergency_defers_then_releases() {
        let mut r = rig(vec![task(0, 100, 50_000, Priority::Medium)], |_| {});
        set_signal(&mut r.sim, r.temp_class, ThermalClass::High);
        r.sim.run_until(SimTime::from_millis(1));
        // task deferred: nothing done, PSM parked in SL1
        assert_eq!(r.sim.peek(r.ports.done_count), 0);
        assert_eq!(r.sim.peek(r.ports.psm_state), PowerState::Sl1);
        let stats = r.sim.with_process::<Lem, _>(r.lem, |l| l.stats().clone());
        assert!(stats.rule_deferrals >= 1);
        // chip cools: class drops, the deferred task runs
        set_signal(&mut r.sim, r.temp_class, ThermalClass::Low);
        r.sim.run_until(SimTime::from_millis(4));
        assert_eq!(r.sim.peek(r.ports.done_count), 1);
    }

    #[test]
    fn idle_period_sends_psm_to_sleep_and_wakes_for_next_task() {
        // two tasks with a 5 ms gap: long enough for a deep sleep
        let mut r = rig(
            vec![
                task(0, 100, 50_000, Priority::High),
                task(1, 5_500, 50_000, Priority::High),
            ],
            |cfg| {
                cfg.predictor = PredictorKind::Fixed { value_us: 5_000 };
            },
        );
        let outcome = r.sim.run_until(SimTime::from_millis(20));
        assert_eq!(outcome.reason, StopReason::Starved);
        assert_eq!(r.sim.peek(r.ports.done_count), 2);
        let stats = r.sim.with_process::<Lem, _>(r.lem, |l| l.stats().clone());
        assert!(stats.sleeps_commanded >= 1, "stats: {stats:?}");
        assert!(stats.wakes_commanded >= 1);
        let psm_stats = r.sim.with_process::<Psm, _>(r.psm, |p| p.stats().clone());
        assert!(psm_stats.transitions >= 2, "sleep + wake at minimum");
    }

    #[test]
    fn sleep_disabled_keeps_psm_awake() {
        let mut r = rig(
            vec![
                task(0, 100, 50_000, Priority::High),
                task(1, 5_500, 50_000, Priority::High),
            ],
            |cfg| {
                cfg.sleep_enabled = false;
            },
        );
        r.sim.run_until(SimTime::from_millis(20));
        assert_eq!(r.sim.peek(r.ports.done_count), 2);
        let stats = r.sim.with_process::<Lem, _>(r.lem, |l| l.stats().clone());
        assert_eq!(stats.sleeps_commanded, 0);
        assert_eq!(r.sim.peek(r.ports.psm_state), PowerState::On1);
    }

    #[test]
    fn queued_tasks_run_back_to_back() {
        let mut r = rig(
            vec![
                task(0, 100, 50_000, Priority::Medium),
                task(1, 110, 50_000, Priority::Medium),
                task(2, 120, 50_000, Priority::Medium),
            ],
            |_| {},
        );
        r.sim.run_until(SimTime::from_millis(10));
        assert_eq!(r.sim.peek(r.ports.done_count), 3);
        let stats = r.sim.with_process::<Lem, _>(r.lem, |l| l.stats().clone());
        assert_eq!(stats.tasks_seen, 3);
        assert_eq!(stats.tasks_granted, 3);
    }

    #[test]
    fn very_high_priority_runs_even_on_empty_battery() {
        let mut r = rig(
            vec![
                task(0, 100, 50_000, Priority::VeryHigh),
                task(1, 200, 50_000, Priority::Medium),
            ],
            |_| {},
        );
        set_signal(&mut r.sim, r.battery_class, BatteryClass::Empty);
        set_signal(&mut r.sim, r.battery_soc, 0.01);
        r.sim.run_until(SimTime::from_millis(10));
        // the critical task ran (at ON4 per row 0); the medium one halts
        assert_eq!(r.sim.peek(r.ports.done_count), 1);
        let states = r
            .sim
            .with_process::<MiniIp, _>(r.ip, |p| p.finished_states.clone());
        assert_eq!(states, vec![PowerState::On4]);
        let stats = r.sim.with_process::<Lem, _>(r.lem, |l| l.stats().clone());
        assert!(stats.rule_deferrals >= 1);
    }
}
