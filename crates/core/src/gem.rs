//! The Global Energy Manager.
//!
//! The paper (§1.4): the GEM *"receives resource requests from all the IP
//! blocks … defines a static priority to each IP … returns to each LEM
//! the energy requested by the other IP blocks … can force each PSM in
//! Sleep1 state if the resources are limited and the IP has low
//! priority"*, with the intentionally simple algorithm:
//!
//! ```text
//! if (battery is Medium or High or Full) and (temperature is Low or Medium):
//!     enable every IP
//! else if (battery is Empty or Low) and (temperature is Low or Medium):
//!     enable IPs with high priority
//! else:
//!     do not enable any IP
//!     switch on a supplementary fan
//! ```
//!
//! In this implementation the "force to Sleep1" is realized through the
//! per-IP `enable` signals: a disabled LEM parks its PSM in `SL1` and
//! defers its queue (see [`crate::Lem`]), which is behaviourally
//! equivalent and keeps a single writer per PSM command fifo.

use dpm_battery::{BatteryClass, PowerSource};
use dpm_kernel::{Ctx, Fifo, Process, ProcessId, Signal, Simulation};
use dpm_thermal::ThermalClass;
use dpm_units::Energy;

use crate::msg::GemRequest;

/// The per-LEM view of the GEM (stored inside
/// [`LemPorts`](crate::LemPorts)).
#[derive(Debug, Clone, Copy)]
pub struct GemLemPorts {
    /// Shared request fifo (every LEM pushes here).
    pub requests: Fifo<GemRequest>,
    /// This IP's conditional enable.
    pub enable: Signal<bool>,
    /// Energy requested by the *other* IPs (J), for end-of-task estimation.
    pub others_energy: Signal<f64>,
}

/// GEM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GemConfig {
    /// Static priority rank per IP; **1 is the highest**.
    pub static_priorities: Vec<u8>,
    /// Ranks `<= cutoff` count as "high priority" in the enable rule.
    pub high_priority_cutoff: u8,
    /// Power source of the SoC (on mains the battery branch never fires).
    pub source: PowerSource,
}

impl GemConfig {
    /// Ranks `1..=n` in IP order with the top half counted as high
    /// priority (matching the paper's scenarios B/C where IP1 and IP2 of
    /// four stay enabled).
    pub fn ranked(n: usize, source: PowerSource) -> Self {
        assert!(n > 0, "GEM needs at least one IP");
        Self {
            static_priorities: (1..=n as u8).collect(),
            high_priority_cutoff: (n as u8).div_ceil(2),
            source,
        }
    }

    fn validate(&self) {
        assert!(
            !self.static_priorities.is_empty(),
            "GEM needs at least one IP"
        );
        assert!(
            self.static_priorities.iter().all(|r| *r >= 1),
            "priority ranks start at 1"
        );
        assert!(self.high_priority_cutoff >= 1, "cutoff must be >= 1");
    }
}

/// Activity counters of the GEM.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GemStats {
    /// Requests received from the LEMs.
    pub requests_seen: u64,
    /// Transitions of any enable signal.
    pub enable_changes: u64,
    /// Fan on/off switches.
    pub fan_switches: u64,
}

/// Ports created by [`Gem::spawn`] for the SoC builder to distribute.
#[derive(Debug, Clone)]
pub struct GemHandles {
    /// The GEM process.
    pub pid: ProcessId,
    /// Shared request fifo.
    pub requests: Fifo<GemRequest>,
    /// Per-IP enable signals.
    pub enables: Vec<Signal<bool>>,
    /// Per-IP "energy requested by the others" signals.
    pub others_energy: Vec<Signal<f64>>,
    /// Fan control (consumed by the thermal monitor).
    pub fan_on: Signal<bool>,
}

impl GemHandles {
    /// The [`GemLemPorts`] bundle for IP `i`.
    pub fn lem_ports(&self, i: usize) -> GemLemPorts {
        GemLemPorts {
            requests: self.requests,
            enable: self.enables[i],
            others_energy: self.others_energy[i],
        }
    }
}

/// The Global Energy Manager process.
pub struct Gem {
    cfg: GemConfig,
    requests: Fifo<GemRequest>,
    battery_class: Signal<BatteryClass>,
    temp_class: Signal<ThermalClass>,
    enables: Vec<Signal<bool>>,
    others_energy: Vec<Signal<f64>>,
    fan_on: Signal<bool>,
    latest_estimates: Vec<Energy>,
    last_enables: Vec<bool>,
    last_fan: bool,
    stats: GemStats,
}

impl Gem {
    /// Creates the GEM, its enable/others signals and sensitivity list.
    /// The `fan_on` signal is created by the SoC builder (the thermal
    /// monitor needs it before the GEM exists) and driven by the GEM.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn spawn(
        sim: &mut Simulation,
        name: &str,
        cfg: GemConfig,
        battery_class: Signal<BatteryClass>,
        temp_class: Signal<ThermalClass>,
        fan_on: Signal<bool>,
    ) -> GemHandles {
        cfg.validate();
        let n = cfg.static_priorities.len();
        let requests = sim.fifo(&format!("{name}.requests"), 64);
        let enables: Vec<Signal<bool>> = (0..n)
            .map(|i| sim.signal(&format!("{name}.enable{i}"), true))
            .collect();
        let others_energy: Vec<Signal<f64>> = (0..n)
            .map(|i| sim.signal(&format!("{name}.others{i}"), 0.0f64))
            .collect();
        let gem = Gem {
            cfg,
            requests,
            battery_class,
            temp_class,
            enables: enables.clone(),
            others_energy: others_energy.clone(),
            fan_on,
            latest_estimates: vec![Energy::ZERO; n],
            last_enables: vec![true; n],
            last_fan: false,
            stats: GemStats::default(),
        };
        let pid = sim.add_process(name, gem);
        sim.sensitize(pid, requests.written_event());
        sim.sensitize_signal(pid, battery_class);
        sim.sensitize_signal(pid, temp_class);
        GemHandles {
            pid,
            requests,
            enables,
            others_energy,
            fan_on,
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &GemStats {
        &self.stats
    }

    /// The paper's enable algorithm for the current classes. Returns
    /// `(enable_mask, fan_on)`.
    fn evaluate(&self, battery: BatteryClass, temperature: ThermalClass) -> (Vec<bool>, bool) {
        // On mains the battery never gates anything.
        let battery_fine = self.cfg.source == PowerSource::Mains || battery >= BatteryClass::Medium;
        let temp_fine = temperature <= ThermalClass::Medium;
        if battery_fine && temp_fine {
            (vec![true; self.enables.len()], false)
        } else if !battery_fine && temp_fine {
            let mask = self
                .cfg
                .static_priorities
                .iter()
                .map(|rank| *rank <= self.cfg.high_priority_cutoff)
                .collect();
            (mask, false)
        } else {
            (vec![false; self.enables.len()], true)
        }
    }
}

impl Process for Gem {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        // publish the initial decision
        self.react(ctx);
    }

    fn react(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(req) = ctx.fifo_pop(self.requests) {
            self.stats.requests_seen += 1;
            if let Some(slot) = self.latest_estimates.get_mut(req.ip as usize) {
                *slot = req.energy_estimate;
            }
        }
        let battery = ctx.read(self.battery_class);
        let temperature = ctx.read(self.temp_class);
        let (mask, fan) = self.evaluate(battery, temperature);
        for (i, enable) in mask.iter().enumerate() {
            if self.last_enables[i] != *enable {
                self.stats.enable_changes += 1;
                self.last_enables[i] = *enable;
            }
            ctx.write(self.enables[i], *enable);
        }
        if self.last_fan != fan {
            self.stats.fan_switches += 1;
            self.last_fan = fan;
        }
        ctx.write(self.fan_on, fan);
        // redistribute the energy estimates
        let total: Energy = self.latest_estimates.iter().copied().sum();
        for (i, sig) in self.others_energy.iter().enumerate() {
            let others = total - self.latest_estimates[i];
            ctx.write(*sig, others.as_joules());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_units::{SimDuration, SimTime};
    use dpm_workload::Priority;

    struct Rig {
        sim: Simulation,
        handles: GemHandles,
        battery: Signal<BatteryClass>,
        temp: Signal<ThermalClass>,
    }

    fn rig(n: usize) -> Rig {
        let mut sim = Simulation::new();
        let battery = sim.signal("battery.class", BatteryClass::Full);
        let temp = sim.signal("thermal.class", ThermalClass::Low);
        let fan_on = sim.signal("fan.on", false);
        let handles = Gem::spawn(
            &mut sim,
            "gem",
            GemConfig::ranked(n, PowerSource::Battery),
            battery,
            temp,
            fan_on,
        );
        Rig {
            sim,
            handles,
            battery,
            temp,
        }
    }

    /// One-shot signal setter process (drives sensor classes in tests).
    fn set<T: dpm_kernel::SignalValue>(r: &mut Rig, sig: Signal<T>, value: T) {
        struct Setter<T: dpm_kernel::SignalValue> {
            sig: Signal<T>,
            value: Option<T>,
            kick: dpm_kernel::EventId,
        }
        impl<T: dpm_kernel::SignalValue> Process for Setter<T> {
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.notify_delta(self.kick);
            }
            fn react(&mut self, ctx: &mut Ctx<'_>) {
                if let Some(v) = self.value.take() {
                    ctx.write(self.sig, v);
                }
            }
        }
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let kick = r.sim.event(&format!("gemsetter{n}.kick"));
        let pid = r.sim.add_process(
            &format!("gemsetter{n}"),
            Setter {
                sig,
                value: Some(value),
                kick,
            },
        );
        r.sim.sensitize(pid, kick);
        r.sim.run_for(SimDuration::ZERO);
    }

    fn enables(r: &Rig) -> Vec<bool> {
        r.handles.enables.iter().map(|e| r.sim.peek(*e)).collect()
    }

    #[test]
    fn healthy_resources_enable_everyone() {
        let mut r = rig(4);
        r.sim.run_until(SimTime::from_micros(1));
        assert_eq!(enables(&r), vec![true; 4]);
        assert!(!r.sim.peek(r.handles.fan_on));
    }

    #[test]
    fn low_battery_enables_only_high_priority() {
        let mut r = rig(4);
        let b = r.battery;
        set(&mut r, b, BatteryClass::Low);
        assert_eq!(enables(&r), vec![true, true, false, false]);
        assert!(!r.sim.peek(r.handles.fan_on));
    }

    #[test]
    fn high_temperature_disables_all_and_starts_fan() {
        let mut r = rig(4);
        let t = r.temp;
        set(&mut r, t, ThermalClass::High);
        assert_eq!(enables(&r), vec![false; 4]);
        assert!(r.sim.peek(r.handles.fan_on));
        // cooling down re-enables and stops the fan
        let t = r.temp;
        set(&mut r, t, ThermalClass::Low);
        assert_eq!(enables(&r), vec![true; 4]);
        assert!(!r.sim.peek(r.handles.fan_on));
        let stats = r
            .sim
            .with_process::<Gem, _>(r.handles.pid, |g| g.stats().clone());
        assert_eq!(stats.fan_switches, 2);
        assert!(stats.enable_changes >= 8);
    }

    #[test]
    fn empty_battery_with_high_temperature_is_the_worst_case() {
        let mut r = rig(2);
        let (b, t) = (r.battery, r.temp);
        set(&mut r, b, BatteryClass::Empty);
        set(&mut r, t, ThermalClass::High);
        assert_eq!(enables(&r), vec![false, false]);
        assert!(r.sim.peek(r.handles.fan_on));
    }

    #[test]
    fn mains_power_ignores_battery_class() {
        let mut sim = Simulation::new();
        let battery = sim.signal("battery.class", BatteryClass::Empty);
        let temp = sim.signal("thermal.class", ThermalClass::Low);
        let fan_on = sim.signal("fan.on", false);
        let handles = Gem::spawn(
            &mut sim,
            "gem",
            GemConfig::ranked(3, PowerSource::Mains),
            battery,
            temp,
            fan_on,
        );
        sim.run_until(SimTime::from_micros(1));
        let enables: Vec<bool> = handles.enables.iter().map(|e| sim.peek(*e)).collect();
        assert_eq!(enables, vec![true; 3]);
    }

    #[test]
    fn others_energy_redistributes_requests() {
        let mut r = rig(3);
        // Push requests from IPs 0 and 2 through a driver process.
        struct Pusher {
            fifo: Fifo<GemRequest>,
            kick: dpm_kernel::EventId,
            sent: bool,
        }
        impl Process for Pusher {
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.notify(self.kick, SimDuration::from_micros(1));
            }
            fn react(&mut self, ctx: &mut Ctx<'_>) {
                if !self.sent {
                    self.sent = true;
                    let req = |ip: u8, uj: f64| GemRequest {
                        ip,
                        priority: Priority::Medium,
                        energy_estimate: Energy::from_microjoules(uj),
                    };
                    ctx.fifo_push(self.fifo, req(0, 100.0)).unwrap();
                    ctx.fifo_push(self.fifo, req(2, 50.0)).unwrap();
                }
            }
        }
        let kick = r.sim.event("pusher.kick");
        let pid = r.sim.add_process(
            "pusher",
            Pusher {
                fifo: r.handles.requests,
                kick,
                sent: false,
            },
        );
        r.sim.sensitize(pid, kick);
        r.sim.run_until(SimTime::from_micros(10));
        let others: Vec<f64> = r
            .handles
            .others_energy
            .iter()
            .map(|s| r.sim.peek(*s) * 1e6) // µJ
            .collect();
        assert!((others[0] - 50.0).abs() < 1e-9, "{others:?}");
        assert!((others[1] - 150.0).abs() < 1e-9);
        assert!((others[2] - 100.0).abs() < 1e-9);
        let stats = r
            .sim
            .with_process::<Gem, _>(r.handles.pid, |g| g.stats().clone());
        assert_eq!(stats.requests_seen, 2);
    }

    #[test]
    #[should_panic(expected = "at least one IP")]
    fn empty_config_rejected() {
        let _ = GemConfig::ranked(0, PowerSource::Battery);
    }
}
