//! End-of-task battery and temperature estimation.
//!
//! The paper (§1.3): when a task request arrives, the LEM *"estimates the
//! battery status and temperature value at the end of the task execution"*
//! (using the energy announced by the other IPs through the GEM) and
//! applies the selection rules to the *estimated* classes. This module
//! implements that projection:
//!
//! * battery — charge bookkeeping: subtract the task's nominal energy plus
//!   the other IPs' announced energy from the current state of charge;
//! * temperature — first-order step response toward the steady state the
//!   projected power level would reach.
//!
//! The classifications here are *static* (no hysteresis): estimates are
//! recomputed per task and must not carry sensor state.

use dpm_battery::BatteryClass;
use dpm_power::{InstructionMix, IpPowerModel, PowerState};
use dpm_thermal::ThermalClass;
use dpm_units::{Celsius, Energy, Power, SimDuration};

/// Projects battery and temperature to the end of a task.
#[derive(Debug, Clone, PartialEq)]
pub struct EndOfTaskEstimator {
    /// Battery capacity used for state-of-charge arithmetic.
    pub capacity: Energy,
    /// Static battery class boundaries (ascending fractions).
    pub battery_thresholds: [f64; 4],
    /// Static temperature class boundaries (ascending).
    pub temp_thresholds: [Celsius; 2],
    /// Ambient temperature of the thermal model.
    pub ambient: Celsius,
    /// Steady-state thermal gain (K per W of SoC power).
    pub thermal_resistance: f64,
    /// Thermal time constant (seconds) of the projection.
    pub thermal_tau_s: f64,
}

impl EndOfTaskEstimator {
    /// An estimator with the workspace default thresholds (matching the
    /// monitor classifiers) for a battery of the given capacity.
    pub fn new(capacity: Energy) -> Self {
        Self {
            capacity,
            battery_thresholds: [0.05, 0.25, 0.55, 0.85],
            temp_thresholds: [Celsius::new(50.0), Celsius::new(70.0)],
            ambient: Celsius::new(25.0),
            thermal_resistance: 40.0,
            thermal_tau_s: 0.1,
        }
    }

    /// Nominal (`ON1`) energy and duration of a task — the paper's LEM
    /// estimates consumption *"on the basis of the signals coming from the
    /// PSM"*; we use the IP's characterized model at nominal speed.
    pub fn task_nominal(
        &self,
        model: &IpPowerModel,
        instructions: u64,
        mix: &InstructionMix,
    ) -> (Energy, SimDuration) {
        let e = model
            .execution_energy(instructions, mix, PowerState::On1)
            .expect("ON1 always executes");
        let dt = model
            .execution_time(instructions, mix, PowerState::On1)
            .expect("ON1 always executes");
        (e, dt)
    }

    /// Static battery classification (no hysteresis).
    pub fn classify_battery(&self, soc: f64) -> BatteryClass {
        let soc = soc.clamp(0.0, 1.0);
        let mut idx = 0;
        for t in self.battery_thresholds {
            if soc >= t {
                idx += 1;
            }
        }
        BatteryClass::ALL[idx]
    }

    /// Static temperature classification (no hysteresis).
    pub fn classify_temperature(&self, t: Celsius) -> ThermalClass {
        if t >= self.temp_thresholds[1] {
            ThermalClass::High
        } else if t >= self.temp_thresholds[0] {
            ThermalClass::Medium
        } else {
            ThermalClass::Low
        }
    }

    /// Battery class at the end of the task: current charge minus the
    /// task's own energy and the energy announced by the other IPs.
    pub fn battery_at_end(
        &self,
        soc_now: f64,
        task_energy: Energy,
        others_energy: Energy,
    ) -> BatteryClass {
        let drain = (task_energy + others_energy) / self.capacity;
        self.classify_battery(soc_now - drain)
    }

    /// Temperature class at the end of the task: first-order response
    /// toward the steady state of the projected total power.
    pub fn temperature_at_end(
        &self,
        temp_now: Celsius,
        total_power: Power,
        duration: SimDuration,
    ) -> ThermalClass {
        let t_ss = self
            .ambient
            .plus_kelvin(self.thermal_resistance * total_power.as_watts());
        let frac = 1.0 - (-duration.as_secs_f64() / self.thermal_tau_s).exp();
        let t_end = temp_now.plus_kelvin((t_ss - temp_now) * frac);
        self.classify_temperature(t_end)
    }

    /// Full end-of-task projection for one task.
    ///
    /// `others_energy` is the GEM-provided sum of the other IPs' estimates;
    /// pass zero when there is no GEM.
    pub fn estimate(
        &self,
        model: &IpPowerModel,
        instructions: u64,
        mix: &InstructionMix,
        soc_now: f64,
        temp_now: Celsius,
        others_energy: Energy,
    ) -> (BatteryClass, ThermalClass) {
        let (e_task, dt) = self.task_nominal(model, instructions, mix);
        let battery = self.battery_at_end(soc_now, e_task, others_energy);
        let p_self = model.mix_power(PowerState::On1, mix);
        let p_others = if dt.is_zero() {
            Power::ZERO
        } else {
            others_energy / dt
        };
        let temperature = self.temperature_at_end(temp_now, p_self + p_others, dt);
        (battery, temperature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> EndOfTaskEstimator {
        EndOfTaskEstimator::new(Energy::from_joules(100.0))
    }

    #[test]
    fn static_battery_classification() {
        let e = estimator();
        assert_eq!(e.classify_battery(0.01), BatteryClass::Empty);
        assert_eq!(e.classify_battery(0.10), BatteryClass::Low);
        assert_eq!(e.classify_battery(0.40), BatteryClass::Medium);
        assert_eq!(e.classify_battery(0.70), BatteryClass::High);
        assert_eq!(e.classify_battery(0.99), BatteryClass::Full);
        assert_eq!(e.classify_battery(-1.0), BatteryClass::Empty);
    }

    #[test]
    fn battery_projection_includes_others() {
        let e = estimator();
        // soc 0.26 (Medium); task 0.5 J, others 1.0 J => soc 0.245 (Low)
        let cls = e.battery_at_end(0.26, Energy::from_joules(0.5), Energy::from_joules(1.0));
        assert_eq!(cls, BatteryClass::Low);
        // without the others it would still be Medium
        let cls = e.battery_at_end(0.26, Energy::from_joules(0.5), Energy::ZERO);
        assert_eq!(cls, BatteryClass::Medium);
    }

    #[test]
    fn temperature_projection_saturates_to_steady_state() {
        let e = estimator();
        // 1.5 W through 40 K/W => steady 85 °C: a long task ends High.
        let cls = e.temperature_at_end(
            Celsius::new(30.0),
            Power::from_watts(1.5),
            SimDuration::from_secs(10),
        );
        assert_eq!(cls, ThermalClass::High);
        // a very short task barely moves the needle
        let cls = e.temperature_at_end(
            Celsius::new(30.0),
            Power::from_watts(1.5),
            SimDuration::from_micros(10),
        );
        assert_eq!(cls, ThermalClass::Low);
    }

    #[test]
    fn cooling_projection_works_too() {
        let e = estimator();
        // hot chip, almost no power: a long "task" cools it to Low.
        let cls = e.temperature_at_end(
            Celsius::new(90.0),
            Power::from_milliwatts(10.0),
            SimDuration::from_secs(5),
        );
        assert_eq!(cls, ThermalClass::Low);
    }

    #[test]
    fn full_estimate_is_consistent() {
        let e = estimator();
        let model = IpPowerModel::default_cpu();
        let mix = InstructionMix::default();
        let (batt, temp) = e.estimate(&model, 100_000, &mix, 0.9, Celsius::new(30.0), Energy::ZERO);
        // a 100k-instruction task on a 100 J battery barely moves either
        assert_eq!(batt, BatteryClass::Full);
        assert_eq!(temp, ThermalClass::Low);
        // near a boundary the projection can demote the class
        let (batt, _) = e.estimate(
            &model,
            100_000,
            &mix,
            0.2501,
            Celsius::new(30.0),
            Energy::from_joules(2.0),
        );
        assert_eq!(batt, BatteryClass::Low);
    }

    #[test]
    fn task_nominal_matches_model() {
        let e = estimator();
        let model = IpPowerModel::default_cpu();
        let mix = InstructionMix::default();
        let (energy, dt) = e.task_nominal(&model, 1_000_000, &mix);
        assert_eq!(
            energy,
            model
                .execution_energy(1_000_000, &mix, PowerState::On1)
                .unwrap()
        );
        assert_eq!(
            dt,
            model
                .execution_time(1_000_000, &mix, PowerState::On1)
                .unwrap()
        );
    }
}
