//! Idle-time predictors.
//!
//! The paper (§1.3): *"The manager makes a prediction of the idle time.
//! This prediction is compared with the … break-even time."* It does not
//! fix the predictor, so this module provides the classic ones from the
//! DPM literature behind one trait, selected through [`PredictorKind`]
//! (and ablated in the benches).

use core::fmt;
use std::collections::VecDeque;

use dpm_units::{SimDuration, SimTime};

/// Observes the idle/busy alternation of one IP and predicts the length
/// of the idle period that just started.
pub trait IdlePredictor: fmt::Debug {
    /// Called when the IP becomes idle.
    fn idle_started(&mut self, now: SimTime);

    /// Called when work arrives again, closing the current idle period.
    fn idle_ended(&mut self, now: SimTime);

    /// Predicted length of the current (or next) idle period.
    fn predict(&self) -> SimDuration;
}

/// Predicts that the next idle period lasts as long as the previous one —
/// the simplest renewal assumption.
#[derive(Debug, Clone, PartialEq)]
pub struct LastIdlePredictor {
    started: Option<SimTime>,
    last: Option<SimDuration>,
    initial: SimDuration,
}

impl LastIdlePredictor {
    /// Uses `initial` until the first idle period completes.
    pub fn new(initial: SimDuration) -> Self {
        Self {
            started: None,
            last: None,
            initial,
        }
    }
}

impl IdlePredictor for LastIdlePredictor {
    fn idle_started(&mut self, now: SimTime) {
        self.started = Some(now);
    }

    fn idle_ended(&mut self, now: SimTime) {
        if let Some(start) = self.started.take() {
            self.last = Some(now.saturating_duration_since(start));
        }
    }

    fn predict(&self) -> SimDuration {
        self.last.unwrap_or(self.initial)
    }
}

/// Exponentially weighted average of observed idle lengths
/// (the Hwang–Wu predictor): `Iₙ₊₁ = α·iₙ + (1−α)·Iₙ`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpAveragePredictor {
    alpha: f64,
    estimate_s: f64,
    started: Option<SimTime>,
}

impl ExpAveragePredictor {
    /// Smoothing factor `alpha` in `(0, 1]`, seeded with `initial`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range `alpha`.
    pub fn new(alpha: f64, initial: SimDuration) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            estimate_s: initial.as_secs_f64(),
            started: None,
        }
    }
}

impl IdlePredictor for ExpAveragePredictor {
    fn idle_started(&mut self, now: SimTime) {
        self.started = Some(now);
    }

    fn idle_ended(&mut self, now: SimTime) {
        if let Some(start) = self.started.take() {
            let observed = now.saturating_duration_since(start).as_secs_f64();
            self.estimate_s = self.alpha * observed + (1.0 - self.alpha) * self.estimate_s;
        }
    }

    fn predict(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.estimate_s)
    }
}

/// Always predicts the same duration (degenerate baseline; with a large
/// constant it turns the LEM greedy, with zero it disables sleeping).
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPredictor {
    value: SimDuration,
}

impl FixedPredictor {
    /// Predicts `value` forever.
    pub fn new(value: SimDuration) -> Self {
        Self { value }
    }
}

impl IdlePredictor for FixedPredictor {
    fn idle_started(&mut self, _now: SimTime) {}
    fn idle_ended(&mut self, _now: SimTime) {}
    fn predict(&self) -> SimDuration {
        self.value
    }
}

/// Median of the last `k` observed idle lengths — robust to the
/// heavy-tailed gap distributions bursty workloads produce.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPredictor {
    window: VecDeque<SimDuration>,
    k: usize,
    started: Option<SimTime>,
    initial: SimDuration,
}

impl WindowPredictor {
    /// Median over the last `k` observations, seeded with `initial`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn new(k: usize, initial: SimDuration) -> Self {
        assert!(k > 0, "window size must be positive");
        Self {
            window: VecDeque::with_capacity(k),
            k,
            started: None,
            initial,
        }
    }
}

impl IdlePredictor for WindowPredictor {
    fn idle_started(&mut self, now: SimTime) {
        self.started = Some(now);
    }

    fn idle_ended(&mut self, now: SimTime) {
        if let Some(start) = self.started.take() {
            if self.window.len() == self.k {
                self.window.pop_front();
            }
            self.window.push_back(now.saturating_duration_since(start));
        }
    }

    fn predict(&self) -> SimDuration {
        if self.window.is_empty() {
            return self.initial;
        }
        let mut sorted: Vec<SimDuration> = self.window.iter().copied().collect();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }
}

/// Configuration enum mapping to a boxed predictor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PredictorKind {
    /// [`LastIdlePredictor`].
    LastIdle,
    /// [`ExpAveragePredictor`] with the given smoothing factor.
    ExpAverage {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// [`FixedPredictor`] with the given value in microseconds.
    Fixed {
        /// The constant prediction (µs).
        value_us: u64,
    },
    /// [`WindowPredictor`] over the last `k` idle periods.
    Window {
        /// Window length.
        k: usize,
    },
}

impl PredictorKind {
    /// Builds the predictor, seeding adaptives with `initial`.
    pub fn build(self, initial: SimDuration) -> Box<dyn IdlePredictor + 'static> {
        match self {
            PredictorKind::LastIdle => Box::new(LastIdlePredictor::new(initial)),
            PredictorKind::ExpAverage { alpha } => {
                Box::new(ExpAveragePredictor::new(alpha, initial))
            }
            PredictorKind::Fixed { value_us } => {
                Box::new(FixedPredictor::new(SimDuration::from_micros(value_us)))
            }
            PredictorKind::Window { k } => Box::new(WindowPredictor::new(k, initial)),
        }
    }
}

impl Default for PredictorKind {
    /// The exponential average with the literature-typical `α = 0.5`.
    fn default() -> Self {
        PredictorKind::ExpAverage { alpha: 0.5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_micros(x)
    }

    fn feed(p: &mut dyn IdlePredictor, idles_us: &[u64]) {
        let mut t = SimTime::ZERO;
        for &idle in idles_us {
            p.idle_started(t);
            t += us(idle);
            p.idle_ended(t);
            t += us(100); // busy period
        }
    }

    #[test]
    fn last_idle_tracks_previous() {
        let mut p = LastIdlePredictor::new(us(500));
        assert_eq!(p.predict(), us(500), "seed before observations");
        feed(&mut p, &[100, 300]);
        assert_eq!(p.predict(), us(300));
        feed(&mut p, &[50]);
        assert_eq!(p.predict(), us(50));
    }

    #[test]
    fn exp_average_converges_to_stationary_mean() {
        let mut p = ExpAveragePredictor::new(0.5, us(0));
        feed(&mut p, &[400; 20]);
        let predicted = p.predict().as_secs_f64() * 1e6;
        assert!((predicted - 400.0).abs() < 1.0, "{predicted} µs");
    }

    #[test]
    fn exp_average_damps_outliers() {
        let mut by_last = LastIdlePredictor::new(us(100));
        let mut by_avg = ExpAveragePredictor::new(0.25, us(100));
        let history = [100u64, 100, 100, 100, 5000];
        feed(&mut by_last, &history);
        feed(&mut by_avg, &history);
        // the last-idle predictor swallows the outlier whole
        assert_eq!(by_last.predict(), us(5000));
        // the exponential average damps it to 100 + 0.25*(4900)
        let avg_us = by_avg.predict().as_secs_f64() * 1e6;
        assert!(avg_us < 1500.0, "{avg_us} µs");
    }

    #[test]
    fn window_median_is_robust() {
        let mut p = WindowPredictor::new(5, us(100));
        assert_eq!(p.predict(), us(100));
        feed(&mut p, &[200, 210, 190, 10_000, 205]);
        let med = p.predict();
        assert!(med >= us(190) && med <= us(210), "median {med}");
    }

    #[test]
    fn window_slides() {
        let mut p = WindowPredictor::new(3, us(0));
        feed(&mut p, &[10, 10, 10, 1000, 1000, 1000]);
        assert_eq!(p.predict(), us(1000));
    }

    #[test]
    fn fixed_never_learns() {
        let mut p = FixedPredictor::new(us(42));
        feed(&mut p, &[1, 10_000, 7]);
        assert_eq!(p.predict(), us(42));
    }

    #[test]
    fn kind_builds_the_right_impl() {
        let p = PredictorKind::default().build(us(100));
        assert_eq!(p.predict(), us(100));
        let p = PredictorKind::Fixed { value_us: 7 }.build(us(100));
        assert_eq!(p.predict(), us(7));
        let p = PredictorKind::Window { k: 3 }.build(us(9));
        assert_eq!(p.predict(), us(9));
        let p = PredictorKind::LastIdle.build(us(11));
        assert_eq!(p.predict(), us(11));
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        let _ = ExpAveragePredictor::new(0.0, us(1));
    }

    #[test]
    fn unmatched_idle_end_is_ignored() {
        let mut p = LastIdlePredictor::new(us(77));
        p.idle_ended(SimTime::from_micros(50)); // no started: no-op
        assert_eq!(p.predict(), us(77));
    }
}
