//! Parser for the paper's natural-language rule form.
//!
//! The paper writes the policy as sentences like
//!
//! > *"If the priority is high and the battery is empty then the power
//! > state is ON4"*
//!
//! This module parses that shape (articles and the "the power state is"
//! boilerplate are optional):
//!
//! ```text
//! rule  := "if" cond ("and" cond)* "then" state
//! cond  := ("priority" | "battery" | "temperature" | "power") "is" values
//! values:= value ("or" value)*
//! state := ON1..ON4 | SL1..SL4 | OFF
//! ```
//!
//! # Examples
//!
//! ```
//! use dpm_core::policy::parse_rule;
//!
//! let rule = parse_rule("if priority is very high and battery is empty then ON4").unwrap();
//! assert_eq!(rule.then, dpm_power::PowerState::On4);
//! ```

use core::fmt;

use dpm_battery::BatteryClass;
use dpm_power::PowerState;
use dpm_thermal::ThermalClass;
use dpm_workload::Priority;

use super::sets::{BatterySet, PrioritySet, SourceCond, TempSet};
use super::{Rule, RuleSet};

/// Why a rule failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseRuleError {
    /// The rule has no `then` keyword.
    MissingThen,
    /// The rule does not start with `if`.
    MissingIf,
    /// A condition subject is not priority/battery/temperature/power.
    UnknownSubject(String),
    /// A value is not valid for its subject.
    UnknownValue {
        /// The condition subject.
        subject: String,
        /// The offending value.
        value: String,
    },
    /// The consequent is not a power state.
    UnknownState(String),
    /// A condition is missing its `is` keyword or values.
    MalformedCondition(String),
    /// The same subject appears twice.
    DuplicateSubject(String),
    /// An error with the line number it occurred on (from
    /// [`parse_rules`]).
    AtLine(usize, Box<ParseRuleError>),
}

impl fmt::Display for ParseRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRuleError::MissingThen => f.write_str("rule has no 'then' clause"),
            ParseRuleError::MissingIf => f.write_str("rule must start with 'if'"),
            ParseRuleError::UnknownSubject(s) => write!(f, "unknown condition subject '{s}'"),
            ParseRuleError::UnknownValue { subject, value } => {
                write!(f, "unknown {subject} value '{value}'")
            }
            ParseRuleError::UnknownState(s) => write!(f, "unknown power state '{s}'"),
            ParseRuleError::MalformedCondition(c) => write!(f, "malformed condition '{c}'"),
            ParseRuleError::DuplicateSubject(s) => write!(f, "subject '{s}' appears twice"),
            ParseRuleError::AtLine(n, e) => write!(f, "line {n}: {e}"),
        }
    }
}

impl std::error::Error for ParseRuleError {}

/// Lowercases and strips filler words ("the", "state", "power state is").
fn tokens(text: &str) -> Vec<String> {
    text.to_lowercase()
        .replace([',', '.', ';'], " ")
        .split_whitespace()
        .filter(|w| !matches!(*w, "the" | "a" | "an" | "state" | "mode"))
        .map(str::to_owned)
        .collect()
}

fn parse_state(word: &str) -> Result<PowerState, ParseRuleError> {
    Ok(match word {
        "on1" => PowerState::On1,
        "on2" => PowerState::On2,
        "on3" => PowerState::On3,
        "on4" => PowerState::On4,
        "sl1" | "sleep1" => PowerState::Sl1,
        "sl2" | "sleep2" => PowerState::Sl2,
        "sl3" | "sleep3" => PowerState::Sl3,
        "sl4" | "sleep4" => PowerState::Sl4,
        "off" | "softoff" => PowerState::SoftOff,
        other => return Err(ParseRuleError::UnknownState(other.to_owned())),
    })
}

/// Splits value tokens on `or`, joining multi-word values ("very high").
fn value_groups(words: &[String]) -> Vec<String> {
    let mut groups = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    for w in words {
        if w == "or" {
            if !current.is_empty() {
                groups.push(current.join(" "));
                current.clear();
            }
        } else {
            current.push(w);
        }
    }
    if !current.is_empty() {
        groups.push(current.join(" "));
    }
    groups
}

#[derive(Default)]
struct Builder {
    priorities: Option<PrioritySet>,
    batteries: Option<BatterySet>,
    temperatures: Option<TempSet>,
    source: Option<SourceCond>,
}

fn apply_condition(b: &mut Builder, words: &[String]) -> Result<(), ParseRuleError> {
    let joined = words.join(" ");
    let Some((subject, rest)) = words.split_first() else {
        return Err(ParseRuleError::MalformedCondition(joined));
    };
    let Some((is, values)) = rest.split_first() else {
        return Err(ParseRuleError::MalformedCondition(joined));
    };
    if is != "is" || values.is_empty() {
        return Err(ParseRuleError::MalformedCondition(joined));
    }
    let groups = value_groups(values);
    match subject.as_str() {
        "priority" => {
            if b.priorities.is_some() {
                return Err(ParseRuleError::DuplicateSubject("priority".into()));
            }
            let mut set = PrioritySet::none();
            for g in &groups {
                let p = match g.as_str() {
                    "low" => Priority::Low,
                    "medium" => Priority::Medium,
                    "high" => Priority::High,
                    "very high" | "veryhigh" | "very-high" => Priority::VeryHigh,
                    other => {
                        return Err(ParseRuleError::UnknownValue {
                            subject: "priority".into(),
                            value: other.to_owned(),
                        })
                    }
                };
                set = set.union(PrioritySet::only(p));
            }
            b.priorities = Some(set);
        }
        "battery" => {
            if b.batteries.is_some() {
                return Err(ParseRuleError::DuplicateSubject("battery".into()));
            }
            let mut set = BatterySet::none();
            for g in &groups {
                let c = match g.as_str() {
                    "empty" => BatteryClass::Empty,
                    "low" => BatteryClass::Low,
                    "medium" => BatteryClass::Medium,
                    "high" => BatteryClass::High,
                    "full" => BatteryClass::Full,
                    other => {
                        return Err(ParseRuleError::UnknownValue {
                            subject: "battery".into(),
                            value: other.to_owned(),
                        })
                    }
                };
                set = set.union(BatterySet::only(c));
            }
            b.batteries = Some(set);
        }
        "temperature" => {
            if b.temperatures.is_some() {
                return Err(ParseRuleError::DuplicateSubject("temperature".into()));
            }
            let mut set = TempSet::none();
            for g in &groups {
                let c = match g.as_str() {
                    "low" => ThermalClass::Low,
                    "medium" => ThermalClass::Medium,
                    "high" => ThermalClass::High,
                    other => {
                        return Err(ParseRuleError::UnknownValue {
                            subject: "temperature".into(),
                            value: other.to_owned(),
                        })
                    }
                };
                set = set.union(TempSet::only(c));
            }
            b.temperatures = Some(set);
        }
        "power" | "source" | "supply" => {
            if b.source.is_some() {
                return Err(ParseRuleError::DuplicateSubject("power".into()));
            }
            let cond = match groups.first().map(String::as_str) {
                Some("supply" | "mains") => SourceCond::MainsOnly,
                Some("battery") => SourceCond::BatteryOnly,
                other => {
                    return Err(ParseRuleError::UnknownValue {
                        subject: "power".into(),
                        value: other.unwrap_or("").to_owned(),
                    })
                }
            };
            b.source = Some(cond);
        }
        other => return Err(ParseRuleError::UnknownSubject(other.to_owned())),
    }
    Ok(())
}

/// Parses one rule sentence.
///
/// Omitted subjects are wildcards. A rule that tests the battery (and has
/// no explicit power condition) implicitly applies only on battery power,
/// matching the interpretation of the paper's table.
///
/// # Errors
///
/// Returns a [`ParseRuleError`] describing the first problem found.
pub fn parse_rule(text: &str) -> Result<Rule, ParseRuleError> {
    let toks = tokens(text);
    let then_pos = toks
        .iter()
        .position(|w| w == "then")
        .ok_or(ParseRuleError::MissingThen)?;
    let (lhs, rhs) = toks.split_at(then_pos);
    let rhs = &rhs[1..]; // drop "then"
    let state_word = rhs
        .iter()
        .rev()
        .find(|w| w.as_str() != "is")
        .ok_or_else(|| ParseRuleError::UnknownState(String::new()))?;
    let then = parse_state(state_word)?;

    let Some((first, conds)) = lhs.split_first() else {
        return Err(ParseRuleError::MissingIf);
    };
    if first != "if" {
        return Err(ParseRuleError::MissingIf);
    }
    let mut builder = Builder::default();
    for cond in conds.split(|w| w == "and") {
        if cond.is_empty() {
            continue;
        }
        apply_condition(&mut builder, cond)?;
    }
    let source = builder.source.unwrap_or(match builder.batteries {
        Some(_) => SourceCond::BatteryOnly,
        None => SourceCond::Any,
    });
    Ok(Rule {
        priorities: builder.priorities.unwrap_or(PrioritySet::any()),
        batteries: builder.batteries.unwrap_or(BatterySet::any()),
        temperatures: builder.temperatures.unwrap_or(TempSet::any()),
        source,
        then,
    })
}

/// Parses a whole policy: one rule per line, `#` comments and blank lines
/// ignored; row order is match order.
///
/// # Errors
///
/// Returns the first error wrapped with its 1-based line number.
pub fn parse_rules(text: &str) -> Result<RuleSet, ParseRuleError> {
    let mut rules = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = parse_rule(line).map_err(|e| ParseRuleError::AtLine(i + 1, Box::new(e)))?;
        rules.push(rule);
    }
    Ok(RuleSet::new(rules))
}

/// The paper's Table 1 in sentence form (used by tests and the
/// `policy_explorer` example to show the two representations agree).
pub const TABLE1_TEXT: &str = "\
# Conti DATE'05, Table 1 - power state selection algorithm
if priority is very high and battery is empty then ON4
if priority is very high and temperature is high then ON4
if priority is high or medium or low and battery is empty then SL1
if priority is high or medium or low and temperature is high then SL1
if battery is low and temperature is medium or low then ON4
if battery is empty and temperature is medium then ON4
if priority is very high and battery is medium or high and temperature is low then ON1
if priority is high and battery is medium or high and temperature is low then ON2
if priority is medium and battery is medium or high and temperature is low then ON3
if priority is low and battery is medium or high and temperature is low then ON4
if priority is very high or high or medium and battery is full and temperature is low then ON1
if priority is low and battery is full and temperature is low then ON2
if power is supply and temperature is medium or low then ON1
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::table1;

    #[test]
    fn parses_single_rule_with_multiword_priority() {
        let r = parse_rule("if priority is very high and battery is empty then ON4").unwrap();
        assert!(r.priorities.contains(Priority::VeryHigh));
        assert!(!r.priorities.contains(Priority::High));
        assert!(r.batteries.contains(BatteryClass::Empty));
        assert_eq!(r.batteries.len(), 1);
        assert!(r.temperatures.is_any());
        assert_eq!(r.source, SourceCond::BatteryOnly);
        assert_eq!(r.then, PowerState::On4);
    }

    #[test]
    fn accepts_the_papers_prose_form() {
        let r = parse_rule(
            "If the priority is high and the battery is empty then the power state is ON4",
        )
        .unwrap();
        assert!(r.priorities.contains(Priority::High));
        assert_eq!(r.then, PowerState::On4);
    }

    #[test]
    fn dsl_table_equals_programmatic_table() {
        let parsed = parse_rules(TABLE1_TEXT).unwrap();
        let programmatic = table1();
        assert_eq!(parsed.rules().len(), programmatic.rules().len());
        for (i, (a, b)) in parsed.rules().iter().zip(programmatic.rules()).enumerate() {
            assert_eq!(a, b, "row {i} differs: parsed '{a}' vs table '{b}'");
        }
    }

    #[test]
    fn or_lists_and_omitted_subjects() {
        let r = parse_rule("if temperature is medium or low then on1").unwrap();
        assert!(r.priorities.is_any());
        assert!(r.batteries.is_any());
        assert!(r.temperatures.contains(ThermalClass::Low));
        assert!(r.temperatures.contains(ThermalClass::Medium));
        assert!(!r.temperatures.contains(ThermalClass::High));
        assert_eq!(r.source, SourceCond::Any);
    }

    #[test]
    fn power_supply_condition() {
        let r = parse_rule("if power is supply and temperature is low then on1").unwrap();
        assert_eq!(r.source, SourceCond::MainsOnly);
        let r = parse_rule("if power is battery then on4").unwrap();
        assert_eq!(r.source, SourceCond::BatteryOnly);
    }

    #[test]
    fn error_reporting() {
        assert_eq!(
            parse_rule("priority is high then on1"),
            Err(ParseRuleError::MissingIf)
        );
        assert_eq!(
            parse_rule("if priority is high"),
            Err(ParseRuleError::MissingThen)
        );
        assert!(matches!(
            parse_rule("if colour is red then on1"),
            Err(ParseRuleError::UnknownSubject(_))
        ));
        assert!(matches!(
            parse_rule("if battery is purple then on1"),
            Err(ParseRuleError::UnknownValue { .. })
        ));
        assert!(matches!(
            parse_rule("if battery is low then warp9"),
            Err(ParseRuleError::UnknownState(_))
        ));
        assert!(matches!(
            parse_rule("if battery is low and battery is full then on1"),
            Err(ParseRuleError::DuplicateSubject(_))
        ));
    }

    #[test]
    fn line_numbers_in_batch_errors() {
        let err = parse_rules("if battery is low then on4\nif nonsense then on1\n").unwrap_err();
        assert!(err.to_string().starts_with("line 2:"));
        match err {
            ParseRuleError::AtLine(2, inner) => {
                assert!(matches!(*inner, ParseRuleError::MalformedCondition(_)));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let rs = parse_rules("# nothing\n\n  \nif battery is full then on1\n").unwrap();
        assert_eq!(rs.rules().len(), 1);
    }
}
