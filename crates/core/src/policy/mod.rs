//! The LEM's power-state selection policy (paper Table 1).
//!
//! The paper presents the selection algorithm as a table of wildcard rows
//! over *(task priority, battery status, chip temperature)* plus a
//! power-supply row, and notes the rules *"can be seen as expressions of
//! the natural language, as in the fuzzy rules"*. This module implements:
//!
//! * [`RuleSet`] — ordered wildcard rules with **first-match** semantics,
//!   a documented fallback (demote temperature Medium to Low and retry)
//!   for the combinations the paper's table does not cover, and static
//!   analyses: [`RuleSet::uncovered`] (which inputs use the fallback) and
//!   [`RuleSet::shadowed`] (which rows can never fire — the paper's row 6
//!   is genuinely shadowed by rows 1 and 3).
//! * [`table1`] — the paper's table as data.
//! * [`dsl`] — a parser for the natural-language rule form
//!   (`if priority is high and battery is empty then SL1`).
//! * [`fuzzy`] — a fuzzy-inference variant working on the *continuous*
//!   state of charge and temperature (extension).

pub mod dsl;
pub mod fuzzy;
mod sets;
mod table;

pub use dsl::{parse_rule, parse_rules, ParseRuleError, TABLE1_TEXT};
pub use fuzzy::{FuzzyPolicy, FuzzySelection};
pub use sets::{BatterySet, PrioritySet, SourceCond, TempSet};
pub use table::table1;

use core::fmt;

use dpm_battery::{BatteryClass, PowerSource};
use dpm_power::PowerState;
use dpm_thermal::ThermalClass;
use dpm_workload::Priority;

/// The classified inputs a selection is made from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyInputs {
    /// Priority of the task about to run.
    pub priority: Priority,
    /// Battery status class (possibly the *estimated end-of-task* class).
    pub battery: BatteryClass,
    /// Chip temperature class (possibly estimated).
    pub temperature: ThermalClass,
    /// Whether the SoC runs from battery or mains.
    pub source: PowerSource,
}

impl fmt::Display for PolicyInputs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pri={} batt={} temp={} src={}",
            self.priority.code(),
            self.battery.code(),
            self.temperature.code(),
            self.source
        )
    }
}

/// One row of the policy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Matching task priorities.
    pub priorities: PrioritySet,
    /// Matching battery classes.
    pub batteries: BatterySet,
    /// Matching temperature classes.
    pub temperatures: TempSet,
    /// Power-source condition.
    pub source: SourceCond,
    /// Selected state when the rule fires.
    pub then: PowerState,
}

impl Rule {
    /// `true` when the rule matches `inputs`.
    pub fn matches(&self, inputs: PolicyInputs) -> bool {
        self.source.matches(inputs.source)
            && self.priorities.contains(inputs.priority)
            && self.batteries.contains(inputs.battery)
            && self.temperatures.contains(inputs.temperature)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} -> {}",
            self.priorities, self.batteries, self.temperatures, self.source, self.then
        )
    }
}

/// How a selection was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// The selected power state.
    pub state: PowerState,
    /// Index of the rule that fired, if any.
    pub rule_index: Option<usize>,
    /// `true` when the temperature-demotion fallback was needed.
    pub used_fallback: bool,
}

/// An ordered, first-match rule table.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    rules: Vec<Rule>,
    /// State used if even the fallback pass matches nothing.
    default_state: PowerState,
}

impl RuleSet {
    /// A rule set with the given rows (first match wins) and an ultimate
    /// default of `ON1`.
    pub fn new(rules: Vec<Rule>) -> Self {
        Self {
            rules,
            default_state: PowerState::On1,
        }
    }

    /// Overrides the ultimate default state.
    #[must_use]
    pub fn with_default(mut self, state: PowerState) -> Self {
        self.default_state = state;
        self
    }

    /// The rows.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    fn first_match(&self, inputs: PolicyInputs) -> Option<(usize, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .find(|(_, r)| r.matches(inputs))
    }

    /// Selects a power state for `inputs`.
    ///
    /// When no row matches, the documented fallback demotes a `Medium`
    /// temperature to `Low` and retries (the paper's table leaves e.g.
    /// *battery Full, temperature Medium* uncovered); if that still fails,
    /// the default state is returned.
    pub fn select(&self, inputs: PolicyInputs) -> Selection {
        if let Some((i, r)) = self.first_match(inputs) {
            return Selection {
                state: r.then,
                rule_index: Some(i),
                used_fallback: false,
            };
        }
        if inputs.temperature == ThermalClass::Medium {
            let demoted = PolicyInputs {
                temperature: ThermalClass::Low,
                ..inputs
            };
            if let Some((i, r)) = self.first_match(demoted) {
                return Selection {
                    state: r.then,
                    rule_index: Some(i),
                    used_fallback: true,
                };
            }
        }
        Selection {
            state: self.default_state,
            rule_index: None,
            used_fallback: true,
        }
    }

    /// Iterates the full input space (both power sources).
    pub fn input_space() -> impl Iterator<Item = PolicyInputs> {
        Priority::ALL.into_iter().flat_map(|priority| {
            BatteryClass::ALL.into_iter().flat_map(move |battery| {
                ThermalClass::ALL.into_iter().flat_map(move |temperature| {
                    [PowerSource::Battery, PowerSource::Mains]
                        .into_iter()
                        .map(move |source| PolicyInputs {
                            priority,
                            battery,
                            temperature,
                            source,
                        })
                })
            })
        })
    }

    /// Every input combination that needs the fallback (i.e. no row
    /// matches directly). Use it to audit the table's coverage.
    pub fn uncovered(&self) -> Vec<PolicyInputs> {
        Self::input_space()
            .filter(|i| self.first_match(*i).is_none())
            .collect()
    }

    /// Indices of rows that can never fire because earlier rows match
    /// every input they would (the paper's row 6 is an example).
    pub fn shadowed(&self) -> Vec<usize> {
        let mut reachable = vec![false; self.rules.len()];
        for inputs in Self::input_space() {
            if let Some((i, _)) = self.first_match(inputs) {
                reachable[i] = true;
            }
        }
        reachable
            .iter()
            .enumerate()
            .filter_map(|(i, r)| (!r).then_some(i))
            .collect()
    }
}

/// A dense precomputation of [`RuleSet::select`] over the full input
/// space (4 priorities × 5 battery classes × 3 thermal classes × 2
/// sources = 120 entries).
///
/// The LEM consults the policy on every task request and on every
/// deferred-task re-evaluation, which makes the linear first-match scan
/// (plus its fallback retry) a hot-loop cost. The table trades a one-time
/// 120-call precomputation at elaboration for an O(1) array lookup at
/// selection time, preserving `rule_index` and `used_fallback` exactly —
/// its results are byte-for-byte those of the [`RuleSet`] it was built
/// from.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyTable {
    entries: Vec<Selection>,
}

impl PolicyTable {
    fn slot(inputs: PolicyInputs) -> usize {
        (((inputs.priority as usize) * 5 + inputs.battery as usize) * 3
            + inputs.temperature as usize)
            * 2
            + inputs.source as usize
    }

    /// Precomputes every selection of `rules`.
    pub fn new(rules: &RuleSet) -> Self {
        let mut entries = vec![
            Selection {
                state: PowerState::On1,
                rule_index: None,
                used_fallback: true,
            };
            4 * 5 * 3 * 2
        ];
        for inputs in RuleSet::input_space() {
            entries[Self::slot(inputs)] = rules.select(inputs);
        }
        Self { entries }
    }

    /// The selection for `inputs` — identical to the source rule set's
    /// [`RuleSet::select`].
    pub fn select(&self, inputs: PolicyInputs) -> Selection {
        self.entries[Self::slot(inputs)]
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "priority battery temperature source -> state")?;
        for (i, r) in self.rules.iter().enumerate() {
            writeln!(f, "{i:2}: {r}")?;
        }
        write!(f, "default: {}", self.default_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(p: PrioritySet, b: BatterySet, t: TempSet, then: PowerState) -> Rule {
        Rule {
            priorities: p,
            batteries: b,
            temperatures: t,
            source: SourceCond::BatteryOnly,
            then,
        }
    }

    #[test]
    fn first_match_wins() {
        let rs = RuleSet::new(vec![
            rule(
                PrioritySet::only(Priority::VeryHigh),
                BatterySet::any(),
                TempSet::any(),
                PowerState::On4,
            ),
            rule(
                PrioritySet::any(),
                BatterySet::any(),
                TempSet::any(),
                PowerState::Sl1,
            ),
        ]);
        let sel = rs.select(PolicyInputs {
            priority: Priority::VeryHigh,
            battery: BatteryClass::Full,
            temperature: ThermalClass::Low,
            source: PowerSource::Battery,
        });
        assert_eq!(sel.state, PowerState::On4);
        assert_eq!(sel.rule_index, Some(0));
        assert!(!sel.used_fallback);
    }

    #[test]
    fn fallback_demotes_medium_temperature() {
        let rs = RuleSet::new(vec![rule(
            PrioritySet::any(),
            BatterySet::any(),
            TempSet::only(ThermalClass::Low),
            PowerState::On2,
        )]);
        let sel = rs.select(PolicyInputs {
            priority: Priority::Low,
            battery: BatteryClass::Full,
            temperature: ThermalClass::Medium,
            source: PowerSource::Battery,
        });
        assert_eq!(sel.state, PowerState::On2);
        assert!(sel.used_fallback);
        assert_eq!(sel.rule_index, Some(0));
    }

    #[test]
    fn ultimate_default_applies() {
        let rs = RuleSet::new(vec![]).with_default(PowerState::On3);
        let sel = rs.select(PolicyInputs {
            priority: Priority::Low,
            battery: BatteryClass::Full,
            temperature: ThermalClass::High,
            source: PowerSource::Battery,
        });
        assert_eq!(sel.state, PowerState::On3);
        assert_eq!(sel.rule_index, None);
        assert!(sel.used_fallback);
    }

    #[test]
    fn shadowing_detection() {
        let rs = RuleSet::new(vec![
            rule(
                PrioritySet::any(),
                BatterySet::any(),
                TempSet::any(),
                PowerState::On1,
            ),
            rule(
                PrioritySet::only(Priority::Low),
                BatterySet::any(),
                TempSet::any(),
                PowerState::On4,
            ),
        ]);
        assert_eq!(rs.shadowed(), vec![1]);
    }

    #[test]
    fn input_space_is_complete() {
        assert_eq!(RuleSet::input_space().count(), 4 * 5 * 3 * 2);
    }

    #[test]
    fn dense_table_matches_rule_set_everywhere() {
        for rules in [
            table1(),
            RuleSet::new(vec![]).with_default(PowerState::On3),
            RuleSet::new(vec![rule(
                PrioritySet::any(),
                BatterySet::any(),
                TempSet::only(ThermalClass::Low),
                PowerState::On2,
            )]),
        ] {
            let table = PolicyTable::new(&rules);
            for inputs in RuleSet::input_space() {
                assert_eq!(table.select(inputs), rules.select(inputs), "{inputs}");
            }
        }
    }
}
