//! Bitmask sets over the classified input domains (rule wildcards).

use core::fmt;

use dpm_battery::{BatteryClass, PowerSource};
use dpm_thermal::ThermalClass;
use dpm_workload::Priority;

macro_rules! class_set {
    ($(#[$meta:meta])* $name:ident, $class:ty, $count:expr, $codes:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(u8);

        impl $name {
            /// The wildcard set (matches every class).
            pub const fn any() -> Self {
                Self((1 << $count) - 1)
            }

            /// The empty set (matches nothing; useful for builders).
            pub const fn none() -> Self {
                Self(0)
            }

            /// The singleton set.
            pub fn only(class: $class) -> Self {
                Self(1 << class.index())
            }

            /// A set from a list of classes.
            pub fn of(classes: &[$class]) -> Self {
                let mut bits = 0u8;
                for c in classes {
                    bits |= 1 << c.index();
                }
                Self(bits)
            }

            /// `true` when `class` is in the set.
            pub fn contains(self, class: $class) -> bool {
                self.0 & (1 << class.index()) != 0
            }

            /// `true` when the set matches every class.
            pub fn is_any(self) -> bool {
                self == Self::any()
            }

            /// Union of two sets.
            #[must_use]
            pub fn union(self, other: Self) -> Self {
                Self(self.0 | other.0)
            }

            /// Number of classes in the set.
            pub fn len(self) -> u32 {
                self.0.count_ones()
            }

            /// `true` when no class matches.
            pub fn is_empty(self) -> bool {
                self.0 == 0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.is_any() {
                    return f.write_str("-");
                }
                let codes: &[char] = &$codes;
                let mut first = true;
                for (i, code) in codes.iter().enumerate() {
                    if self.0 & (1 << i) != 0 {
                        if !first {
                            f.write_str(",")?;
                        }
                        write!(f, "{code}")?;
                        first = false;
                    }
                }
                if first {
                    f.write_str("(none)")?;
                }
                Ok(())
            }
        }
    };
}

class_set!(
    /// Set of task priorities a rule matches ("-" is the wildcard).
    PrioritySet,
    Priority,
    4,
    ['L', 'M', 'H', 'V']
);

class_set!(
    /// Set of battery classes a rule matches.
    BatterySet,
    BatteryClass,
    5,
    ['E', 'L', 'M', 'H', 'F']
);

class_set!(
    /// Set of temperature classes a rule matches.
    TempSet,
    ThermalClass,
    3,
    ['L', 'M', 'H']
);

/// Power-source condition of a rule.
///
/// Rows of the paper's Table 1 that test a battery class implicitly apply
/// only when the SoC runs from the battery; the "Power supply" row applies
/// only on mains; the purely thermal rows apply to both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SourceCond {
    /// Applies regardless of the power source.
    #[default]
    Any,
    /// Applies only when running from the battery.
    BatteryOnly,
    /// Applies only when running from the mains ("Power supply").
    MainsOnly,
}

impl SourceCond {
    /// `true` when the condition admits `source`.
    pub fn matches(self, source: PowerSource) -> bool {
        match self {
            SourceCond::Any => true,
            SourceCond::BatteryOnly => source == PowerSource::Battery,
            SourceCond::MainsOnly => source == PowerSource::Mains,
        }
    }
}

impl fmt::Display for SourceCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SourceCond::Any => "any",
            SourceCond::BatteryOnly => "batt",
            SourceCond::MainsOnly => "mains",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_contains_everything() {
        for p in Priority::ALL {
            assert!(PrioritySet::any().contains(p));
        }
        for b in BatteryClass::ALL {
            assert!(BatterySet::any().contains(b));
        }
        for t in ThermalClass::ALL {
            assert!(TempSet::any().contains(t));
        }
    }

    #[test]
    fn of_and_only() {
        let s = PrioritySet::of(&[Priority::High, Priority::Medium, Priority::Low]);
        assert!(s.contains(Priority::High));
        assert!(!s.contains(Priority::VeryHigh));
        assert_eq!(s.len(), 3);
        assert_eq!(PrioritySet::only(Priority::VeryHigh).len(), 1);
        assert!(PrioritySet::none().is_empty());
    }

    #[test]
    fn union_composes() {
        let s = BatterySet::only(BatteryClass::Medium).union(BatterySet::only(BatteryClass::High));
        assert!(s.contains(BatteryClass::Medium));
        assert!(s.contains(BatteryClass::High));
        assert!(!s.contains(BatteryClass::Full));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(PrioritySet::any().to_string(), "-");
        assert_eq!(
            PrioritySet::of(&[Priority::High, Priority::Medium, Priority::Low]).to_string(),
            "L,M,H"
        );
        assert_eq!(BatterySet::only(BatteryClass::Empty).to_string(), "E");
        assert_eq!(
            TempSet::of(&[ThermalClass::Medium, ThermalClass::Low]).to_string(),
            "L,M"
        );
    }

    #[test]
    fn source_conditions() {
        assert!(SourceCond::Any.matches(PowerSource::Battery));
        assert!(SourceCond::Any.matches(PowerSource::Mains));
        assert!(SourceCond::BatteryOnly.matches(PowerSource::Battery));
        assert!(!SourceCond::BatteryOnly.matches(PowerSource::Mains));
        assert!(SourceCond::MainsOnly.matches(PowerSource::Mains));
        assert!(!SourceCond::MainsOnly.matches(PowerSource::Battery));
    }
}
