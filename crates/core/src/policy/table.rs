//! The paper's Table 1, row for row.

use dpm_battery::BatteryClass::{self, Empty, Full, High as BHigh, Low as BLow, Medium as BMed};
use dpm_power::PowerState;
use dpm_thermal::ThermalClass::{self, High as THigh, Low as TLow, Medium as TMed};
use dpm_workload::Priority::{self, High, Low, Medium, VeryHigh};

use super::sets::{BatterySet, PrioritySet, SourceCond, TempSet};
use super::{Rule, RuleSet};

fn row(
    priorities: &[Priority],
    batteries: &[BatteryClass],
    temperatures: &[ThermalClass],
    source: SourceCond,
    then: PowerState,
) -> Rule {
    Rule {
        priorities: if priorities.is_empty() {
            PrioritySet::any()
        } else {
            PrioritySet::of(priorities)
        },
        batteries: if batteries.is_empty() {
            BatterySet::any()
        } else {
            BatterySet::of(batteries)
        },
        temperatures: if temperatures.is_empty() {
            TempSet::any()
        } else {
            TempSet::of(temperatures)
        },
        source,
        then,
    }
}

/// The paper's power-state selection algorithm (Table 1), with first-match
/// semantics and the source interpretation documented in
/// [`SourceCond`]: battery-testing rows apply on battery power, the
/// "Power supply" row applies on mains, purely thermal rows apply always.
///
/// ```text
/// Task priority | Battery      | Temperature | Selected state
/// V             | E            | -           | ON4
/// V             | -            | H           | ON4
/// H, M, L       | E            | -           | SL1
/// H, M, L       | -            | H           | SL1
/// -             | L            | M, L        | ON4
/// -             | E            | M           | ON4    (shadowed; kept verbatim)
/// V             | M, H         | L           | ON1
/// H             | M, H         | L           | ON2
/// M             | M, H         | L           | ON3
/// L             | M, H         | L           | ON4
/// V, H, M       | F            | L           | ON1
/// L             | F            | L           | ON2
/// -             | Power supply | M, L        | ON1
/// ```
pub fn table1() -> RuleSet {
    use PowerState::*;
    use SourceCond::{Any, BatteryOnly, MainsOnly};
    RuleSet::new(vec![
        // 0: V E - -> ON4 (critical work runs even on an empty battery)
        row(&[VeryHigh], &[Empty], &[], BatteryOnly, On4),
        // 1: V - H -> ON4 (critical work runs even when hot, but slowly)
        row(&[VeryHigh], &[], &[THigh], Any, On4),
        // 2: H,M,L E - -> SL1 (everything else halts on an empty battery)
        row(&[High, Medium, Low], &[Empty], &[], BatteryOnly, Sl1),
        // 3: H,M,L - H -> SL1 (cool-down: defer non-critical work)
        row(&[High, Medium, Low], &[], &[THigh], Any, Sl1),
        // 4: - L M,L -> ON4 (battery low: crawl, regardless of priority)
        row(&[], &[BLow], &[TMed, TLow], BatteryOnly, On4),
        // 5: - E M -> ON4 (verbatim from the paper; shadowed by rows 0/2)
        row(&[], &[Empty], &[TMed], BatteryOnly, On4),
        // 6..9: battery M/H + temp L: speed by priority
        row(&[VeryHigh], &[BMed, BHigh], &[TLow], BatteryOnly, On1),
        row(&[High], &[BMed, BHigh], &[TLow], BatteryOnly, On2),
        row(&[Medium], &[BMed, BHigh], &[TLow], BatteryOnly, On3),
        row(&[Low], &[BMed, BHigh], &[TLow], BatteryOnly, On4),
        // 10..11: battery F + temp L: almost everything at full speed
        row(
            &[VeryHigh, High, Medium],
            &[Full],
            &[TLow],
            BatteryOnly,
            On1,
        ),
        row(&[Low], &[Full], &[TLow], BatteryOnly, On2),
        // 12: "- Power supply M,L -> ON1"
        row(&[], &[], &[TMed, TLow], MainsOnly, On1),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyInputs;
    use dpm_battery::PowerSource;

    fn sel(priority: Priority, battery: BatteryClass, temperature: ThermalClass) -> PowerState {
        table1()
            .select(PolicyInputs {
                priority,
                battery,
                temperature,
                source: PowerSource::Battery,
            })
            .state
    }

    #[test]
    fn paper_rows_fire_as_printed() {
        use PowerState::*;
        // row 0/1: very high priority emergencies -> ON4
        assert_eq!(sel(VeryHigh, Empty, TLow), On4);
        assert_eq!(sel(VeryHigh, Full, THigh), On4);
        // row 2/3: everything else halts in emergencies
        assert_eq!(sel(High, Empty, TLow), Sl1);
        assert_eq!(sel(Medium, Empty, TMed), Sl1);
        assert_eq!(sel(Low, Full, THigh), Sl1);
        assert_eq!(sel(High, BMed, THigh), Sl1);
        // row 4: battery low -> ON4 for everyone
        assert_eq!(sel(VeryHigh, BLow, TLow), On4);
        assert_eq!(sel(Low, BLow, TMed), On4);
        // rows 6..9: priority ladder at battery M/H, temp L
        assert_eq!(sel(VeryHigh, BMed, TLow), On1);
        assert_eq!(sel(High, BMed, TLow), On2);
        assert_eq!(sel(Medium, BHigh, TLow), On3);
        assert_eq!(sel(Low, BHigh, TLow), On4);
        // rows 10..11: battery Full, temp L
        assert_eq!(sel(VeryHigh, Full, TLow), On1);
        assert_eq!(sel(High, Full, TLow), On1);
        assert_eq!(sel(Medium, Full, TLow), On1);
        assert_eq!(sel(Low, Full, TLow), On2);
    }

    #[test]
    fn mains_row_fires_on_power_supply() {
        let rs = table1();
        for t in [TLow, TMed] {
            let s = rs.select(PolicyInputs {
                priority: Low,
                battery: Empty, // irrelevant on mains
                temperature: t,
                source: PowerSource::Mains,
            });
            assert_eq!(s.state, PowerState::On1);
            assert!(!s.used_fallback);
        }
        // thermal emergency still bites on mains
        let s = rs.select(PolicyInputs {
            priority: Low,
            battery: Full,
            temperature: THigh,
            source: PowerSource::Mains,
        });
        assert_eq!(s.state, PowerState::Sl1);
    }

    #[test]
    fn row_5_is_shadowed_exactly() {
        // "- E M -> ON4" can never fire: V E M hits row 0, {H,M,L} E M hits
        // row 2. The analysis must find precisely this row.
        assert_eq!(table1().shadowed(), vec![5]);
    }

    #[test]
    fn uncovered_combinations_are_the_medium_temperature_gap() {
        let rs = table1();
        let gaps = rs.uncovered();
        // Exactly the battery-powered (M/H/F battery, Medium temp) inputs
        // lack a direct row: 4 priorities × 3 batteries = 12 combinations.
        assert_eq!(gaps.len(), 12);
        for g in &gaps {
            assert_eq!(g.source, PowerSource::Battery);
            assert_eq!(g.temperature, TMed);
            assert!(matches!(g.battery, BMed | BHigh | Full), "{g}");
        }
    }

    #[test]
    fn fallback_resolves_medium_temperature_gap_reasonably() {
        // battery Full, temp Medium: fallback demotes to temp Low ->
        // priority ladder of the Full column.
        assert_eq!(sel(VeryHigh, Full, TMed), PowerState::On1);
        assert_eq!(sel(Low, Full, TMed), PowerState::On2);
        assert_eq!(sel(Medium, BMed, TMed), PowerState::On3);
        let s = table1().select(PolicyInputs {
            priority: Medium,
            battery: Full,
            temperature: TMed,
            source: PowerSource::Battery,
        });
        assert!(s.used_fallback);
    }

    #[test]
    fn every_input_yields_a_state() {
        let rs = table1();
        for inputs in RuleSet::input_space() {
            let s = rs.select(inputs);
            // All states the table can produce are ON or SL1.
            assert!(
                s.state.is_execution() || s.state == PowerState::Sl1,
                "{inputs} -> {}",
                s.state
            );
        }
    }

    #[test]
    fn table_renders_thirteen_rows() {
        let printed = table1().to_string();
        assert_eq!(table1().rules().len(), 13);
        assert!(printed.contains("-> ON4"));
        assert!(printed.contains("-> SL1"));
    }
}
