//! Fuzzy-inference variant of the rule engine (extension).
//!
//! The paper notes its rules *"can be seen as expressions of the natural
//! language, as in the fuzzy rules"*. This module takes that reading
//! literally: instead of quantizing the battery state of charge and chip
//! temperature into crisp classes first, each class becomes a triangular
//! membership function over the continuous measurement, every rule fires
//! with the strength of its weakest antecedent (Mamdani min), and the
//! state whose supporting rules accumulate the most strength wins.
//!
//! Near class boundaries this removes the policy discontinuities of the
//! crisp table — the selected state changes where the membership balance
//! tips, not exactly at the threshold — while far from boundaries it
//! reproduces the crisp table's choice.

use dpm_battery::{BatteryClass, PowerSource};
use dpm_power::PowerState;
use dpm_thermal::ThermalClass;
use dpm_units::Celsius;
use dpm_workload::Priority;

use super::RuleSet;

/// Triangular membership: 1 at `peak`, 0 beyond `left`/`right`; the
/// outermost classes get open shoulders.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Triangle {
    left: f64,
    peak: f64,
    right: f64,
    open_left: bool,
    open_right: bool,
}

impl Triangle {
    fn grade(&self, x: f64) -> f64 {
        if x <= self.peak {
            if self.open_left {
                return 1.0;
            }
            if x <= self.left {
                0.0
            } else {
                (x - self.left) / (self.peak - self.left)
            }
        } else {
            if self.open_right {
                return 1.0;
            }
            if x >= self.right {
                0.0
            } else {
                (self.right - x) / (self.right - self.peak)
            }
        }
    }
}

/// Fuzzy evaluation of a crisp [`RuleSet`] over continuous inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzyPolicy {
    rules: RuleSet,
    battery_memberships: [Triangle; 5],
    temperature_memberships: [Triangle; 3],
}

/// Outcome of a fuzzy selection.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzySelection {
    /// The winning state.
    pub state: PowerState,
    /// Accumulated rule strength per state (only non-zero entries).
    pub scores: Vec<(PowerState, f64)>,
}

impl FuzzyPolicy {
    /// Wraps a crisp rule set with the default memberships, aligned with
    /// the default classifier thresholds (battery 5/25/55/85 %,
    /// temperature 50/70 °C).
    pub fn new(rules: RuleSet) -> Self {
        let b = |left: f64, peak: f64, right: f64| Triangle {
            left,
            peak,
            right,
            open_left: false,
            open_right: false,
        };
        let battery_memberships = [
            Triangle {
                open_left: true,
                ..b(0.0, 0.02, 0.15)
            }, // Empty
            b(0.02, 0.15, 0.40),  // Low
            b(0.15, 0.40, 0.70),  // Medium
            b(0.40, 0.70, 0.925), // High
            Triangle {
                open_right: true,
                ..b(0.70, 0.925, 1.0)
            }, // Full
        ];
        let temperature_memberships = [
            Triangle {
                open_left: true,
                ..b(20.0, 40.0, 60.0)
            }, // Low
            b(40.0, 60.0, 80.0), // Medium
            Triangle {
                open_right: true,
                ..b(60.0, 80.0, 100.0)
            }, // High
        ];
        Self {
            rules,
            battery_memberships,
            temperature_memberships,
        }
    }

    /// Membership grade of `soc` in `class`.
    pub fn battery_grade(&self, class: BatteryClass, soc: f64) -> f64 {
        self.battery_memberships[class.index()].grade(soc)
    }

    /// Membership grade of `temp` in `class`.
    pub fn temperature_grade(&self, class: ThermalClass, temp: Celsius) -> f64 {
        self.temperature_memberships[class.index()].grade(temp.as_celsius())
    }

    /// Fuzzy-selects a state for continuous inputs.
    ///
    /// Every rule fires with `min` over its antecedent grades (wildcards
    /// grade 1); strengths accumulate per consequent state; the strongest
    /// state wins, ties broken toward the earlier rule (matching the crisp
    /// table's first-match flavour).
    pub fn select(
        &self,
        priority: Priority,
        soc: f64,
        temp: Celsius,
        source: PowerSource,
    ) -> FuzzySelection {
        let mut scores: Vec<(PowerState, f64)> = Vec::new();
        for rule in self.rules.rules() {
            if !rule.source.matches(source) || !rule.priorities.contains(priority) {
                continue;
            }
            // On mains the battery antecedent is moot (grade 1 for the
            // wildcard; battery-testing rules are BatteryOnly anyway).
            let b_grade = if rule.batteries.is_any() {
                1.0
            } else {
                BatteryClass::ALL
                    .iter()
                    .filter(|c| rule.batteries.contains(**c))
                    .map(|c| self.battery_grade(*c, soc))
                    .fold(0.0, f64::max)
            };
            let t_grade = if rule.temperatures.is_any() {
                1.0
            } else {
                ThermalClass::ALL
                    .iter()
                    .filter(|c| rule.temperatures.contains(**c))
                    .map(|c| self.temperature_grade(*c, temp))
                    .fold(0.0, f64::max)
            };
            let strength = b_grade.min(t_grade);
            if strength <= 0.0 {
                continue;
            }
            match scores.iter_mut().find(|(s, _)| *s == rule.then) {
                Some((_, acc)) => *acc += strength,
                None => scores.push((rule.then, strength)),
            }
        }
        // Strictly-greater comparison keeps the *earliest* state on ties
        // (scores are pushed in rule order), mirroring the crisp table's
        // first-match semantics — this is what keeps the paper's shadowed
        // row 6 from resurfacing through the fuzzy path.
        let mut best: Option<(PowerState, f64)> = None;
        for (s, sc) in &scores {
            if best.is_none_or(|(_, b)| *sc > b) {
                best = Some((*s, *sc));
            }
        }
        let state = best.map(|(s, _)| s).unwrap_or(PowerState::On1);
        FuzzySelection { state, scores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{table1, PolicyInputs};

    fn fuzzy() -> FuzzyPolicy {
        FuzzyPolicy::new(table1())
    }

    /// Class-center (crisp) inputs: soc/temp values where exactly one
    /// membership is 1 and the others 0.
    fn center(b: BatteryClass) -> f64 {
        [0.02, 0.15, 0.40, 0.70, 0.925][b.index()]
    }
    fn tcenter(t: ThermalClass) -> Celsius {
        Celsius::new([30.0, 60.0, 85.0][t.index()])
    }

    #[test]
    fn agrees_with_crisp_table_at_class_centers() {
        let f = fuzzy();
        let crisp = table1();
        for p in Priority::ALL {
            for b in BatteryClass::ALL {
                for t in ThermalClass::ALL {
                    let crisp_sel = crisp.select(PolicyInputs {
                        priority: p,
                        battery: b,
                        temperature: t,
                        source: PowerSource::Battery,
                    });
                    // Skip combinations the crisp table only covers via
                    // fallback: fuzzy handles them by interpolation instead.
                    if crisp_sel.used_fallback {
                        continue;
                    }
                    let fz = f.select(p, center(b), tcenter(t), PowerSource::Battery);
                    assert_eq!(
                        fz.state, crisp_sel.state,
                        "pri={p} batt={b} temp={t}: fuzzy {} vs crisp {}",
                        fz.state, crisp_sel.state
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_inputs_excite_multiple_states() {
        let f = fuzzy();
        // soc right between Low (0.15) and Medium (0.40) memberships, cool
        // chip, High priority: both the "battery low -> ON4" and the
        // "battery medium -> ON2" rules fire partially.
        let sel = f.select(
            Priority::High,
            0.27,
            Celsius::new(30.0),
            PowerSource::Battery,
        );
        assert!(sel.scores.len() >= 2, "scores: {:?}", sel.scores);
        let states: Vec<PowerState> = sel.scores.iter().map(|(s, _)| *s).collect();
        assert!(states.contains(&PowerState::On4));
        assert!(states.contains(&PowerState::On2));
    }

    #[test]
    fn selection_shifts_smoothly_across_the_boundary() {
        let f = fuzzy();
        // Walking soc from deep Low toward Medium flips the winner from
        // ON4 to ON2 somewhere strictly inside the band, not at the crisp
        // 0.25 threshold.
        let at = |soc: f64| {
            f.select(
                Priority::High,
                soc,
                Celsius::new(30.0),
                PowerSource::Battery,
            )
            .state
        };
        assert_eq!(at(0.16), PowerState::On4);
        assert_eq!(at(0.38), PowerState::On2);
        let mut flipped_at = None;
        let mut soc = 0.16;
        while soc < 0.38 {
            if at(soc) == PowerState::On2 {
                flipped_at = Some(soc);
                break;
            }
            soc += 0.005;
        }
        let flip = flipped_at.expect("must flip inside the band");
        assert!(flip > 0.20 && flip < 0.35, "flip at {flip}");
    }

    #[test]
    fn membership_grades_partition_reasonably() {
        let f = fuzzy();
        // at any soc, grades sum to within (0, 2] and at least one is > 0
        for i in 0..=20 {
            let soc = i as f64 / 20.0;
            let sum: f64 = BatteryClass::ALL
                .iter()
                .map(|c| f.battery_grade(*c, soc))
                .sum();
            assert!(sum > 0.0 && sum <= 2.0, "soc {soc}: sum {sum}");
        }
    }

    #[test]
    fn thermal_emergency_dominates_when_hot() {
        let f = fuzzy();
        let sel = f.select(
            Priority::Medium,
            0.9,
            Celsius::new(95.0),
            PowerSource::Battery,
        );
        assert_eq!(sel.state, PowerState::Sl1);
    }

    #[test]
    fn mains_selection_prefers_on1_when_cool() {
        let f = fuzzy();
        let sel = f.select(Priority::Low, 0.0, Celsius::new(30.0), PowerSource::Mains);
        assert_eq!(sel.state, PowerState::On1);
    }
}
