//! Reference controllers.
//!
//! Table 2 of the paper reports every metric *"with respect to the values
//! required for the task execution at the maximum clock frequency without
//! going to sleep or off mode"* — that reference is
//! [`AlwaysOnController`]. The crate also ships two classic DPM baselines
//! the paper alludes to ("many DPM algorithms have been introduced"):
//! a fixed-timeout policy and a clairvoyant oracle, bounding the LEM from
//! below and above.
//!
//! All controllers speak the same port bundle as the LEM
//! ([`LemPorts`]), so the SoC builder can swap them freely.

use std::collections::VecDeque;

use dpm_kernel::{Ctx, EventId, Process, ProcessId, Simulation};
use dpm_power::{BreakEvenTable, IpPowerModel, PowerState, TransitionTable};
use dpm_units::{SimDuration, SimTime};
use dpm_workload::TaskSpec;

use crate::lem::LemPorts;
use crate::msg::TaskGrant;

/// Request/grant/completion plumbing shared by every baseline controller.
#[derive(Debug)]
struct ControllerCore {
    ports: LemPorts,
    queue: VecDeque<TaskSpec>,
    seen_done: u64,
    running: bool,
    granted: u64,
}

impl ControllerCore {
    fn new(ports: LemPorts) -> Self {
        Self {
            ports,
            queue: VecDeque::new(),
            seen_done: 0,
            running: false,
            granted: 0,
        }
    }

    /// Pulls newly arrived requests into the queue. Returns `true` if any
    /// arrived.
    fn ingest(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let mut any = false;
        while let Some(req) = ctx.fifo_pop(self.ports.requests) {
            self.queue.push_back(req.spec);
            any = true;
        }
        any
    }

    /// Retires the running task if the IP reported completion. Returns
    /// `true` on completion.
    fn check_done(&mut self, ctx: &Ctx<'_>) -> bool {
        let done = ctx.read(self.ports.done_count);
        if done > self.seen_done && self.running {
            self.seen_done = done;
            self.running = false;
            self.queue.pop_front();
            return true;
        }
        false
    }

    /// Grants the head-of-queue task if the PSM sits ready in `state`.
    fn try_grant_at(&mut self, ctx: &mut Ctx<'_>, state: PowerState) {
        if self.running || self.queue.is_empty() {
            return;
        }
        if ctx.read(self.ports.psm_state) == state && !ctx.read(self.ports.psm_busy) {
            let task = *self.queue.front().expect("non-empty queue");
            ctx.fifo_push(self.ports.grants, TaskGrant { spec: task })
                .unwrap_or_else(|_| panic!("grant fifo overflow"));
            self.running = true;
            self.granted += 1;
        }
    }

    fn command(&mut self, ctx: &mut Ctx<'_>, state: PowerState) {
        ctx.fifo_push(self.ports.psm_cmd, state)
            .unwrap_or_else(|_| panic!("PSM command fifo overflow"));
    }

    fn idle(&self) -> bool {
        !self.running && self.queue.is_empty()
    }

    fn sensitize(sim: &mut Simulation, pid: ProcessId, ports: &LemPorts) {
        sim.sensitize(pid, ports.requests.written_event());
        sim.sensitize_signal(pid, ports.done_count);
        sim.sensitize_signal(pid, ports.psm_state);
        sim.sensitize_signal(pid, ports.psm_busy);
    }
}

/// The paper's Table 2 reference: every task at `ON1`, never sleeps, idles
/// hot at `ON1` idle power.
#[derive(Debug)]
pub struct AlwaysOnController {
    core: ControllerCore,
}

impl AlwaysOnController {
    /// Creates the controller and its sensitivity list.
    pub fn spawn(sim: &mut Simulation, name: &str, ports: LemPorts) -> ProcessId {
        let ctrl = AlwaysOnController {
            core: ControllerCore::new(ports),
        };
        let pid = sim.add_process(name, ctrl);
        ControllerCore::sensitize(sim, pid, &ports);
        pid
    }

    /// Tasks granted so far.
    pub fn granted(&self) -> u64 {
        self.core.granted
    }
}

impl Process for AlwaysOnController {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.core.command(ctx, PowerState::On1);
    }

    fn react(&mut self, ctx: &mut Ctx<'_>) {
        self.core.ingest(ctx);
        self.core.check_done(ctx);
        self.core.try_grant_at(ctx, PowerState::On1);
    }
}

/// Classic fixed-timeout DPM: run everything at `ON1`; after `timeout` of
/// continuous idleness, drop into `sleep_state`; wake on the next arrival
/// (paying the full wake latency).
#[derive(Debug)]
pub struct TimeoutController {
    core: ControllerCore,
    timeout: SimDuration,
    sleep_state: PowerState,
    timer: EventId,
    sleeps: u64,
}

impl TimeoutController {
    /// Creates the controller.
    ///
    /// # Panics
    ///
    /// Panics if `sleep_state` is not a sleep state.
    pub fn spawn(
        sim: &mut Simulation,
        name: &str,
        ports: LemPorts,
        timeout: SimDuration,
        sleep_state: PowerState,
    ) -> ProcessId {
        assert!(
            sleep_state.is_sleep(),
            "timeout controller must target a sleep state, got {sleep_state}"
        );
        let timer = sim.event(&format!("{name}.timeout"));
        let ctrl = TimeoutController {
            core: ControllerCore::new(ports),
            timeout,
            sleep_state,
            timer,
            sleeps: 0,
        };
        let pid = sim.add_process(name, ctrl);
        ControllerCore::sensitize(sim, pid, &ports);
        sim.sensitize(pid, timer);
        pid
    }

    /// Sleep commands issued.
    pub fn sleeps(&self) -> u64 {
        self.sleeps
    }
}

impl Process for TimeoutController {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.core.command(ctx, PowerState::On1);
        ctx.notify(self.timer, self.timeout);
    }

    fn react(&mut self, ctx: &mut Ctx<'_>) {
        if self.core.ingest(ctx) {
            ctx.cancel(self.timer);
            // wake (or stay) at ON1 for the new work
            let state = ctx.read(self.core.ports.psm_state);
            if state != PowerState::On1 {
                self.core.command(ctx, PowerState::On1);
            }
        }
        if self.core.check_done(ctx) && self.core.idle() {
            ctx.notify(self.timer, self.timeout);
        }
        if ctx.triggered(self.timer) && self.core.idle() {
            self.core.command(ctx, self.sleep_state);
            self.sleeps += 1;
        }
        self.core.try_grant_at(ctx, PowerState::On1);
    }
}

/// Clairvoyant DPM: knows every future arrival, so on each idle period it
/// sleeps in the deepest profitable state *and wakes early* so the PSM is
/// back at `ON1` exactly when the next task arrives — the energy lower
/// bound among `ON1`-only policies, with (near) zero delay overhead.
#[derive(Debug)]
pub struct OracleController {
    core: ControllerCore,
    /// Future arrival instants, ascending.
    arrivals: Vec<SimTime>,
    next_arrival: usize,
    breakeven: BreakEvenTable,
    wake_timer: EventId,
    sleeps: u64,
    transitions: TransitionTable,
}

impl OracleController {
    /// Creates the oracle with the full arrival schedule.
    pub fn spawn(
        sim: &mut Simulation,
        name: &str,
        ports: LemPorts,
        model: &IpPowerModel,
        transitions: TransitionTable,
        arrivals: Vec<SimTime>,
    ) -> ProcessId {
        let breakeven = BreakEvenTable::compute(model, &transitions, PowerState::On1);
        let wake_timer = sim.event(&format!("{name}.wake"));
        let ctrl = OracleController {
            core: ControllerCore::new(ports),
            arrivals,
            next_arrival: 0,
            breakeven,
            wake_timer,
            sleeps: 0,
            transitions,
        };
        let pid = sim.add_process(name, ctrl);
        ControllerCore::sensitize(sim, pid, &ports);
        sim.sensitize(pid, wake_timer);
        pid
    }

    /// Sleep commands issued.
    pub fn sleeps(&self) -> u64 {
        self.sleeps
    }

    fn plan_idle(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // find the next arrival strictly in the future
        while self
            .arrivals
            .get(self.next_arrival)
            .is_some_and(|t| *t <= now)
        {
            self.next_arrival += 1;
        }
        let gap = match self.arrivals.get(self.next_arrival) {
            Some(t) => *t - now,
            None => SimDuration::MAX, // nothing ever again: sleep forever
        };
        let Some(sleep) = self.breakeven.deepest_within(gap, None) else {
            return;
        };
        self.core.command(ctx, sleep);
        self.sleeps += 1;
        if let Some(t_next) = self.arrivals.get(self.next_arrival) {
            let wake_latency = self.transitions.cost(sleep, PowerState::On1).latency;
            let wake_at = (*t_next - wake_latency).max(now);
            ctx.notify(self.wake_timer, wake_at - now);
        }
    }
}

impl Process for OracleController {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.core.command(ctx, PowerState::On1);
        self.plan_idle(ctx);
    }

    fn react(&mut self, ctx: &mut Ctx<'_>) {
        self.core.ingest(ctx);
        if ctx.triggered(self.wake_timer) {
            self.core.command(ctx, PowerState::On1);
        }
        if self.core.check_done(ctx) && self.core.idle() {
            self.plan_idle(ctx);
        }
        self.core.try_grant_at(ctx, PowerState::On1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::TaskRequest;
    use crate::psm::Psm;
    use dpm_battery::BatteryClass;
    use dpm_kernel::{Fifo, Signal};
    use dpm_power::InstructionMix;
    use dpm_thermal::ThermalClass;
    use dpm_workload::{Priority, TaskId};

    /// Same minimal IP as in the LEM tests.
    struct MiniIp {
        requests: Fifo<TaskRequest>,
        grants: Fifo<TaskGrant>,
        done_count: Signal<u64>,
        psm_state: Signal<PowerState>,
        model: IpPowerModel,
        plan: Vec<TaskSpec>,
        next: usize,
        arrival: EventId,
        exec_done: EventId,
        running: bool,
        done: u64,
        latencies: Vec<SimDuration>,
        started: Option<SimTime>,
    }

    impl Process for MiniIp {
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(spec) = self.plan.first() {
                ctx.notify(self.arrival, spec.arrival - SimTime::ZERO);
            }
        }
        fn react(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.triggered(self.arrival) {
                let spec = self.plan[self.next];
                self.next += 1;
                ctx.fifo_push(self.requests, TaskRequest { spec }).unwrap();
                if let Some(next) = self.plan.get(self.next) {
                    ctx.notify(self.arrival, next.arrival - ctx.now());
                }
            }
            if ctx.triggered(self.exec_done) && self.running {
                self.running = false;
                self.done += 1;
                let spec = self.plan[(self.done - 1) as usize];
                self.latencies.push(ctx.now() - spec.arrival);
                let _ = self.started.take();
                ctx.write(self.done_count, self.done);
            }
            if !self.running {
                if let Some(grant) = ctx.fifo_pop(self.grants) {
                    let state = ctx.read(self.psm_state);
                    let dt = self
                        .model
                        .execution_time(grant.spec.instructions, &grant.spec.mix, state)
                        .expect("granted while executable");
                    self.running = true;
                    self.started = Some(ctx.now());
                    ctx.notify(self.exec_done, dt);
                }
            }
        }
    }

    enum Kind {
        AlwaysOn,
        Timeout(SimDuration, PowerState),
        Oracle,
    }

    struct Rig {
        sim: Simulation,
        psm: ProcessId,
        ip: ProcessId,
        done: Signal<u64>,
        psm_state: Signal<PowerState>,
    }

    fn rig(kind: Kind, plan: Vec<TaskSpec>) -> Rig {
        let mut sim = Simulation::new();
        let model = IpPowerModel::default_cpu();
        let table = TransitionTable::for_model(&model);
        let (psm_ports, psm) = Psm::spawn(&mut sim, "psm", table.clone(), PowerState::On1);
        let requests = sim.fifo("ctrl.requests", 64);
        let grants = sim.fifo("ctrl.grants", 64);
        let done_count = sim.signal("ip.done_count", 0u64);
        let battery_class = sim.signal("battery.class", BatteryClass::Full);
        let battery_soc = sim.signal("battery.soc", 1.0f64);
        let temp_class = sim.signal("thermal.class", ThermalClass::Low);
        let temp_c = sim.signal("thermal.temp", 30.0f64);
        let ports = LemPorts {
            requests,
            grants,
            done_count,
            psm_cmd: psm_ports.cmd,
            psm_state: psm_ports.state,
            psm_busy: psm_ports.busy,
            battery_class,
            battery_soc,
            temp_class,
            temp_c,
            gem: None,
        };
        match kind {
            Kind::AlwaysOn => {
                AlwaysOnController::spawn(&mut sim, "ctrl", ports);
            }
            Kind::Timeout(timeout, state) => {
                TimeoutController::spawn(&mut sim, "ctrl", ports, timeout, state);
            }
            Kind::Oracle => {
                let arrivals = plan.iter().map(|t| t.arrival).collect();
                OracleController::spawn(&mut sim, "ctrl", ports, &model, table, arrivals);
            }
        }
        let arrival = sim.event("ip.arrival");
        let exec_done = sim.event("ip.exec_done");
        let ip = sim.add_process(
            "ip",
            MiniIp {
                requests,
                grants,
                done_count,
                psm_state: psm_ports.state,
                model,
                plan,
                next: 0,
                arrival,
                exec_done,
                running: false,
                done: 0,
                latencies: Vec::new(),
                started: None,
            },
        );
        sim.sensitize(ip, arrival);
        sim.sensitize(ip, exec_done);
        sim.sensitize(ip, grants.written_event());
        Rig {
            sim,
            psm,
            ip,
            done: done_count,
            psm_state: psm_ports.state,
        }
    }

    fn task(id: u64, at_us: u64) -> TaskSpec {
        TaskSpec::new(
            TaskId(id),
            SimTime::from_micros(at_us),
            50_000,
            InstructionMix::default(),
            Priority::Medium,
        )
    }

    #[test]
    fn always_on_never_transitions() {
        let mut r = rig(
            Kind::AlwaysOn,
            vec![task(0, 100), task(1, 10_000), task(2, 30_000)],
        );
        r.sim.run_until(SimTime::from_millis(50));
        assert_eq!(r.sim.peek(r.done), 3);
        let stats = r.sim.with_process::<Psm, _>(r.psm, |p| p.stats().clone());
        assert_eq!(stats.transitions, 0, "baseline must pin ON1");
        // latency = pure execution time (grants are immediate)
        let lat = r
            .sim
            .with_process::<MiniIp, _>(r.ip, |p| p.latencies.clone());
        let exec = IpPowerModel::default_cpu()
            .execution_time(50_000, &InstructionMix::default(), PowerState::On1)
            .unwrap();
        for l in lat {
            assert!(l <= exec + SimDuration::from_micros(1), "{l} vs {exec}");
        }
    }

    #[test]
    fn timeout_controller_sleeps_after_quiet_period() {
        let mut r = rig(
            Kind::Timeout(SimDuration::from_micros(200), PowerState::Sl2),
            vec![task(0, 100), task(1, 20_000)],
        );
        r.sim.run_until(SimTime::from_millis(50));
        assert_eq!(r.sim.peek(r.done), 2);
        let stats = r.sim.with_process::<Psm, _>(r.psm, |p| p.stats().clone());
        // at least: On1 -> Sl2 (after first task), Sl2 -> On1 (second), and
        // a final drop to Sl2 once the trace ends.
        assert!(stats.transitions >= 3, "transitions {}", stats.transitions);
        assert_eq!(r.sim.peek(r.psm_state), PowerState::Sl2);
    }

    #[test]
    fn oracle_has_no_wake_delay() {
        let gap_us = 20_000;
        let mut r = rig(Kind::Oracle, vec![task(0, 100), task(1, gap_us)]);
        r.sim.run_until(SimTime::from_millis(60));
        assert_eq!(r.sim.peek(r.done), 2);
        let psm_stats = r.sim.with_process::<Psm, _>(r.psm, |p| p.stats().clone());
        assert!(psm_stats.transitions >= 2, "oracle must have slept");
        // perfect wake: latency of the 2nd task ≈ pure execution time
        let lat = r
            .sim
            .with_process::<MiniIp, _>(r.ip, |p| p.latencies.clone());
        let exec = IpPowerModel::default_cpu()
            .execution_time(50_000, &InstructionMix::default(), PowerState::On1)
            .unwrap();
        assert!(
            lat[1] <= exec + SimDuration::from_micros(20),
            "oracle wake delay: {} vs {exec}",
            lat[1]
        );
    }

    #[test]
    fn oracle_saves_energy_versus_always_on() {
        // compare PSM residency: the oracle spends the 20 ms gap asleep
        let plan = vec![task(0, 100), task(1, 20_000)];
        let mut on = rig(Kind::AlwaysOn, plan.clone());
        let mut oracle = rig(Kind::Oracle, plan);
        let horizon = SimTime::from_millis(30);
        on.sim.run_until(horizon);
        oracle.sim.run_until(horizon);
        let on_res = on
            .sim
            .with_process::<Psm, _>(on.psm, |p| p.residency(horizon));
        let or_res = oracle
            .sim
            .with_process::<Psm, _>(oracle.psm, |p| p.residency(horizon));
        // Low-power time includes SoftOff: the oracle legitimately powers
        // off across the 20 ms gap when the boot cost amortizes.
        let low_power = |res: [SimDuration; 9]| -> SimDuration {
            PowerState::SLEEP
                .iter()
                .map(|s| res[s.index()])
                .sum::<SimDuration>()
                + res[PowerState::SoftOff.index()]
        };
        assert!(low_power(or_res) > SimDuration::from_millis(10));
        assert_eq!(low_power(on_res), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "must target a sleep state")]
    fn timeout_to_execution_state_rejected() {
        let mut sim = Simulation::new();
        let model = IpPowerModel::default_cpu();
        let table = TransitionTable::for_model(&model);
        let (psm_ports, _) = Psm::spawn(&mut sim, "psm", table, PowerState::On1);
        let requests = sim.fifo("r", 4);
        let grants = sim.fifo("g", 4);
        let done_count = sim.signal("d", 0u64);
        let battery_class = sim.signal("bc", BatteryClass::Full);
        let battery_soc = sim.signal("bs", 1.0f64);
        let temp_class = sim.signal("tc", ThermalClass::Low);
        let temp_c = sim.signal("t", 30.0f64);
        let ports = LemPorts {
            requests,
            grants,
            done_count,
            psm_cmd: psm_ports.cmd,
            psm_state: psm_ports.state,
            psm_busy: psm_ports.busy,
            battery_class,
            battery_soc,
            temp_class,
            temp_c,
            gem: None,
        };
        let _ = TimeoutController::spawn(
            &mut sim,
            "ctrl",
            ports,
            SimDuration::from_micros(10),
            PowerState::On2,
        );
    }
}
