//! Property-based tests of the policy engine, predictors and estimator.

use dpm_battery::{BatteryClass, PowerSource};
use dpm_core::policy::{
    parse_rule, table1, BatterySet, FuzzyPolicy, PolicyInputs, PrioritySet, Rule, RuleSet,
    SourceCond, TempSet,
};
use dpm_core::predictor::PredictorKind;
use dpm_core::EndOfTaskEstimator;
use dpm_power::PowerState;
use dpm_thermal::ThermalClass;
use dpm_units::{Celsius, Energy, SimDuration, SimTime};
use dpm_workload::Priority;
use proptest::prelude::*;

fn priority_strategy() -> impl Strategy<Value = Priority> {
    prop::sample::select(Priority::ALL.to_vec())
}
fn battery_strategy() -> impl Strategy<Value = BatteryClass> {
    prop::sample::select(BatteryClass::ALL.to_vec())
}
fn temp_strategy() -> impl Strategy<Value = ThermalClass> {
    prop::sample::select(ThermalClass::ALL.to_vec())
}
fn source_strategy() -> impl Strategy<Value = PowerSource> {
    prop::sample::select(vec![PowerSource::Battery, PowerSource::Mains])
}
fn inputs_strategy() -> impl Strategy<Value = PolicyInputs> {
    (
        priority_strategy(),
        battery_strategy(),
        temp_strategy(),
        source_strategy(),
    )
        .prop_map(|(priority, battery, temperature, source)| PolicyInputs {
            priority,
            battery,
            temperature,
            source,
        })
}

fn state_strategy() -> impl Strategy<Value = PowerState> {
    prop::sample::select(PowerState::ALL.to_vec())
}

/// Random rule: random subsets (non-empty via union with a singleton).
fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        prop::bits::u8::masked(0b1111),
        priority_strategy(),
        prop::bits::u8::masked(0b11111),
        battery_strategy(),
        prop::bits::u8::masked(0b111),
        temp_strategy(),
        prop::sample::select(vec![
            SourceCond::Any,
            SourceCond::BatteryOnly,
            SourceCond::MainsOnly,
        ]),
        state_strategy(),
    )
        .prop_map(|(pbits, p1, bbits, b1, tbits, t1, source, then)| {
            // build sets from random bits, guaranteeing non-emptiness
            let mut priorities = PrioritySet::only(p1);
            for p in Priority::ALL {
                if pbits & (1 << p.index()) != 0 {
                    priorities = priorities.union(PrioritySet::only(p));
                }
            }
            let mut batteries = BatterySet::only(b1);
            for b in BatteryClass::ALL {
                if bbits & (1 << b.index()) != 0 {
                    batteries = batteries.union(BatterySet::only(b));
                }
            }
            let mut temperatures = TempSet::only(t1);
            for t in ThermalClass::ALL {
                if tbits & (1 << t.index()) != 0 {
                    temperatures = temperatures.union(TempSet::only(t));
                }
            }
            Rule {
                priorities,
                batteries,
                temperatures,
                source,
                then,
            }
        })
}

proptest! {
    #[test]
    fn table1_always_selects_a_state(inputs in inputs_strategy()) {
        let sel = table1().select(inputs);
        // Table 1 only ever produces execution states or SL1
        prop_assert!(sel.state.is_execution() || sel.state == PowerState::Sl1, "{inputs}");
    }

    #[test]
    fn selection_is_deterministic(inputs in inputs_strategy()) {
        let rules = table1();
        prop_assert_eq!(rules.select(inputs), rules.select(inputs));
    }

    #[test]
    fn first_match_respects_rule_order(rules in prop::collection::vec(rule_strategy(), 1..20), inputs in inputs_strategy()) {
        let rs = RuleSet::new(rules.clone());
        let sel = rs.select(inputs);
        if let (Some(idx), false) = (sel.rule_index, sel.used_fallback) {
            // the winning rule matches...
            prop_assert!(rules[idx].matches(inputs));
            // ...and no earlier rule does
            for earlier in &rules[..idx] {
                prop_assert!(!earlier.matches(inputs));
            }
        }
    }

    #[test]
    fn shadowed_rules_never_win(rules in prop::collection::vec(rule_strategy(), 1..15)) {
        let rs = RuleSet::new(rules);
        let shadowed = rs.shadowed();
        for inputs in RuleSet::input_space() {
            let sel = rs.select(inputs);
            if let Some(idx) = sel.rule_index {
                prop_assert!(!shadowed.contains(&idx), "shadowed rule {idx} fired for {inputs}");
            }
        }
    }

    #[test]
    fn rendered_rules_reparse(rule in rule_strategy()) {
        // Print a rule in sentence form and re-parse it: a round-trip that
        // exercises both the Display notation and the DSL.
        let mut sentence = String::from("if ");
        let mut conds = Vec::new();
        if !rule.priorities.is_any() {
            let vals: Vec<&str> = Priority::ALL
                .iter()
                .filter(|p| rule.priorities.contains(**p))
                .map(|p| match p {
                    Priority::Low => "low",
                    Priority::Medium => "medium",
                    Priority::High => "high",
                    Priority::VeryHigh => "very high",
                })
                .collect();
            conds.push(format!("priority is {}", vals.join(" or ")));
        }
        if !rule.batteries.is_any() {
            let vals: Vec<&str> = BatteryClass::ALL
                .iter()
                .filter(|b| rule.batteries.contains(**b))
                .map(|b| match b {
                    BatteryClass::Empty => "empty",
                    BatteryClass::Low => "low",
                    BatteryClass::Medium => "medium",
                    BatteryClass::High => "high",
                    BatteryClass::Full => "full",
                })
                .collect();
            conds.push(format!("battery is {}", vals.join(" or ")));
        }
        if !rule.temperatures.is_any() {
            let vals: Vec<&str> = ThermalClass::ALL
                .iter()
                .filter(|t| rule.temperatures.contains(**t))
                .map(|t| match t {
                    ThermalClass::Low => "low",
                    ThermalClass::Medium => "medium",
                    ThermalClass::High => "high",
                })
                .collect();
            conds.push(format!("temperature is {}", vals.join(" or ")));
        }
        match rule.source {
            SourceCond::MainsOnly => conds.push("power is supply".into()),
            SourceCond::BatteryOnly => conds.push("power is battery".into()),
            SourceCond::Any => {}
        }
        prop_assume!(!conds.is_empty()); // the DSL needs at least one condition
        sentence.push_str(&conds.join(" and "));
        sentence.push_str(&format!(" then {}", rule.then.short_name()));
        let reparsed = parse_rule(&sentence).expect("rendered rule must parse");
        prop_assert_eq!(reparsed.priorities, rule.priorities, "{}", sentence);
        prop_assert_eq!(reparsed.batteries, rule.batteries);
        prop_assert_eq!(reparsed.temperatures, rule.temperatures);
        prop_assert_eq!(reparsed.then, rule.then);
        // DSL convention: a battery-testing rule without an explicit power
        // condition is implicitly battery-only (matching Table 1's
        // interpretation), so `Any` is not expressible for such rules.
        let expected_source = if rule.source == SourceCond::Any && !rule.batteries.is_any() {
            SourceCond::BatteryOnly
        } else {
            rule.source
        };
        prop_assert_eq!(reparsed.source, expected_source, "{}", sentence);
    }

    #[test]
    fn fuzzy_selection_is_stable_under_tiny_perturbations(
        soc in 0.0..1.0f64,
        temp in 20.0..95.0f64,
        priority in priority_strategy(),
    ) {
        // Fuzzy inference must be locally continuous: a 1e-9 nudge never
        // flips the selected state (no hidden hard thresholds).
        let f = FuzzyPolicy::new(table1());
        let a = f.select(priority, soc, Celsius::new(temp), PowerSource::Battery);
        let b = f.select(priority, soc + 1e-9, Celsius::new(temp + 1e-9), PowerSource::Battery);
        prop_assert_eq!(a.state, b.state);
    }

    #[test]
    fn predictors_never_panic_and_stay_nonnegative(
        kind_idx in 0usize..4,
        gaps in prop::collection::vec(0u64..10_000_000u64, 0..60),
    ) {
        let kinds = [
            PredictorKind::LastIdle,
            PredictorKind::ExpAverage { alpha: 0.5 },
            PredictorKind::Fixed { value_us: 100 },
            PredictorKind::Window { k: 4 },
        ];
        let mut p = kinds[kind_idx].build(SimDuration::from_micros(200));
        let mut t = SimTime::ZERO;
        for g in gaps {
            p.idle_started(t);
            t += SimDuration::from_micros(g);
            p.idle_ended(t);
            t += SimDuration::from_micros(10);
            let _ = p.predict();
        }
        // a prediction is always available
        let _ = p.predict();
    }

    #[test]
    fn exp_average_prediction_is_bounded_by_history(
        gaps in prop::collection::vec(1u64..1_000_000u64, 1..50),
    ) {
        let mut p = PredictorKind::ExpAverage { alpha: 0.5 }
            .build(SimDuration::from_micros(gaps[0]));
        let mut t = SimTime::ZERO;
        for g in &gaps {
            p.idle_started(t);
            t += SimDuration::from_micros(*g);
            p.idle_ended(t);
            t += SimDuration::from_micros(5);
        }
        let lo = *gaps.iter().min().unwrap();
        let hi = *gaps.iter().max().unwrap();
        let predicted_us = p.predict().as_secs_f64() * 1e6;
        prop_assert!(predicted_us >= lo as f64 - 1.0, "{predicted_us} < {lo}");
        prop_assert!(predicted_us <= hi as f64 + 1.0, "{predicted_us} > {hi}");
    }

    #[test]
    fn estimator_battery_class_is_monotone_in_drain(
        soc in 0.0..1.0f64,
        e1 in 0.0..10.0f64,
        e2 in 0.0..10.0f64,
    ) {
        let est = EndOfTaskEstimator::new(Energy::from_joules(50.0));
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let light = est.battery_at_end(soc, Energy::from_joules(lo), Energy::ZERO);
        let heavy = est.battery_at_end(soc, Energy::from_joules(hi), Energy::ZERO);
        prop_assert!(heavy <= light, "more drain cannot raise the class");
    }

    #[test]
    fn estimator_temperature_saturates_between_now_and_steady_state(
        t_now in 20.0..95.0f64,
        p_w in 0.0..2.0f64,
        dt_us in 1u64..10_000_000u64,
    ) {
        let est = EndOfTaskEstimator::new(Energy::from_joules(50.0));
        let t_ss = 25.0 + 40.0 * p_w;
        let class = est.temperature_at_end(
            Celsius::new(t_now),
            dpm_units::Power::from_watts(p_w),
            SimDuration::from_micros(dt_us),
        );
        let (lo, hi) = if t_now <= t_ss { (t_now, t_ss) } else { (t_ss, t_now) };
        // the class of the projection lies between the classes of the
        // endpoints (first-order responses cannot overshoot)
        let lo_c = est.classify_temperature(Celsius::new(lo));
        let hi_c = est.classify_temperature(Celsius::new(hi));
        prop_assert!(class >= lo_c && class <= hi_c);
    }
}
