//! Golden pin of the complete Table 1 decision matrix.
//!
//! The shape tests elsewhere assert *relations*; this test pins every one
//! of the 120 classified inputs to its exact selected state, so any
//! accidental change to rule order, fallback behaviour or source
//! interpretation shows up as a readable diff.

use dpm_battery::{BatteryClass, PowerSource};
use dpm_core::policy::{table1, PolicyInputs};
use dpm_thermal::ThermalClass;
use dpm_workload::Priority;

/// Renders the decision matrix in a stable, reviewable text form:
/// one line per (priority, battery) pair on battery power, states for
/// temperature Low/Medium/High, `*` marking fallback resolutions.
fn render_battery_matrix() -> String {
    let rules = table1();
    let mut out = String::new();
    for p in Priority::ALL {
        for b in BatteryClass::ALL {
            let mut cells = Vec::new();
            for t in ThermalClass::ALL {
                let sel = rules.select(PolicyInputs {
                    priority: p,
                    battery: b,
                    temperature: t,
                    source: PowerSource::Battery,
                });
                cells.push(format!(
                    "{}{}",
                    sel.state.short_name(),
                    if sel.used_fallback { "*" } else { "" }
                ));
            }
            out.push_str(&format!("{}{}: {}\n", p.code(), b.code(), cells.join(" ")));
        }
    }
    out
}

#[test]
fn battery_powered_decision_matrix_is_pinned() {
    let expected = "\
LE: SL1 SL1 SL1
LL: ON4 ON4 SL1
LM: ON4 ON4* SL1
LH: ON4 ON4* SL1
LF: ON2 ON2* SL1
ME: SL1 SL1 SL1
ML: ON4 ON4 SL1
MM: ON3 ON3* SL1
MH: ON3 ON3* SL1
MF: ON1 ON1* SL1
HE: SL1 SL1 SL1
HL: ON4 ON4 SL1
HM: ON2 ON2* SL1
HH: ON2 ON2* SL1
HF: ON1 ON1* SL1
VE: ON4 ON4 ON4
VL: ON4 ON4 ON4
VM: ON1 ON1* ON4
VH: ON1 ON1* ON4
VF: ON1 ON1* ON4
";
    assert_eq!(render_battery_matrix(), expected);
}

#[test]
fn mains_powered_decisions_are_pinned() {
    let rules = table1();
    for p in Priority::ALL {
        for b in BatteryClass::ALL {
            for t in ThermalClass::ALL {
                let sel = rules.select(PolicyInputs {
                    priority: p,
                    battery: b,
                    temperature: t,
                    source: PowerSource::Mains,
                });
                let expected = match (p, t) {
                    // thermal emergency rows apply on mains too
                    (Priority::VeryHigh, ThermalClass::High) => dpm_power::PowerState::On4,
                    (_, ThermalClass::High) => dpm_power::PowerState::Sl1,
                    // otherwise the "power supply" row: full speed
                    _ => dpm_power::PowerState::On1,
                };
                assert_eq!(
                    sel.state, expected,
                    "mains {p}/{b}/{t}: got {}, want {expected}",
                    sel.state
                );
                // the battery class must be irrelevant on mains
                assert!(
                    !sel.used_fallback || t == ThermalClass::Medium,
                    "mains selection should not need battery fallbacks"
                );
            }
        }
    }
}
