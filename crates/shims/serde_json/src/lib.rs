//! Minimal in-tree stand-in for `serde_json`, backed by the value tree in
//! the `serde` shim.

#![forbid(unsafe_code)]

pub use serde::{Error, Number, Value};

/// Serializes to compact JSON.
///
/// # Errors
///
/// Never fails in this shim (non-finite floats render as `null`); the
/// `Result` mirrors serde_json's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serializes to pretty JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors serde_json's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Parses JSON text into any shim-`Deserialize` type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&Value::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_pairs_round_trips() {
        let xs: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.0 / 3.0)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn value_indexing_matches_serde_json() {
        let v: Value = from_str(r#"[{"id": "A1", "x": 39.0}]"#).unwrap();
        assert_eq!(v[0]["id"], "A1");
        assert_eq!(v[0]["x"], 39.0);
        assert_eq!(v[0]["missing"], Value::Null);
    }
}
