//! Minimal in-tree stand-in for `serde` (+ the JSON value model shared
//! with the `serde_json` shim).
//!
//! The build environment has no registry access, so this shim implements
//! the small slice of serde the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums (externally tagged, with
//! newtype/`#[serde(transparent)]` structs collapsing to their inner
//! value), serialization to a JSON [`Value`] tree, and deserialization
//! back from it. There is no zero-copy layer, no visitor machinery and no
//! attribute zoo — just enough for trace persistence and report export.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Error, Number, Value};

/// Conversion into the JSON [`Value`] tree.
pub trait Serialize {
    /// The value as a JSON tree.
    fn to_value(&self) -> Value;
}

/// Conversion back from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, reporting shape mismatches as [`Error`]s.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::type_mismatch("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::type_mismatch("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::type_mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of {N} elements, found {n}")))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected array of {expected} elements, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::type_mismatch("array", other)),
                }
            }
        }
    )*};
}
tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
