//! The JSON value tree, its text form, and the shared error type.

use core::fmt;
use core::ops::Index;

/// A JSON number; integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(x) => x,
        }
    }

    /// The value as `u64` when exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            // strict upper bound: `u64::MAX as f64` rounds UP to 2^64, so
            // `<=` would admit 2^64 and the cast would saturate silently
            Number::F64(x) if x >= 0.0 && x.fract() == 0.0 && x < 18_446_744_073_709_551_616.0 => {
                Some(x as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            // `i64::MIN as f64` is exact (-2^63); the upper bound must be
            // strict because `i64::MAX as f64` rounds up to 2^63
            Number::F64(x)
                if x.fract() == 0.0 && x >= i64::MIN as f64 && x < 9_223_372_036_854_775_808.0 =>
            {
                Some(x as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A JSON document tree.
///
/// Objects preserve insertion order (a `Vec` of pairs), which keeps
/// serialized output deterministic — campaign reports rely on that.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup; `None` out of bounds or for non-arrays.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// Member lookup that reports a useful [`Error`] (missing members act
    /// as `null` so optional fields deserialize to `None`).
    pub fn expect_field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(_) => Ok(self.get(key).unwrap_or(&NULL)),
            other => Err(Error::type_mismatch("object", other)),
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if possible.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an exact `i64`, if possible.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// A one-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty JSON text (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // `{}` on f64 is the shortest representation that parses
                // back bit-identically — required by the replay tests
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // integers keep exact 64-bit precision; anything with a fraction,
        // an exponent, or too many digits (f64 Display never uses
        // scientific notation, so huge floats print as long integers)
        // falls back to f64
        let n = if is_float {
            None
        } else if text.starts_with('-') {
            text.parse::<i64>().ok().map(Number::I64)
        } else {
            text.parse::<u64>().ok().map(Number::U64)
        };
        let n = match n {
            Some(n) => n,
            None => Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::msg(format!("bad number '{text}'")))?,
            ),
        };
        Ok(Value::Number(n))
    }
}

// ---- indexing and comparisons (serde_json ergonomics) ----------------

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}
macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
    )*};
}
eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// The standard shape-mismatch error.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        Error(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shortest_f64() {
        for x in [0.1, 1.0 / 3.0, 39.0, -2.5e-11, f64::MAX] {
            let v = Value::Number(Number::F64(x));
            let text = v.to_json();
            let back = Value::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(r#"{"a": [1, -2, 3.5], "b": {"c": "x\ny", "d": null}}"#).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["b"]["c"], "x\ny");
        assert_eq!(v["b"]["d"], Value::Null);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Value::parse(r#"[{"k": [true, false]}, "s"]"#).unwrap();
        assert_eq!(Value::parse(&v.to_json_pretty()).unwrap(), v);
    }
}
