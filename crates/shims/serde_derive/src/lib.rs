//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the in-tree serde
//! shim.
//!
//! Without registry access there is no `syn`/`quote`, so this macro walks
//! the raw [`proc_macro::TokenStream`] itself. It supports what the
//! workspace actually derives on:
//!
//! * structs with named fields,
//! * tuple structs (arity 1 collapses to the inner value, matching
//!   serde's newtype behaviour and `#[serde(transparent)]`),
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like real serde's default).
//!
//! Generics are intentionally unsupported — none of the derived types in
//! this workspace are generic — and hitting one produces a clear
//! compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim data model: `fn to_value(&self)`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (shim data model: `fn from_value(&Value)`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item, mode)
            .parse()
            .expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match ident_at(&tokens, i) {
        Some(k @ ("struct" | "enum")) => k.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = ident_at(&tokens, i)
        .ok_or("serde shim derive: missing item name")?
        .to_string();
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    if kind == "struct" {
        let shape = match tokens.get(i) {
            None => Shape::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_arity(g.stream()))
            }
            other => return Err(format!("serde shim derive: unexpected token {other:?}")),
        };
        Ok(Item::Struct { name, shape })
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => {
                return Err(format!(
                    "serde shim derive: expected enum body, got {other:?}"
                ))
            }
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            // leak-free: compare through a thread-local buffer is overkill;
            // Ident has no as_str, so route through to_string
            Some(Box::leak(id.to_string().into_boxed_str()))
        }
        _ => None,
    }
}

/// Advances past outer attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// `name: Type, ...` — returns the field names, skipping types (angle
/// depth tracked so `Option<Vec<T>>` commas don't split fields).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i)
            .ok_or_else(|| {
                format!(
                    "serde shim derive: expected field name, got {:?}",
                    tokens[i]
                )
            })?
            .to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde shim derive: expected ':' after `{name}`, got {other:?}"
                ))
            }
        }
        // skip the type up to the next top-level comma
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // the comma (or past the end)
        names.push(name);
    }
    Ok(names)
}

/// Counts fields of a tuple struct / tuple variant body.
fn parse_tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i)
            .ok_or_else(|| format!("serde shim derive: expected variant, got {:?}", tokens[i]))?
            .to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream())?);
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(parse_tuple_arity(g.stream()));
                i += 1;
                s
            }
            _ => Shape::Unit,
        };
        // skip an optional discriminant and the trailing comma
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---- code generation -------------------------------------------------

fn generate(item: &Item, mode: Mode) -> String {
    match (item, mode) {
        (Item::Struct { name, shape }, Mode::Serialize) => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => object_literal(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        (Item::Struct { name, shape }, Mode::Deserialize) => {
            let body = match shape {
                Shape::Unit => "Ok(Self)".to_string(),
                Shape::Tuple(1) => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
                Shape::Tuple(n) => tuple_from_array_on("v", "Self", *n),
                Shape::Named(fields) => named_from_object_on("v", "Self", fields),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n}}"
            )
        }
        (Item::Enum { name, variants }, Mode::Serialize) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|var| {
                    let v = &var.name;
                    match &var.shape {
                        Shape::Unit => format!(
                            "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{\n{}\n}} }}\n}}",
                arms.join("\n")
            )
        }
        (Item::Enum { name, variants }, Mode::Deserialize) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|var| {
                    let v = &var.name;
                    match &var.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let ctor =
                                tuple_from_array_on("payload", &format!("{name}::{v}"), *n);
                            Some(format!("\"{v}\" => return {ctor},"))
                        }
                        Shape::Named(fields) => {
                            let ctor =
                                named_from_object_on("payload", &format!("{name}::{v}"), fields);
                            Some(format!("\"{v}\" => return {ctor},"))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::String(s) = v {{\n\
                 match s.as_str() {{\n{units}\n_ => {{}}\n}}\n\
                 }}\n\
                 if let ::serde::Value::Object(pairs) = v {{\n\
                 if pairs.len() == 1 {{\n\
                 let (tag, payload) = &pairs[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n{tagged}\n_ => {{}}\n}}\n\
                 }}\n\
                 }}\n\
                 Err(::serde::Error::msg(format!(\"no variant of {name} matches {{}}\", v.kind())))\n\
                 }}\n}}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}

fn object_literal(fields: &[String], prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn named_from_object_on(scrutinee: &str, ctor: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value({scrutinee}.expect_field(\"{f}\")?)?,")
        })
        .collect();
    format!("Ok({ctor} {{ {} }})", inits.join(" "))
}

fn tuple_from_array_on(scrutinee: &str, ctor: &str, arity: usize) -> String {
    let items: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "match {scrutinee} {{\n\
         ::serde::Value::Array(items) if items.len() == {arity} => Ok({ctor}({})),\n\
         other => Err(::serde::Error::type_mismatch(\"array of {arity}\", other)),\n\
         }}",
        items.join(", ")
    )
}
