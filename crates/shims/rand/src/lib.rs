//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides
//! exactly the surface the workspace uses: [`Rng`]/[`RngExt`] with
//! `random_range`, [`SeedableRng::seed_from_u64`], and a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64). Streams are
//! stable across platforms and releases — simulation results depend on
//! them, so the generator must never change silently.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A source of random 64-bit words.
pub trait Rng {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleRange<T> {
    /// Draws one value from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // guard the half-open upper bound against rounding
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

/// Convenience methods over any [`Rng`] (blanket-implemented).
pub trait RngExt: Rng {
    /// A uniform draw from a half-open range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniform `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// A generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used for seeding and stream derivation.
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{split_mix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = split_mix64(&mut sm);
            }
            // an all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but stay defensive
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!((0..16).any(|_| c.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: u64 = r.random_range(5u64..9);
            assert!((5..9).contains(&x));
        }
    }
}
