//! Minimal in-tree stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`](strategy::Strategy) with `prop_map`,
//! range/tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::bits::u8::masked`, the `prop_assert*` macros and
//! [`ProptestConfig::with_cases`](test_runner::ProptestConfig).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs (via the assertion
//!   message) but is not minimized;
//! * deterministic seeding — every test function runs the same case
//!   sequence on every run and host, which doubles as replay stability.

#![forbid(unsafe_code)]
// the `proptest!` doc example necessarily contains `#[test]`: the macro
// requires it on every property function
#![allow(clippy::test_attr_in_doctest)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use core::ops::Range;
    use rand::RngExt;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, f64);

    impl Strategy for Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty range");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start
                .wrapping_add((rng.0.random_range(0u64..span)) as i64)
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty range");
            let span = (self.end as i64 - self.start as i64) as u64;
            (self.start as i64 + rng.0.random_range(0u64..span) as i64) as i32
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;
    use rand::RngExt;

    /// Length specification for [`vec`]: a half-open range or an exact
    /// count.
    #[derive(Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.random_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit collections.

    use super::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Uniformly selects one element of a non-empty `Vec`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// The strategy returned by [`select`].
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.0.random_range(0usize..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod bits {
    //! Bit-pattern strategies.

    /// Strategies over `u8` bit patterns.
    pub mod u8 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Uniform `u8` values restricted to the given mask.
        pub fn masked(mask: u8) -> Masked {
            Masked { mask }
        }

        /// The strategy returned by [`masked`].
        #[derive(Clone, Copy)]
        pub struct Masked {
            mask: u8,
        }

        impl Strategy for Masked {
            type Value = u8;
            fn generate(&self, rng: &mut TestRng) -> u8 {
                (rng.0.next_u64() as u8) & self.mask
            }
        }
    }
}

pub mod test_runner {
    //! Case execution machinery used by the [`proptest!`](crate::proptest)
    //! macro expansion.

    use rand::{rngs::StdRng, SeedableRng};

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The RNG handed to strategies (newtype so strategy impls don't leak
    /// the underlying generator).
    pub struct TestRng(pub(crate) StdRng);

    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Drives the case loop for one property function.
    pub struct TestRunner {
        rng: TestRng,
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A deterministic runner: the case stream depends only on the
        /// property's name (so edits elsewhere never shift a test's cases).
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            let mut seed = 0xC0FF_EE00_D15E_A5E5u64;
            for b in test_name.bytes() {
                seed = seed.rotate_left(8) ^ u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01B3);
            }
            Self {
                rng: TestRng(StdRng::seed_from_u64(seed)),
                config,
            }
        }

        /// Runs `body` until `cases` successes (or too many rejects).
        ///
        /// # Panics
        ///
        /// Panics when a case fails, or when rejection exhausts the
        /// attempt budget.
        pub fn run(&mut self, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
            let mut passed = 0u32;
            let mut attempts = 0u32;
            let max_attempts = self.config.cases.saturating_mul(10).max(100);
            while passed < self.config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "gave up after {attempts} attempts: too many prop_assume rejections \
                     ({passed}/{} cases passed)",
                    self.config.cases
                );
                match body(&mut self.rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {msg}", passed + 1)
                    }
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// `prop::collection`, `prop::sample`, `prop::bits` paths.
    pub use crate as prop;
}

/// Defines property test functions.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn add_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                runner.run(|__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Filters a case: rejected inputs are retried with fresh draws.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps_compose(
            x in 1u64..100,
            y in (0.0..1.0f64).prop_map(|v| v * 10.0),
            v in prop::collection::vec(0u8..4, 1..10),
            pick in prop::sample::select(vec!["a", "b"]),
            bits in prop::bits::u8::masked(0b101),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((0.0..10.0).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(pick == "a" || pick == "b");
            prop_assert_eq!(bits & !0b101, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5), "t");
        let mut b = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5), "t");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        a.run(|rng| {
            xs.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        b.run(|rng| {
            ys.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(xs, ys);
    }
}
