//! Minimal in-tree stand-in for `criterion`.
//!
//! Provides the API shape the bench suite uses — [`Criterion`],
//! benchmark groups, [`Throughput`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! calibrated timing loop instead of criterion's statistical machinery.
//! Results print as `ns/iter` (median of several samples) plus a
//! throughput line when configured. A positional CLI argument acts as a
//! substring filter, so `cargo bench -p dpm-bench campaign_throughput`
//! runs only matching benchmarks, exactly like real criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl ToString) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter.to_string()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl ToString) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`: calibrates an iteration count, then takes several
    /// samples and records the median.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // calibration: find an iteration count that runs ≥ ~5 ms
        let mut iters: u64 = 1;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        // measurement: ~5 samples of ~20 ms each, capped for slow bodies
        let sample_iters = ((0.02 / per_iter_estimate.max(1e-9)) as u64).clamp(1, 1 << 22);
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..sample_iters {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() / sample_iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<56} time: {:>12} /iter", fmt_ns(ns_per_iter));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (ns_per_iter * 1e-9);
        line.push_str(&format!("   thrpt: {per_sec:>14.0} {unit}/s"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes flags (e.g. --bench) plus an optional
        // positional filter; keep the first non-flag argument
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, id: impl ToString, mut f: impl FnMut(&mut Bencher)) {
        let name = id.to_string();
        if !self.matches(&name) {
            return;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&name, b.ns_per_iter, None);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl ToString, mut f: impl FnMut(&mut Bencher)) {
        let name = format!("{}/{}", self.name, id.to_string());
        if !self.criterion.matches(&name) {
            return;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&name, b.ns_per_iter, self.throughput);
    }

    /// Runs one benchmark that borrows an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let name = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&name) {
            return;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&name, b.ns_per_iter, self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        c.bench_function("shim_smoke", |b| {
            b.iter(|| black_box(41u64) + 1);
        });
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2);
        });
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
        };
        // would panic if executed
        c.bench_function("other", |_b| panic!("must be filtered out"));
    }
}
