//! Property-based tests for the quantity newtypes: algebraic laws the rest
//! of the workspace silently relies on.

use dpm_units::{Celsius, Charge, Energy, Frequency, Power, Ratio, SimDuration, SimTime, Voltage};
use proptest::prelude::*;

/// Finite, moderately sized f64s keep floating-point laws exact enough to
/// assert with tight tolerances.
fn small_f64() -> impl Strategy<Value = f64> {
    -1e9..1e9f64
}

fn pos_f64() -> impl Strategy<Value = f64> {
    1e-6..1e9f64
}

/// Durations up to ~1 hour, which all workloads stay below.
fn duration() -> impl Strategy<Value = SimDuration> {
    (0u64..3_600_000_000_000_000).prop_map(SimDuration::from_ps)
}

proptest! {
    #[test]
    fn energy_addition_commutes(a in small_f64(), b in small_f64()) {
        let (x, y) = (Energy::from_joules(a), Energy::from_joules(b));
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn energy_sub_inverts_add(a in small_f64(), b in small_f64()) {
        let (x, y) = (Energy::from_joules(a), Energy::from_joules(b));
        prop_assert!(((x + y - y).as_joules() - x.as_joules()).abs() <= 1e-6 * (1.0 + a.abs() + b.abs()));
    }

    #[test]
    fn power_time_energy_consistency(w in pos_f64(), d in duration()) {
        let p = Power::from_watts(w);
        let e = p * d;
        if !d.is_zero() {
            let back = e / d;
            prop_assert!((back.as_watts() - w).abs() <= 1e-9 * w.max(1.0));
        }
    }

    #[test]
    fn time_affine_roundtrip(start in 0u64..u64::MAX / 4, span in 0u64..u64::MAX / 4) {
        let t = SimTime::from_ps(start);
        let d = SimDuration::from_ps(span);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_since_matches_sub(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (x, y) = (SimTime::from_ps(a), SimTime::from_ps(b));
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert_eq!(hi.checked_duration_since(lo), Some(hi - lo));
        if lo < hi {
            prop_assert_eq!(lo.checked_duration_since(hi), None);
            prop_assert_eq!(lo.saturating_duration_since(hi), SimDuration::ZERO);
        }
    }

    #[test]
    fn frequency_cycles_never_overestimate(mhz in 1.0..4000.0f64, d in duration()) {
        let f = Frequency::from_mega_hertz(mhz);
        let cycles = f.cycles_in(d);
        // floor semantics: cycles fit within d, cycles+1 may not
        let fit = f.duration_of_cycles(cycles);
        prop_assert!(fit.as_ps() <= d.as_ps() + 1); // +1 ps rounding slack
    }

    #[test]
    fn charge_voltage_energy_roundtrip(c in pos_f64(), v in 0.5..5.0f64) {
        let q = Charge::from_coulombs(c);
        let volt = Voltage::from_volts(v);
        let e = q * volt;
        let back = e / volt;
        prop_assert!((back.as_coulombs() - c).abs() <= 1e-9 * c.max(1.0));
    }

    #[test]
    fn celsius_delta_roundtrip(t in -50.0..150.0f64, dk in -100.0..100.0f64) {
        let a = Celsius::new(t);
        let b = a.plus_kelvin(dk);
        prop_assert!(((b - a) - dk).abs() < 1e-9);
    }

    #[test]
    fn ratio_clamp_is_idempotent(r in -10.0..10.0f64) {
        let clamped = Ratio::new(r).clamp_unit();
        prop_assert!(clamped.is_unit());
        prop_assert_eq!(clamped.clamp_unit(), clamped);
    }

    #[test]
    fn duration_scale_monotone(ps in 0u64..1_000_000_000_000u64, k in 0.0..1000.0f64) {
        let d = SimDuration::from_ps(ps);
        let scaled = d.mul_f64(k);
        if k >= 1.0 {
            prop_assert!(scaled >= d || ps == 0);
        } else {
            prop_assert!(scaled <= d + SimDuration::from_ps(1));
        }
    }

    #[test]
    fn display_never_panics(j in small_f64()) {
        let _ = Energy::from_joules(j).to_string();
        let _ = Power::from_watts(j).to_string();
        let _ = Voltage::from_volts(j).to_string();
    }
}
