//! Internal macro generating the boilerplate shared by every `f64`-backed
//! physical quantity: constructors, accessors, arithmetic within the unit,
//! scaling by dimensionless factors, ordering helpers and `Display`.

/// Implements a linear `f64`-backed quantity newtype.
///
/// Generated API (per type `$ty` with SI base unit `$unit`):
/// * `const ZERO`, `fn new(f64)`, `fn value(self) -> f64`
/// * `Add`, `Sub`, `Neg`, `AddAssign`, `SubAssign`
/// * `Mul<f64>`, `f64 × $ty`, `Div<f64>`, `Div<$ty> -> f64`
/// * `iter::Sum`
/// * `fn min/max/clamp/abs/is_finite`
/// * `Display` in the base unit with SI prefix scaling
macro_rules! quantity {
    ($(#[$meta:meta])* $ty:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $ty(f64);

        impl $ty {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates the quantity from its value in the SI base unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in the SI base unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Smaller of `self` and `other` (propagates NaN like `f64::min`).
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Larger of `self` and `other` (propagates NaN like `f64::max`).
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value to `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` when the value is neither infinite nor NaN.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $ty {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $ty {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $ty {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $ty> for $ty {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $ty {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                let (scaled, prefix) = crate::macros::si_scale(self.0);
                if let Some(precision) = f.precision() {
                    write!(f, "{scaled:.precision$} {prefix}{}", $unit)
                } else {
                    write!(f, "{scaled:.3} {prefix}{}", $unit)
                }
            }
        }
    };
}

/// Picks an SI prefix so the mantissa lands in `[1, 1000)` when possible.
pub(crate) fn si_scale(value: f64) -> (f64, &'static str) {
    const PREFIXES: [(f64, &str); 9] = [
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
    ];
    if value == 0.0 || !value.is_finite() {
        return (value, "");
    }
    let mag = value.abs();
    for (scale, prefix) in PREFIXES {
        if mag >= scale {
            return (value / scale, prefix);
        }
    }
    let (scale, prefix) = PREFIXES[PREFIXES.len() - 1];
    (value / scale, prefix)
}

#[cfg(test)]
mod tests {
    use super::si_scale;

    #[test]
    fn si_scale_picks_readable_prefix() {
        assert_eq!(si_scale(0.0), (0.0, ""));
        assert_eq!(si_scale(1.5), (1.5, ""));
        assert_eq!(si_scale(1500.0), (1.5, "k"));
        assert_eq!(si_scale(2.5e6), (2.5, "M"));
        let (v, p) = si_scale(0.004);
        assert!((v - 4.0).abs() < 1e-12);
        assert_eq!(p, "m");
        let (v, p) = si_scale(-3.2e-7);
        assert!((v + 320.0).abs() < 1e-9);
        assert_eq!(p, "n");
    }

    #[test]
    fn si_scale_handles_tiny_values() {
        let (v, p) = si_scale(2e-18);
        assert_eq!(p, "f");
        assert!((v - 0.002).abs() < 1e-15);
    }
}
