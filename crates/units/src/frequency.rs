//! Clock frequency in hertz and cycle/time conversions.

use crate::SimDuration;

quantity!(
    /// Clock frequency in **hertz**.
    ///
    /// The execution states `ON1..ON4` run the IP clock at decreasing
    /// frequencies; converting between instruction counts and simulation
    /// time goes through this type.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_units::{Frequency, SimDuration};
    ///
    /// let f = Frequency::from_mega_hertz(100.0);
    /// assert_eq!(f.period(), SimDuration::from_nanos(10));
    /// assert_eq!(f.duration_of_cycles(5), SimDuration::from_nanos(50));
    /// ```
    Frequency,
    "Hz"
);

impl Frequency {
    /// Frequency from a hertz value (alias of [`Frequency::new`]).
    #[inline]
    pub const fn from_hertz(hz: f64) -> Self {
        Self::new(hz)
    }

    /// Frequency from kilohertz.
    #[inline]
    pub const fn from_kilo_hertz(khz: f64) -> Self {
        Self::new(khz * 1e3)
    }

    /// Frequency from megahertz.
    #[inline]
    pub const fn from_mega_hertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Frequency from gigahertz.
    #[inline]
    pub const fn from_giga_hertz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// The value in hertz.
    #[inline]
    pub const fn as_hertz(self) -> f64 {
        self.value()
    }

    /// The clock period, rounded to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero, negative or NaN.
    #[inline]
    pub fn period(self) -> SimDuration {
        assert!(
            self.value() > 0.0,
            "Frequency::period requires a positive frequency, got {self:?}"
        );
        SimDuration::from_secs_f64(1.0 / self.value())
    }

    /// Number of complete cycles elapsing in `dt` at this frequency.
    #[inline]
    pub fn cycles_in(self, dt: SimDuration) -> u64 {
        (self.value() * dt.as_secs_f64()).floor() as u64
    }

    /// Time taken by `cycles` clock cycles, rounded to a picosecond.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    #[inline]
    pub fn duration_of_cycles(self, cycles: u64) -> SimDuration {
        assert!(
            self.value() > 0.0,
            "Frequency::duration_of_cycles requires a positive frequency"
        );
        SimDuration::from_secs_f64(cycles as f64 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_of_common_clocks() {
        assert_eq!(
            Frequency::from_giga_hertz(1.0).period(),
            SimDuration::from_ps(1000)
        );
        assert_eq!(
            Frequency::from_mega_hertz(250.0).period(),
            SimDuration::from_nanos(4)
        );
    }

    #[test]
    fn cycles_roundtrip() {
        let f = Frequency::from_mega_hertz(200.0);
        let dt = f.duration_of_cycles(1_000);
        assert_eq!(dt, SimDuration::from_micros(5));
        assert_eq!(f.cycles_in(dt), 1_000);
    }

    #[test]
    fn cycles_in_floors_partial_cycles() {
        let f = Frequency::from_mega_hertz(1.0);
        assert_eq!(f.cycles_in(SimDuration::from_nanos(2_500)), 2);
    }

    #[test]
    #[should_panic(expected = "positive frequency")]
    fn period_of_zero_frequency_panics() {
        let _ = Frequency::ZERO.period();
    }
}
