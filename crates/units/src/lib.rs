//! Simulation-time and physical-quantity newtypes for the `dpmsim` workspace.
//!
//! Dynamic power management couples *time*, *energy*, *power*, *voltage*,
//! *frequency*, *temperature* and *charge*. Mixing those up as bare `f64`s is
//! the classic source of silent unit bugs in EDA tooling, so every quantity
//! in this workspace is a dedicated newtype with only the physically
//! meaningful arithmetic implemented.
//!
//! Two kinds of types live here:
//!
//! * **Simulation time** ([`SimTime`], [`SimDuration`]) is an *integer*
//!   number of picoseconds, mirroring SystemC's `sc_time` discrete
//!   resolution. Integer time keeps the event queue total-ordered and the
//!   kernel deterministic: two events at the same instant compare equal
//!   exactly, never "almost".
//! * **Physical quantities** ([`Energy`], [`Power`], [`Voltage`],
//!   [`Frequency`], [`Celsius`], [`Charge`], [`Ratio`]) are `f64` newtypes in
//!   SI base units with cross-unit operators for the identities the power
//!   models rely on (`Energy = Power × time`, `Charge = Energy / Voltage`,
//!   `cycles = Frequency × time`, ...).
//!
//! # Examples
//!
//! ```
//! use dpm_units::{Energy, Frequency, Power, SimDuration};
//!
//! let p = Power::from_milliwatts(250.0);
//! let dt = SimDuration::from_millis(4);
//! let e: Energy = p * dt;
//! assert!((e.as_joules() - 1.0e-3).abs() < 1e-12);
//!
//! let f = Frequency::from_mega_hertz(200.0);
//! assert_eq!(f.cycles_in(SimDuration::from_micros(1)), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod charge;
mod energy;
mod frequency;
mod power;
mod ratio;
mod temperature;
mod time;
mod voltage;

pub use charge::Charge;
pub use energy::Energy;
pub use frequency::Frequency;
pub use power::Power;
pub use ratio::Ratio;
pub use temperature::Celsius;
pub use time::{SimDuration, SimTime};
pub use voltage::Voltage;
