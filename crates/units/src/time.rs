//! Integer simulation time, mirroring SystemC's `sc_time`.
//!
//! [`SimTime`] is an absolute instant, [`SimDuration`] a span; both count
//! **picoseconds** in a `u64`. One picosecond resolution covers clock
//! frequencies up to the THz range while still representing horizons of
//! roughly 213 days — far beyond any DPM simulation in this workspace.
//!
//! The types are deliberately *not* interchangeable: instants support only
//! affine arithmetic (`instant ± span`, `instant − instant → span`), which
//! rules out the "added two timestamps" bug at compile time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per unit, used by the constructors.
const PS_PER_NS: u64 = 1_000;
const PS_PER_US: u64 = 1_000_000;
const PS_PER_MS: u64 = 1_000_000_000;
const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute simulation instant (picoseconds since simulation start).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulation time (picoseconds).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: Self = Self(0);
    /// The latest representable instant (~213 days).
    pub const MAX: Self = Self(u64::MAX);

    /// Instant `ps` picoseconds after simulation start.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Self(ps)
    }

    /// Instant `ns` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns * PS_PER_NS)
    }

    /// Instant `us` microseconds after simulation start.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * PS_PER_US)
    }

    /// Instant `ms` milliseconds after simulation start.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * PS_PER_MS)
    }

    /// Instant `s` seconds after simulation start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * PS_PER_S)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as `f64` (for physics integration).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Span since `earlier`, or `None` if `earlier` is in the future.
    #[inline]
    pub fn checked_duration_since(self, earlier: Self) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Span since `earlier`, clamped to zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_duration_since(self, earlier: Self) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Instant advanced by `d`, or `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<Self> {
        self.0.checked_add(d.0).map(Self)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: Self = Self(0);
    /// The longest representable span.
    pub const MAX: Self = Self(u64::MAX);

    /// Span of `ps` picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Self(ps)
    }

    /// Span of `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns * PS_PER_NS)
    }

    /// Span of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * PS_PER_US)
    }

    /// Span of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * PS_PER_MS)
    }

    /// Span of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * PS_PER_S)
    }

    /// Span of `s` seconds given as `f64`, rounded to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds value {s}"
        );
        let ps = s * PS_PER_S as f64;
        assert!(
            ps <= u64::MAX as f64,
            "SimDuration::from_secs_f64: {s} s overflows the picosecond range"
        );
        Self(ps.round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The span in seconds as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// `true` when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Smaller of two spans.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Larger of two spans.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Sum, or `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: Self) -> Option<Self> {
        self.0.checked_add(other.0).map(Self)
    }

    /// Difference, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Scales the span by a non-negative factor, rounding to a picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN, or the result overflows.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64: invalid factor {factor}"
        );
        let ps = self.0 as f64 * factor;
        assert!(
            ps <= u64::MAX as f64,
            "SimDuration::mul_f64: overflow scaling {self} by {factor}"
        );
        Self(ps.round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: instant + span exceeds the representable horizon"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: span larger than elapsed time"),
        )
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction: right operand is later than left"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Self) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, d| acc + d)
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    const SCALES: [(u64, &str); 5] = [
        (PS_PER_S, "s"),
        (PS_PER_MS, "ms"),
        (PS_PER_US, "us"),
        (PS_PER_NS, "ns"),
        (1, "ps"),
    ];
    for (scale, unit) in SCALES {
        if ps >= scale {
            let whole = ps / scale;
            let frac = ps % scale;
            return if frac == 0 {
                write!(f, "{whole} {unit}")
            } else {
                write!(f, "{:.3} {unit}", ps as f64 / scale as f64)
            };
        }
    }
    write!(f, "0 s")
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimTime::from_nanos(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_micros(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_millis(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
    }

    #[test]
    fn affine_arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!(t + d, SimTime::from_micros(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_micros(6));
    }

    #[test]
    #[should_panic(expected = "later than left")]
    fn instant_subtraction_panics_when_reversed() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn saturating_and_checked_duration_since() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(7);
        assert_eq!(
            b.checked_duration_since(a),
            Some(SimDuration::from_micros(2))
        );
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_roundtrips() {
        let d = SimDuration::from_secs_f64(1.25e-6);
        assert_eq!(d, SimDuration::from_nanos(1250));
        assert!((d.as_secs_f64() - 1.25e-6).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_ps(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_ps(25));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(3).to_string(), "3 us");
        assert_eq!(SimDuration::from_ps(1500).to_string(), "1.500 ns");
        assert_eq!(SimTime::ZERO.to_string(), "0 s");
        assert_eq!(SimTime::from_secs(2).to_string(), "2 s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&us| SimDuration::from_micros(us))
            .sum();
        assert_eq!(total, SimDuration::from_micros(6));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_micros(3),
            SimTime::ZERO,
            SimTime::from_nanos(10),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_micros(3));
    }
}
