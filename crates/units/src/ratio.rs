//! Dimensionless ratios (state of charge, savings, occupancy).

use core::fmt;

/// A dimensionless ratio where `1.0` is 100 %.
///
/// Used for battery state of charge, bus occupancy and the relative
/// metrics reported by the experiment harness.
///
/// # Examples
///
/// ```
/// use dpm_units::Ratio;
///
/// let soc = Ratio::from_percent(85.0);
/// assert_eq!(soc.as_percent(), 85.0);
/// assert_eq!(soc.clamp_unit(), soc);
/// assert_eq!(Ratio::new(1.2).clamp_unit(), Ratio::ONE);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// The 0 % ratio.
    pub const ZERO: Self = Self(0.0);
    /// The 100 % ratio.
    pub const ONE: Self = Self(1.0);

    /// A ratio from its raw value (`1.0` = 100 %).
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// A ratio from a percentage.
    #[inline]
    pub const fn from_percent(pct: f64) -> Self {
        Self(pct / 100.0)
    }

    /// The raw value (`1.0` = 100 %).
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The value as a percentage.
    #[inline]
    pub const fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Clamps into the unit interval `[0, 1]`.
    #[inline]
    pub fn clamp_unit(self) -> Self {
        Self(self.0.clamp(0.0, 1.0))
    }

    /// `true` when the value lies in `[0, 1]`.
    #[inline]
    pub fn is_unit(self) -> bool {
        (0.0..=1.0).contains(&self.0)
    }

    /// Smaller of two ratios.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Larger of two ratios.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl core::ops::Add for Ratio {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Ratio {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl core::ops::Mul<f64> for Ratio {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.precision$} %", self.as_percent())
        } else {
            write!(f, "{:.1} %", self.as_percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_roundtrip() {
        assert_eq!(Ratio::from_percent(42.0).as_percent(), 42.0);
    }

    #[test]
    fn clamp_unit_bounds() {
        assert_eq!(Ratio::new(-0.5).clamp_unit(), Ratio::ZERO);
        assert_eq!(Ratio::new(2.0).clamp_unit(), Ratio::ONE);
        assert!(Ratio::new(0.3).is_unit());
        assert!(!Ratio::new(1.3).is_unit());
    }

    #[test]
    fn display_is_percent() {
        assert_eq!(Ratio::from_percent(12.34).to_string(), "12.3 %");
        assert_eq!(format!("{:.0}", Ratio::ONE), "100 %");
    }
}
