//! Electric charge in coulombs (battery bookkeeping).

use crate::{Energy, Voltage};

quantity!(
    /// Electric charge in **coulombs**.
    ///
    /// Battery models track their wells in charge; multiplying by the cell
    /// [`Voltage`] recovers [`Energy`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_units::{Charge, Voltage};
    ///
    /// let q = Charge::from_milliamp_hours(1000.0);
    /// let e = q * Voltage::from_volts(3.7);
    /// assert!((e.as_joules() - 13_320.0).abs() < 1e-6);
    /// ```
    Charge,
    "C"
);

impl Charge {
    /// Charge from a coulomb value (alias of [`Charge::new`]).
    #[inline]
    pub const fn from_coulombs(c: f64) -> Self {
        Self::new(c)
    }

    /// Charge from the milliamp-hour rating printed on batteries.
    #[inline]
    pub const fn from_milliamp_hours(mah: f64) -> Self {
        Self::new(mah * 3.6)
    }

    /// The value in coulombs.
    #[inline]
    pub const fn as_coulombs(self) -> f64 {
        self.value()
    }

    /// The value in milliamp-hours.
    #[inline]
    pub const fn as_milliamp_hours(self) -> f64 {
        self.value() / 3.6
    }
}

impl core::ops::Mul<Voltage> for Charge {
    type Output = Energy;
    /// Energy released moving this charge through potential `v`.
    #[inline]
    fn mul(self, v: Voltage) -> Energy {
        Energy::new(self.value() * v.as_volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mah_roundtrip() {
        let q = Charge::from_milliamp_hours(500.0);
        assert!((q.as_coulombs() - 1800.0).abs() < 1e-9);
        assert!((q.as_milliamp_hours() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn charge_times_voltage_is_energy() {
        let e = Charge::from_coulombs(2.0) * Voltage::from_volts(1.5);
        assert!((e.as_joules() - 3.0).abs() < 1e-12);
    }
}
