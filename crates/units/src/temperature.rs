//! Chip temperature in degrees Celsius.
//!
//! Temperature is an *affine* quantity: adding two temperatures is
//! meaningless, while adding a delta (in kelvin, represented as `f64`) and
//! taking differences are well defined. [`Celsius`] therefore does not use
//! the linear-quantity macro.

use core::fmt;
use core::ops::Sub;

/// A temperature in **degrees Celsius**.
///
/// The thermal model integrates heat flows into per-node temperatures; the
/// sensor quantizes them into the paper's three classes.
///
/// # Examples
///
/// ```
/// use dpm_units::Celsius;
///
/// let ambient = Celsius::new(25.0);
/// let hot = ambient.plus_kelvin(40.0);
/// assert_eq!(hot - ambient, 40.0);
/// assert!(hot > ambient);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Celsius(f64);

impl Celsius {
    /// A temperature from its Celsius value.
    #[inline]
    pub const fn new(deg_c: f64) -> Self {
        Self(deg_c)
    }

    /// The value in degrees Celsius.
    #[inline]
    pub const fn as_celsius(self) -> f64 {
        self.0
    }

    /// The value in kelvin.
    #[inline]
    pub fn as_kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// This temperature shifted up by `delta_k` kelvin (negative shifts down).
    #[inline]
    pub fn plus_kelvin(self, delta_k: f64) -> Self {
        Self(self.0 + delta_k)
    }

    /// Lower of two temperatures (NaN-propagating like `f64::min`).
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Higher of two temperatures.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Clamps to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// `true` when the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Sub for Celsius {
    type Output = f64;
    /// Temperature difference in kelvin.
    #[inline]
    fn sub(self, rhs: Self) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.precision$} degC", self.0)
        } else {
            write!(f, "{:.2} degC", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_offset() {
        assert!((Celsius::new(0.0).as_kelvin() - 273.15).abs() < 1e-12);
    }

    #[test]
    fn differences_are_deltas() {
        let a = Celsius::new(60.0);
        let b = Celsius::new(25.0);
        assert_eq!(a - b, 35.0);
        assert_eq!(b.plus_kelvin(35.0), a);
        assert_eq!(a.plus_kelvin(-35.0), b);
    }

    #[test]
    fn clamp_and_ordering() {
        let t = Celsius::new(95.0).clamp(Celsius::new(0.0), Celsius::new(85.0));
        assert_eq!(t, Celsius::new(85.0));
        assert!(Celsius::new(20.0) < Celsius::new(20.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Celsius::new(42.128).to_string(), "42.13 degC");
        assert_eq!(format!("{:.1}", Celsius::new(42.15)), "42.1 degC");
    }
}
