//! Supply voltage in volts.

quantity!(
    /// Electric potential in **volts**.
    ///
    /// Variable-voltage operating points pair a supply [`Voltage`] with a
    /// clock [`crate::Frequency`]; dynamic energy scales with `V²`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_units::Voltage;
    ///
    /// let v = Voltage::from_volts(1.8);
    /// assert_eq!(v.squared(), 1.8 * 1.8);
    /// ```
    Voltage,
    "V"
);

impl Voltage {
    /// Voltage from a volt value (alias of [`Voltage::new`]).
    #[inline]
    pub const fn from_volts(v: f64) -> Self {
        Self::new(v)
    }

    /// Voltage from millivolts.
    #[inline]
    pub const fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1e-3)
    }

    /// The value in volts.
    #[inline]
    pub const fn as_volts(self) -> f64 {
        self.value()
    }

    /// `V²`, the factor dynamic CMOS energy scales with.
    #[inline]
    pub fn squared(self) -> f64 {
        self.value() * self.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_matches_definition() {
        let v = Voltage::from_millivolts(1200.0);
        assert!((v.squared() - 1.44).abs() < 1e-12);
    }

    #[test]
    fn dynamic_energy_ratio_between_rails() {
        // The paper's ON4 vs ON1 saving comes from (V4/V1)^2.
        let v1 = Voltage::from_volts(1.8);
        let v4 = Voltage::from_volts(1.2);
        let ratio = v4.squared() / v1.squared();
        assert!((ratio - 0.4444).abs() < 1e-3);
    }
}
