//! Power in watts and the `Energy = Power × time` identity.

use crate::{Energy, SimDuration};

quantity!(
    /// Instantaneous power in **watts**.
    ///
    /// IP power models expose piecewise-constant power levels per ACPI
    /// state; integrating them over simulation time yields [`Energy`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_units::{Power, SimDuration};
    ///
    /// let e = Power::from_milliwatts(40.0) * SimDuration::from_millis(25);
    /// assert!((e.as_joules() - 1e-3).abs() < 1e-12);
    /// ```
    Power,
    "W"
);

impl Power {
    /// Power from a watt value (alias of [`Power::new`]).
    #[inline]
    pub const fn from_watts(w: f64) -> Self {
        Self::new(w)
    }

    /// Power from milliwatts.
    #[inline]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Power from microwatts.
    #[inline]
    pub const fn from_microwatts(uw: f64) -> Self {
        Self::new(uw * 1e-6)
    }

    /// The value in watts.
    #[inline]
    pub const fn as_watts(self) -> f64 {
        self.value()
    }
}

impl core::ops::Mul<SimDuration> for Power {
    type Output = Energy;
    /// Energy dissipated holding this power for `dt`.
    #[inline]
    fn mul(self, dt: SimDuration) -> Energy {
        Energy::new(self.value() * dt.as_secs_f64())
    }
}

impl core::ops::Mul<Power> for SimDuration {
    type Output = Energy;
    #[inline]
    fn mul(self, p: Power) -> Energy {
        p * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(2.0) * SimDuration::from_secs(3);
        assert!((e.as_joules() - 6.0).abs() < 1e-12);
        let e2 = SimDuration::from_secs(3) * Power::from_watts(2.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn constructors() {
        assert!((Power::from_milliwatts(5.0).as_watts() - 5e-3).abs() < 1e-15);
        assert!((Power::from_microwatts(5.0).as_watts() - 5e-6).abs() < 1e-18);
    }

    #[test]
    fn zero_power_integrates_to_zero() {
        assert_eq!(
            (Power::ZERO * SimDuration::from_secs(1000)).as_joules(),
            0.0
        );
    }
}
