//! Energy in joules, with conversions to the power/charge/time identities.

use crate::{Charge, Power, SimDuration, Voltage};

quantity!(
    /// An amount of energy in **joules**.
    ///
    /// In this workspace energies appear as per-instruction costs, state
    /// transition costs and accumulated battery drain.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_units::{Energy, Power, SimDuration};
    ///
    /// let e = Energy::from_microjoules(10.0) + Energy::from_microjoules(5.0);
    /// assert!((e.as_joules() - 15e-6).abs() < 1e-15);
    /// let p: Power = e / SimDuration::from_micros(3);
    /// assert!((p.as_watts() - 5.0).abs() < 1e-9);
    /// ```
    Energy,
    "J"
);

impl Energy {
    /// Energy from a joule value (alias of [`Energy::new`]).
    #[inline]
    pub const fn from_joules(j: f64) -> Self {
        Self::new(j)
    }

    /// Energy from millijoules.
    #[inline]
    pub const fn from_millijoules(mj: f64) -> Self {
        Self::new(mj * 1e-3)
    }

    /// Energy from microjoules.
    #[inline]
    pub const fn from_microjoules(uj: f64) -> Self {
        Self::new(uj * 1e-6)
    }

    /// Energy from nanojoules.
    #[inline]
    pub const fn from_nanojoules(nj: f64) -> Self {
        Self::new(nj * 1e-9)
    }

    /// Energy from picojoules.
    #[inline]
    pub const fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// The value in joules.
    #[inline]
    pub const fn as_joules(self) -> f64 {
        self.value()
    }

    /// Energy stored in a battery quoted in milliwatt-hours.
    #[inline]
    pub const fn from_milliwatt_hours(mwh: f64) -> Self {
        Self::new(mwh * 3.6)
    }

    /// The value in milliwatt-hours.
    #[inline]
    pub const fn as_milliwatt_hours(self) -> f64 {
        self.value() / 3.6
    }
}

impl core::ops::Div<SimDuration> for Energy {
    type Output = Power;
    /// Average power delivering this energy over `dt`.
    #[inline]
    fn div(self, dt: SimDuration) -> Power {
        Power::new(self.value() / dt.as_secs_f64())
    }
}

impl core::ops::Div<Power> for Energy {
    type Output = SimDuration;
    /// Time needed to spend this energy at constant power `p`.
    ///
    /// # Panics
    ///
    /// Panics if the resulting time is negative or not representable.
    #[inline]
    fn div(self, p: Power) -> SimDuration {
        SimDuration::from_secs_f64(self.value() / p.as_watts())
    }
}

impl core::ops::Div<Voltage> for Energy {
    type Output = Charge;
    /// Charge moved through a potential `v` carrying this energy.
    #[inline]
    fn div(self, v: Voltage) -> Charge {
        Charge::new(self.value() / v.as_volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert!((Energy::from_millijoules(2.0).as_joules() - 2e-3).abs() < 1e-15);
        assert!((Energy::from_nanojoules(7.0).as_joules() - 7e-9).abs() < 1e-20);
        assert!((Energy::from_picojoules(3.0).as_joules() - 3e-12).abs() < 1e-24);
    }

    #[test]
    fn milliwatt_hours_roundtrip() {
        let e = Energy::from_milliwatt_hours(1000.0); // 1 Wh = 3600 J
        assert!((e.as_joules() - 3600.0).abs() < 1e-9);
        assert!((e.as_milliwatt_hours() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn energy_over_power_gives_time() {
        let dt = Energy::from_joules(1.0) / Power::from_watts(2.0);
        assert_eq!(dt, SimDuration::from_millis(500));
    }

    #[test]
    fn energy_over_voltage_gives_charge() {
        let q = Energy::from_joules(3.6) / Voltage::from_volts(1.8);
        assert!((q.as_coulombs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Energy::from_joules(1.0);
        let b = Energy::from_joules(2.0);
        assert!(a < b);
        assert_eq!((b - a).as_joules(), 1.0);
        assert_eq!((a * 4.0).as_joules(), 4.0);
        assert_eq!(b / a, 2.0);
        let s: Energy = [a, b].iter().sum();
        assert_eq!(s.as_joules(), 3.0);
    }

    #[test]
    fn display_uses_si_prefix() {
        assert_eq!(Energy::from_microjoules(12.5).to_string(), "12.500 uJ");
    }
}
