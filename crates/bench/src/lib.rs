//! Shared helpers for the benchmark suite.
//!
//! The actual benchmarks live in `benches/`:
//!
//! | bench | regenerates |
//! |-------|-------------|
//! | `table2` | the paper's Table 2 (scenarios A1–A4, B, C vs baseline) |
//! | `simspeed` | the paper's simulation-speed figures (35 / 7.5 Kcycle/s) |
//! | `policy_lookup` | Table 1 selection cost (crisp, fallback, fuzzy, DSL) |
//! | `predictors` | idle-predictor update/prediction cost |
//! | `models` | battery / thermal / break-even step costs |
//! | `kernel_micro` | kernel primitives and the event-driven vs cycle-accurate ablation |

use dpm_kernel::Simulation;
use dpm_soc::{build_soc, SocConfig, SocHandles};
use dpm_units::SimTime;
use dpm_workload::{ActivityLevel, BurstyGenerator, PriorityWeights, TaskTrace, TraceGenerator};

/// Standard bench horizon: long enough to exercise sleeping, short enough
/// for tight criterion iterations.
pub const BENCH_HORIZON: SimTime = SimTime::from_millis(20);

/// A deterministic bursty trace for benches.
pub fn bench_trace(level: ActivityLevel, seed: u64) -> TaskTrace {
    BurstyGenerator::for_activity(level, PriorityWeights::typical_user())
        .generate(BENCH_HORIZON, seed)
}

/// Builds a SoC and runs it to the bench horizon; returns the simulation
/// for inspection.
pub fn run_soc(cfg: &SocConfig) -> (Simulation, SocHandles) {
    let mut sim = Simulation::new();
    let handles = build_soc(&mut sim, cfg);
    sim.run_until(BENCH_HORIZON);
    (sim, handles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_runnable_configs() {
        let cfg = SocConfig::single_ip(bench_trace(ActivityLevel::Low, 1));
        let (sim, handles) = run_soc(&cfg);
        assert!(sim.peek(handles.ips[0].done_count) > 0);
    }
}
