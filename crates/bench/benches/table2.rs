//! Regenerates the paper's **Table 2**: energy saving, temperature
//! reduction and delay overhead of scenarios A1–A4, B, C against the
//! always-max-frequency baseline.
//!
//! The comparison table is printed once at startup (measured vs paper);
//! criterion then times each scenario's full double run (DPM + baseline),
//! which doubles as a regression guard on simulation cost.
//!
//! ```sh
//! cargo bench -p dpm-bench --bench table2
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_soc::experiment::{run_scenario, ScenarioId};
use dpm_soc::report::table2_ascii;

fn print_table_once() {
    let outcomes: Vec<_> = ScenarioId::ALL.into_iter().map(run_scenario).collect();
    println!("\n== Table 2: measured vs paper (Conti, DATE'05) ==");
    println!("{}", table2_ascii(&outcomes));
}

fn bench_scenarios(c: &mut Criterion) {
    print_table_once();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for id in ScenarioId::ALL {
        group.bench_function(id.to_string(), |b| {
            b.iter(|| std::hint::black_box(run_scenario(id)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
