//! Microbenchmarks of the physical models: battery drain steps, thermal
//! network integration, break-even computation and energy metering.
//!
//! ```sh
//! cargo bench -p dpm-bench --bench models
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_battery::{Battery, KibamBattery, LinearBattery, RateCapacityBattery};
use dpm_power::{BreakEvenTable, EnergyMeter, IpPowerModel, PowerState, TransitionTable};
use dpm_thermal::{ThermalNetwork, ThermalNetworkConfig};
use dpm_units::{Energy, Power, SimDuration, SimTime};

fn bench_batteries(c: &mut Criterion) {
    const STEPS: u64 = 1_000;
    let mut group = c.benchmark_group("battery_drain_1k_steps");
    group.throughput(Throughput::Elements(STEPS));
    let dt = SimDuration::from_micros(100);
    let p = Power::from_milliwatts(300.0);
    group.bench_function("linear", |b| {
        b.iter(|| {
            let mut bat = LinearBattery::new(Energy::from_joules(100.0));
            for _ in 0..STEPS {
                bat.drain(p, dt);
            }
            std::hint::black_box(bat.soc())
        });
    });
    group.bench_function("rate_capacity", |b| {
        b.iter(|| {
            let mut bat = RateCapacityBattery::new(
                Energy::from_joules(100.0),
                Power::from_milliwatts(100.0),
                1.2,
            );
            for _ in 0..STEPS {
                bat.drain(p, dt);
            }
            std::hint::black_box(bat.soc())
        });
    });
    group.bench_function("kibam", |b| {
        b.iter(|| {
            let mut bat = KibamBattery::typical(Energy::from_joules(100.0));
            for _ in 0..STEPS {
                bat.drain(p, dt);
            }
            std::hint::black_box(bat.soc())
        });
    });
    group.finish();
}

fn bench_thermal(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_step");
    for n in [1usize, 4, 16] {
        let powers: Vec<Power> = (0..n).map(|_| Power::from_milliwatts(250.0)).collect();
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = ThermalNetwork::new(ThermalNetworkConfig::default_soc(n));
                net.step(&powers, false, SimDuration::from_millis(10));
                std::hint::black_box(net.hottest())
            });
        });
    }
    group.finish();
}

fn bench_breakeven(c: &mut Criterion) {
    let model = IpPowerModel::default_cpu();
    let table = TransitionTable::for_model(&model);
    c.bench_function("breakeven/table_compute", |b| {
        b.iter(|| {
            std::hint::black_box(BreakEvenTable::compute(
                std::hint::black_box(&model),
                &table,
                PowerState::On1,
            ))
        });
    });
    let be = BreakEvenTable::compute(&model, &table, PowerState::On1);
    c.bench_function("breakeven/deepest_within", |b| {
        b.iter(|| {
            std::hint::black_box(be.deepest_within(
                std::hint::black_box(SimDuration::from_millis(1)),
                Some(SimDuration::from_micros(600)),
            ))
        });
    });
}

fn bench_meter(c: &mut Criterion) {
    const EVENTS: u64 = 1_000;
    let mut group = c.benchmark_group("energy_meter");
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("1k_state_changes", |b| {
        b.iter(|| {
            let mut m = EnergyMeter::new(SimTime::ZERO, PowerState::On1, Power::from_watts(0.25));
            let mut t = SimTime::ZERO;
            for i in 0..EVENTS {
                t += SimDuration::from_micros(50);
                let s = if i % 2 == 0 {
                    PowerState::Sl2
                } else {
                    PowerState::On1
                };
                m.set_state(t, s, Power::from_milliwatts(2.0));
            }
            std::hint::black_box(m.total())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batteries,
    bench_thermal,
    bench_breakeven,
    bench_meter
);
criterion_main!(benches);
