//! Ablation bench for the LEM's idle predictors: per-update cost and the
//! end-to-end effect of the predictor choice on a full scenario run.
//!
//! ```sh
//! cargo bench -p dpm-bench --bench predictors
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_bench::{bench_trace, run_soc};
use dpm_core::predictor::PredictorKind;
use dpm_soc::{collect_metrics, SocConfig};
use dpm_units::{SimDuration, SimTime};
use dpm_workload::ActivityLevel;

const KINDS: [(&str, PredictorKind); 4] = [
    ("last_idle", PredictorKind::LastIdle),
    ("exp_average", PredictorKind::ExpAverage { alpha: 0.5 }),
    ("fixed_1ms", PredictorKind::Fixed { value_us: 1_000 }),
    ("window_8", PredictorKind::Window { k: 8 }),
];

fn bench_update_cost(c: &mut Criterion) {
    // a synthetic idle history: alternating short/long gaps
    let gaps_us: Vec<u64> = (0..256)
        .map(|i| if i % 3 == 0 { 5_000 } else { 150 })
        .collect();
    let mut group = c.benchmark_group("predictor_update");
    group.throughput(Throughput::Elements(gaps_us.len() as u64));
    for (name, kind) in KINDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, kind| {
            b.iter(|| {
                let mut p = kind.build(SimDuration::from_micros(500));
                let mut t = SimTime::ZERO;
                let mut acc = 0u64;
                for gap in &gaps_us {
                    p.idle_started(t);
                    t += SimDuration::from_micros(*gap);
                    p.idle_ended(t);
                    t += SimDuration::from_micros(300);
                    acc ^= p.predict().as_ps();
                }
                std::hint::black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // the predictor choice changes sleep depth selection and therefore
    // both energy and wall cost of a run
    println!("\n== predictor ablation on a low-activity run ==");
    for (name, kind) in KINDS {
        let mut cfg = SocConfig::single_ip(bench_trace(ActivityLevel::Low, 77));
        cfg.lem.predictor = kind;
        let (mut sim, handles) = run_soc(&cfg);
        let m = collect_metrics(&mut sim, &handles, dpm_bench::BENCH_HORIZON);
        println!(
            "  {name:>12}: energy {} | sleep {} | mean latency {}",
            m.total_energy,
            m.per_ip[0].low_power_time(),
            m.mean_latency().map(|l| l.to_string()).unwrap_or_default()
        );
    }
    let mut group = c.benchmark_group("predictor_end_to_end");
    group.sample_size(20);
    for (name, kind) in KINDS {
        let mut cfg = SocConfig::single_ip(bench_trace(ActivityLevel::Low, 77));
        cfg.lem.predictor = kind;
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| std::hint::black_box(run_soc(cfg).0.stats().process_activations));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_cost, bench_end_to_end);
criterion_main!(benches);
