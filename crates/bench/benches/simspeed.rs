//! Regenerates the paper's **simulation speed** figures.
//!
//! The paper reports 35 Kcycle/s for the single-IP simulations (A) and
//! 7.5 Kcycle/s for the four-IP + GEM simulations (B/C) on its 2005-era
//! host. Absolute numbers are host-bound; the *shape* — the multi-IP
//! model costs ~4–5× more wall time per simulated cycle — is what this
//! bench checks, by running the SoC in its cycle-accurate mode (a real
//! 200 MHz clock threads the kernel through every cycle, as SystemC did).
//!
//! Criterion's throughput report shows simulated cycles per wall second
//! (compare with 35 000 and 7 500 elem/s). A summary line per
//! configuration is printed at startup.
//!
//! The bench also **enforces the coarse-evaluator floor**: multi-fidelity
//! search charges one coarse evaluation at 1/10 of a fine simulation
//! (`COARSE_FACTOR`), so `run_config_coarse` must deliver at least 10x
//! the fine event-driven throughput — the run aborts if it does not.
//!
//! ```sh
//! cargo bench -p dpm-bench --bench simspeed
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_bench::bench_trace;
use dpm_kernel::{Clock, Simulation};
use dpm_soc::{build_soc, run_config_coarse, IpConfig, SocConfig, SocMetrics};
use dpm_units::SimTime;
use dpm_workload::ActivityLevel;

/// Short cycle-accurate horizon: 1 ms at 200 MHz = 200 000 cycles.
const CA_HORIZON: SimTime = SimTime::from_millis(1);

fn single_ip_config(cycle_accurate: bool) -> SocConfig {
    let mut cfg = SocConfig::single_ip(bench_trace(ActivityLevel::High, 3));
    cfg.cycle_accurate = cycle_accurate;
    cfg
}

fn four_ip_config(cycle_accurate: bool) -> SocConfig {
    let ips = (0..4)
        .map(|i| {
            IpConfig::new(
                format!("ip{i}"),
                bench_trace(ActivityLevel::High, 40 + i as u64),
                i as u8 + 1,
            )
        })
        .collect();
    let mut cfg = SocConfig::multi_ip(ips);
    cfg.cycle_accurate = cycle_accurate;
    cfg
}

fn run_cycle_accurate(cfg: &SocConfig) -> (u64, std::time::Duration) {
    let mut sim = Simulation::new();
    let handles = build_soc(&mut sim, cfg);
    sim.run_until(CA_HORIZON);
    let cycles =
        sim.with_process::<Clock, _>(handles.clock().expect("cycle accurate").pid, |c| c.cycles());
    (cycles, sim.stats().wall)
}

fn print_summary() {
    println!("\n== simulation speed (cycle-accurate mode), paper: 35 Kcycle/s (A), 7.5 Kcycle/s (B/C) ==");
    for (label, cfg) in [
        ("1 IP (scenario A shape)", single_ip_config(true)),
        ("4 IP + GEM (scenario B/C shape)", four_ip_config(true)),
    ] {
        let (cycles, wall) = run_cycle_accurate(&cfg);
        let kcps = cycles as f64 / wall.as_secs_f64() / 1e3;
        println!("  {label}: {cycles} cycles in {wall:?} -> {kcps:.0} Kcycle/s");
    }
    println!("  (the paper's *ratio* single-IP/multi-IP ≈ 4.7x is the portable claim)");
}

/// Runs one fine (event-driven) evaluation, as the campaign runner does.
fn run_fine(cfg: &SocConfig, horizon: SimTime) -> SocMetrics {
    let mut sim = Simulation::new();
    let handles = build_soc(&mut sim, cfg);
    sim.run_until(horizon);
    dpm_soc::collect_metrics(&mut sim, &handles, horizon)
}

/// The multi-fidelity search charges one coarse evaluation at 1/10 of a
/// fine simulation (`dpm_campaign::COARSE_FACTOR`). This guard keeps the
/// accounting honest: the coarse dwell-time evaluator must actually be
/// at least 10x the fine event-driven throughput, or the "widened"
/// screening budget would be a lie. Measured wall-to-wall over the same
/// configurations the campaign grids sweep.
fn enforce_coarse_speedup() {
    const FLOOR: f64 = 10.0;
    let horizon = SimTime::from_millis(15);
    let configs = [single_ip_config(false), four_ip_config(false)];
    // Warm up both paths (lazy statics, allocator, branch caches).
    for cfg in &configs {
        std::hint::black_box(run_fine(cfg, horizon));
        std::hint::black_box(run_config_coarse(cfg, horizon));
    }
    let reps = 10;
    let fine_start = std::time::Instant::now();
    for _ in 0..reps {
        for cfg in &configs {
            std::hint::black_box(run_fine(cfg, horizon));
        }
    }
    let fine = fine_start.elapsed();
    let coarse_start = std::time::Instant::now();
    for _ in 0..reps {
        for cfg in &configs {
            std::hint::black_box(run_config_coarse(cfg, horizon));
        }
    }
    let coarse = coarse_start.elapsed();
    let speedup = fine.as_secs_f64() / coarse.as_secs_f64().max(1e-12);
    println!(
        "== coarse evaluator: {reps}x{} evals fine {fine:?} vs coarse {coarse:?} -> {speedup:.0}x ==",
        configs.len()
    );
    assert!(
        speedup >= FLOOR,
        "coarse evaluator only {speedup:.1}x faster than fine; \
         the multi-fidelity budget accounting assumes >= {FLOOR}x \
         (COARSE_FACTOR) — profile the coarse walk before shipping"
    );
}

fn bench_simspeed(c: &mut Criterion) {
    print_summary();
    enforce_coarse_speedup();
    let mut group = c.benchmark_group("simspeed");
    group.sample_size(10);
    let cycles = 200_000u64; // 1 ms at 200 MHz
    group.throughput(Throughput::Elements(cycles));
    for (label, cfg) in [
        ("cycle_accurate/1ip", single_ip_config(true)),
        ("cycle_accurate/4ip_gem", four_ip_config(true)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| std::hint::black_box(run_cycle_accurate(cfg)));
        });
    }
    group.finish();

    // Ablation: the event-driven mode this workspace actually uses for the
    // experiments (no per-cycle clock) — orders of magnitude faster.
    let mut group = c.benchmark_group("simspeed_event_driven");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cycles));
    for (label, cfg) in [
        ("event_driven/1ip", single_ip_config(false)),
        ("event_driven/4ip_gem", four_ip_config(false)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sim = Simulation::new();
                let handles = build_soc(&mut sim, cfg);
                sim.run_until(CA_HORIZON);
                std::hint::black_box(sim.peek(handles.ips[0].done_count))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simspeed);
criterion_main!(benches);
