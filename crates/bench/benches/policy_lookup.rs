//! Regenerates the paper's **Table 1** and measures the selection cost of
//! every policy representation: the crisp first-match table (direct hit
//! and fallback path), the fuzzy-inference variant, and parsing the
//! natural-language form.
//!
//! ```sh
//! cargo bench -p dpm-bench --bench policy_lookup
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpm_battery::{BatteryClass, PowerSource};
use dpm_core::policy::{parse_rules, table1, FuzzyPolicy, PolicyInputs, RuleSet, TABLE1_TEXT};
use dpm_thermal::ThermalClass;
use dpm_units::Celsius;
use dpm_workload::Priority;

fn print_table_once() {
    println!("\n== Table 1 (regenerated) ==\n{}", table1());
    println!(
        "shadowed rows: {:?} (the paper's '- E M -> ON4')",
        table1().shadowed()
    );
    println!(
        "uncovered inputs: {} (temperature-Medium gap)",
        table1().uncovered().len()
    );
}

fn bench_policy(c: &mut Criterion) {
    print_table_once();
    let rules = table1();
    let all_inputs: Vec<PolicyInputs> = RuleSet::input_space().collect();

    let mut group = c.benchmark_group("policy");
    group.throughput(Throughput::Elements(all_inputs.len() as u64));
    group.bench_function("crisp_full_input_space", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in &all_inputs {
                acc += rules.select(*i).state.index();
            }
            std::hint::black_box(acc)
        });
    });
    group.finish();

    let direct = PolicyInputs {
        priority: Priority::High,
        battery: BatteryClass::Medium,
        temperature: ThermalClass::Low,
        source: PowerSource::Battery,
    };
    let fallback = PolicyInputs {
        temperature: ThermalClass::Medium,
        battery: BatteryClass::Full,
        ..direct
    };
    c.bench_function("policy/crisp_direct_hit", |b| {
        b.iter(|| std::hint::black_box(rules.select(std::hint::black_box(direct))));
    });
    c.bench_function("policy/crisp_fallback_path", |b| {
        b.iter(|| std::hint::black_box(rules.select(std::hint::black_box(fallback))));
    });

    let fuzzy = FuzzyPolicy::new(table1());
    c.bench_function("policy/fuzzy_select", |b| {
        b.iter(|| {
            std::hint::black_box(fuzzy.select(
                Priority::High,
                std::hint::black_box(0.27),
                Celsius::new(55.0),
                PowerSource::Battery,
            ))
        });
    });

    c.bench_function("policy/parse_table1_dsl", |b| {
        b.iter(|| std::hint::black_box(parse_rules(std::hint::black_box(TABLE1_TEXT)).unwrap()));
    });
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
