//! Campaign engine throughput: scenarios/second, parallel vs serial.
//!
//! Prints a startup summary measuring the full sweep serially and on all
//! available cores, including the speedup and a determinism check
//! (byte-identical aggregate JSON). On hosts with ≥ 4 cores the parallel
//! sweep must beat serial by > 1.5×; on smaller hosts the ratio is
//! reported but not enforced (a 1-core container cannot exhibit
//! parallel speedup).
//!
//! ```sh
//! cargo bench -p dpm-bench campaign_throughput
//! ```

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpm_campaign::{
    campaign_json, run_campaign, summarize, CampaignSpec, ControllerAxis, RunnerConfig, TuningAxis,
    WorkloadAxis,
};

/// A meaty enough grid that thread-pool overhead is amortized:
/// 2 controllers × 2 workloads × 2 seeds × 2 thermals × 3 IP counts
/// = 48 scenarios, each a DPM + baseline double run.
fn bench_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::default_sweep();
    spec.name = "campaign_throughput".into();
    spec.horizon_ms = 30;
    spec.controllers = vec![ControllerAxis::Dpm, ControllerAxis::Oracle];
    spec.tunings = vec![TuningAxis::Paper];
    spec.workloads = vec![WorkloadAxis::Low, WorkloadAxis::High];
    spec.seeds = vec![1, 2];
    spec.ip_counts = vec![1, 2, 4];
    spec
}

fn archive(spec: &CampaignSpec, threads: usize) -> String {
    let result = run_campaign(
        spec,
        &RunnerConfig {
            threads,
            progress: false,
        },
    );
    let summary = summarize(&result);
    campaign_json(&summary, Some(&result)).expect("render json")
}

fn timed_sweep(spec: &CampaignSpec, threads: usize) -> f64 {
    let start = Instant::now();
    let result = run_campaign(
        spec,
        &RunnerConfig {
            threads,
            progress: false,
        },
    );
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(result.results.len(), spec.scenario_count());
    result.results.len() as f64 / wall
}

fn print_summary() {
    let spec = bench_spec();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n== campaign throughput: {} scenarios, horizon {} ms, {cores} core(s) ==",
        spec.scenario_count(),
        spec.horizon_ms
    );

    // warm-up (page in, warm branch predictors and allocator)
    let _ = timed_sweep(&spec, 1);

    let serial: f64 = (0..3).map(|_| timed_sweep(&spec, 1)).fold(0.0, f64::max);
    let parallel: f64 = (0..3).map(|_| timed_sweep(&spec, 0)).fold(0.0, f64::max);
    let speedup = parallel / serial;
    println!("  serial   : {serial:>8.1} scenarios/s");
    println!("  parallel : {parallel:>8.1} scenarios/s ({cores} threads)");
    println!("  speedup  : {speedup:>8.2}x");

    // determinism: the aggregate archive must be byte-identical
    let a = archive(&spec, 1);
    let b = archive(&spec, cores.max(4));
    assert_eq!(a, b, "thread count changed the aggregated output");
    println!("  determinism: serial and parallel archives are byte-identical");

    if cores >= 4 {
        assert!(
            speedup > 1.5,
            "parallel sweep must beat serial by >1.5x on {cores} cores, got {speedup:.2}x"
        );
    } else {
        println!("  (speedup not enforced on {cores} core(s); needs >= 4)");
    }
}

fn bench_campaign(c: &mut Criterion) {
    print_summary();
    let spec = bench_spec();
    let scenarios = spec.scenario_count() as u64;

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(scenarios));
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(timed_sweep(&spec, 1)));
    });
    group.bench_function("parallel", |b| {
        b.iter(|| std::hint::black_box(timed_sweep(&spec, 0)));
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
