//! Campaign engine throughput: scenarios/second, parallel vs serial,
//! and baseline dedup vs redundant baselines.
//!
//! Prints a startup summary measuring the full sweep serially and on all
//! available cores, including the speedup and a determinism check
//! (byte-identical aggregate JSON). On hosts with ≥ 4 cores the parallel
//! sweep must beat serial by > 1.5×; on smaller hosts the ratio is
//! reported but not enforced (a 1-core container cannot exhibit
//! parallel speedup).
//!
//! Baseline dedup is different: it removes *work* (cells differing only
//! in controller/tuning share one always-ON1 baseline run), so its
//! ≥ 1.5× throughput gain on a policy-heavy grid is enforced on any
//! host, single-core included.
//!
//! A third summary drives the segment archive at 10^5 synthetic cells:
//! append throughput, the enforced < 1 s bound on a cold open plus a
//! full `cell_states` scan, and byte-equivalence of the compacted
//! segment layout with the legacy per-cell-JSON layout.
//!
//! ```sh
//! cargo bench -p dpm-bench campaign_throughput
//! ```

use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpm_campaign::{
    campaign_json, run_campaign, run_campaign_with, summarize, CampaignArchive, CampaignResult,
    CampaignSpec, CellState, ControllerAxis, RunnerConfig, ScenarioMetrics, ScenarioResult,
    TuningAxis, WorkloadAxis, DEFAULT_LEASE_TTL_MS,
};

/// A meaty enough grid that thread-pool overhead is amortized:
/// 2 controllers × 2 workloads × 2 seeds × 2 thermals × 3 IP counts
/// = 48 scenarios, each a DPM + baseline double run.
fn bench_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::default_sweep();
    spec.name = "campaign_throughput".into();
    spec.horizon_ms = 30;
    spec.controllers = vec![ControllerAxis::Dpm, ControllerAxis::Oracle];
    spec.tunings = vec![TuningAxis::Paper];
    spec.workloads = vec![WorkloadAxis::Low, WorkloadAxis::High];
    spec.seeds = vec![1, 2];
    spec.ip_counts = vec![1, 2, 4];
    spec
}

/// A controller×tuning-heavy grid: 5 controllers × 3 tunings × 2 seeds
/// = 30 cells in 2 baseline groups of 15. Without dedup that is 60
/// simulations; with dedup each group runs 1 shared baseline + 12
/// scenario sims (its 3 always-ON1 cells reuse the baseline) — 26 total,
/// a 2.3× work reduction.
fn policy_heavy_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::default_sweep();
    spec.name = "policy_heavy".into();
    spec.horizon_ms = 30;
    spec.controllers = ControllerAxis::ALL.to_vec();
    spec.tunings = vec![
        TuningAxis::Paper,
        TuningAxis::Eager,
        TuningAxis::EnergyOptimal,
    ];
    spec.workloads = vec![WorkloadAxis::Low];
    spec.seeds = vec![1, 2];
    spec.thermals.truncate(1);
    spec.ip_counts = vec![1];
    spec
}

fn config(threads: usize, dedup: bool) -> RunnerConfig {
    RunnerConfig {
        threads,
        progress: false,
        dedup_baselines: dedup,
        ..RunnerConfig::default()
    }
}

fn archive(spec: &CampaignSpec, threads: usize) -> String {
    let result = run_campaign(spec, &config(threads, true));
    let summary = summarize(&result);
    campaign_json(&summary, Some(&result)).expect("render json")
}

fn timed_sweep(spec: &CampaignSpec, threads: usize) -> f64 {
    let start = Instant::now();
    let result = run_campaign(spec, &config(threads, true));
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(result.results.len(), spec.scenario_count());
    result.results.len() as f64 / wall
}

/// Serial on purpose: a parallel measurement would mix the work
/// reduction with thread-packing effects (phase A is a barrier), letting
/// high-core hosts compress the observed gain below the enforced bound
/// even though the removed work is host-independent.
fn timed_dedup(spec: &CampaignSpec, dedup: bool) -> f64 {
    let start = Instant::now();
    let run = run_campaign_with(spec, &config(1, dedup), None).expect("valid spec");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(run.result.results.len(), spec.scenario_count());
    run.result.results.len() as f64 / wall
}

fn print_summary() {
    let spec = bench_spec();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n== campaign throughput: {} scenarios, horizon {} ms, {cores} core(s) ==",
        spec.scenario_count(),
        spec.horizon_ms
    );

    // warm-up (page in, warm branch predictors and allocator)
    let _ = timed_sweep(&spec, 1);

    let serial: f64 = (0..3).map(|_| timed_sweep(&spec, 1)).fold(0.0, f64::max);
    let parallel: f64 = (0..3).map(|_| timed_sweep(&spec, 0)).fold(0.0, f64::max);
    let speedup = parallel / serial;
    println!("  serial   : {serial:>8.1} scenarios/s");
    println!("  parallel : {parallel:>8.1} scenarios/s ({cores} threads)");
    println!("  speedup  : {speedup:>8.2}x");

    // determinism: the aggregate archive must be byte-identical
    let a = archive(&spec, 1);
    let b = archive(&spec, cores.max(4));
    assert_eq!(a, b, "thread count changed the aggregated output");
    println!("  determinism: serial and parallel archives are byte-identical");

    if cores >= 4 {
        assert!(
            speedup > 1.5,
            "parallel sweep must beat serial by >1.5x on {cores} cores, got {speedup:.2}x"
        );
    } else {
        println!("  (speedup not enforced on {cores} core(s); needs >= 4)");
    }

    print_dedup_summary();
}

/// Baseline dedup on a controller×tuning-heavy grid: less work, same
/// bytes. Measured serially and enforced on any host, since the gain is
/// work removal rather than parallelism.
fn print_dedup_summary() {
    let spec = policy_heavy_spec();
    println!(
        "\n== baseline dedup: {} cells (controller x tuning heavy) ==",
        spec.scenario_count()
    );

    let with = run_campaign_with(&spec, &config(0, true), None).expect("valid spec");
    let without = run_campaign_with(&spec, &config(0, false), None).expect("valid spec");
    assert_eq!(with.result, without.result, "dedup must not change results");
    println!(
        "  simulations: {} deduped vs {} redundant ({} shared baselines, {} always-on reuses)",
        with.stats.simulations,
        without.stats.simulations,
        with.stats.baseline_groups,
        with.stats.reused_baselines,
    );

    // the noise-free guarantee: dedup must remove >= 1.5x of the work
    // (simulation counts are deterministic, unlike wall-clock)
    let sim_ratio = without.stats.simulations as f64 / with.stats.simulations as f64;
    assert!(
        sim_ratio >= 1.5,
        "baseline dedup must remove >=1.5x of the simulations, got {sim_ratio:.2}x"
    );

    let _ = timed_dedup(&spec, false); // warm-up
    let dedup_on: f64 = (0..5).map(|_| timed_dedup(&spec, true)).fold(0.0, f64::max);
    let dedup_off: f64 = (0..5)
        .map(|_| timed_dedup(&spec, false))
        .fold(0.0, f64::max);
    let gain = dedup_on / dedup_off;
    println!("  redundant : {dedup_off:>8.1} scenarios/s");
    println!("  deduped   : {dedup_on:>8.1} scenarios/s");
    println!("  gain      : {gain:>8.2}x ({sim_ratio:.2}x fewer simulations)");
    assert!(
        gain > 1.5,
        "baseline dedup must deliver >1.5x throughput on a policy-heavy grid, got {gain:.2}x \
         ({} vs {} simulations)",
        with.stats.simulations,
        without.stats.simulations
    );
}

/// A seeds-only grid of `cells` cells: the archive layer is exercised at
/// scale without paying for `cells` simulations.
fn wide_spec(name: &str, cells: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::default_sweep();
    spec.name = name.into();
    spec.horizon_ms = 5;
    spec.controllers = vec![ControllerAxis::Dpm];
    spec.tunings = vec![TuningAxis::Paper];
    spec.workloads = vec![WorkloadAxis::Low];
    spec.seeds = (1..=cells as u64).collect();
    spec.thermals.truncate(1);
    spec.ip_counts = vec![1];
    spec
}

/// Deterministic synthetic metrics for grid cell `i` — the archive does
/// not care whether a simulator produced them.
fn synthetic_result(spec: &CampaignSpec, i: usize) -> ScenarioResult {
    let f = i as f64;
    ScenarioResult {
        scenario: spec.cell_at(i),
        metrics: Some(ScenarioMetrics {
            completed: i,
            total_tasks: i + 7,
            deferred: i % 3,
            energy_j: f * 0.125,
            baseline_energy_j: f * 0.25,
            energy_saving_pct: 50.0 - (f % 17.0),
            temp_reduction_pct: f % 9.0,
            delay_overhead_pct: f % 5.0,
            mean_latency_us: 100.0 + f,
            max_temp_c: 40.0 + (f % 20.0),
            final_soc: 1.0 / (1.0 + f * 1e-6),
            low_power_frac: (f % 100.0) / 100.0,
        }),
        error: None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("archive-scale-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn result_bytes(spec: &CampaignSpec, results: Vec<ScenarioResult>) -> String {
    let result = CampaignResult {
        name: spec.name.clone(),
        horizon_ms: spec.horizon_ms,
        master_seed: spec.master_seed,
        results,
    };
    campaign_json(&summarize(&result), Some(&result)).expect("render json")
}

/// The segment store at 10^5 cells: append throughput, then the bound
/// that motivated it — a cold open plus a full `cell_states` scan of
/// 100 000 records must finish in **under a second** (the per-cell-JSON
/// layout paid ~3 syscalls per cell here and took tens of seconds on
/// cold caches).
fn print_archive_scale_summary() {
    const CELLS: usize = 100_000;
    let spec = wide_spec("archive_scale", CELLS);
    let dir = scratch_dir("wide");
    println!("\n== segment archive at {CELLS} cells ==");

    let start = Instant::now();
    {
        let archive = CampaignArchive::open(&dir, &spec).expect("open archive");
        for i in 0..CELLS {
            archive
                .store(&spec, &synthetic_result(&spec, i))
                .expect("store cell");
        }
    }
    let wall = start.elapsed().as_secs_f64();
    println!(
        "  append  : {:>8.0} records/s ({wall:.2}s total)",
        CELLS as f64 / wall
    );

    let start = Instant::now();
    let archive = CampaignArchive::open(&dir, &spec).expect("reopen archive");
    let states = archive.cell_states(&spec, DEFAULT_LEASE_TTL_MS);
    let scan = start.elapsed().as_secs_f64();
    assert_eq!(states.len(), CELLS);
    assert!(
        states.iter().all(|s| matches!(s, CellState::Archived)),
        "every stored cell must scan as archived"
    );
    println!("  open + full cell_states scan: {scan:.3}s");
    assert!(
        scan < 1.0,
        "opening and scanning a {CELLS}-cell archive took {scan:.2}s (bound: 1s)"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // byte-equivalence with the legacy per-file layout, at a size where
    // writing thousands of individual JSON files is still tolerable
    const LEGACY_CELLS: usize = 2_000;
    let spec = wide_spec("archive_compat", LEGACY_CELLS);
    let dir = scratch_dir("legacy");
    let archive = CampaignArchive::open(&dir, &spec).expect("open archive");
    for i in 0..LEGACY_CELLS {
        archive
            .store_legacy(&spec, &synthetic_result(&spec, i))
            .expect("store legacy cell");
    }
    let cells = spec.expand();
    let legacy = archive.load(&spec, &cells);
    assert_eq!(legacy.loaded, LEGACY_CELLS);
    let reference = result_bytes(&spec, legacy.slots.into_iter().flatten().collect());
    let report = archive.compact(&spec).expect("compact");
    assert_eq!(report.legacy_migrated, LEGACY_CELLS);
    let compacted = CampaignArchive::open(&dir, &spec).expect("reopen compacted");
    let load = compacted.load(&spec, &cells);
    assert_eq!(load.loaded, LEGACY_CELLS);
    let bytes = result_bytes(&spec, load.slots.into_iter().flatten().collect());
    assert_eq!(
        bytes, reference,
        "compaction changed the aggregate bytes vs the per-file-JSON layout"
    );
    println!("  compaction: {LEGACY_CELLS} per-file-JSON cells migrated, aggregate byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_campaign(c: &mut Criterion) {
    print_summary();
    print_archive_scale_summary();
    let spec = bench_spec();
    let scenarios = spec.scenario_count() as u64;

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(scenarios));
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(timed_sweep(&spec, 1)));
    });
    group.bench_function("parallel", |b| {
        b.iter(|| std::hint::black_box(timed_sweep(&spec, 0)));
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
