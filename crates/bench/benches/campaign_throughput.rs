//! Campaign engine throughput: scenarios/second, parallel vs serial,
//! and baseline dedup vs redundant baselines.
//!
//! Prints a startup summary measuring the full sweep serially and on all
//! available cores, including the speedup and a determinism check
//! (byte-identical aggregate JSON). On hosts with ≥ 4 cores the parallel
//! sweep must beat serial by > 1.5×; on smaller hosts the ratio is
//! reported but not enforced (a 1-core container cannot exhibit
//! parallel speedup).
//!
//! Baseline dedup is different: it removes *work* (cells differing only
//! in controller/tuning share one always-ON1 baseline run), so its
//! ≥ 1.5× throughput gain on a policy-heavy grid is enforced on any
//! host, single-core included.
//!
//! ```sh
//! cargo bench -p dpm-bench campaign_throughput
//! ```

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpm_campaign::{
    campaign_json, run_campaign, run_campaign_with, summarize, CampaignSpec, ControllerAxis,
    RunnerConfig, TuningAxis, WorkloadAxis,
};

/// A meaty enough grid that thread-pool overhead is amortized:
/// 2 controllers × 2 workloads × 2 seeds × 2 thermals × 3 IP counts
/// = 48 scenarios, each a DPM + baseline double run.
fn bench_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::default_sweep();
    spec.name = "campaign_throughput".into();
    spec.horizon_ms = 30;
    spec.controllers = vec![ControllerAxis::Dpm, ControllerAxis::Oracle];
    spec.tunings = vec![TuningAxis::Paper];
    spec.workloads = vec![WorkloadAxis::Low, WorkloadAxis::High];
    spec.seeds = vec![1, 2];
    spec.ip_counts = vec![1, 2, 4];
    spec
}

/// A controller×tuning-heavy grid: 5 controllers × 3 tunings × 2 seeds
/// = 30 cells in 2 baseline groups of 15. Without dedup that is 60
/// simulations; with dedup each group runs 1 shared baseline + 12
/// scenario sims (its 3 always-ON1 cells reuse the baseline) — 26 total,
/// a 2.3× work reduction.
fn policy_heavy_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::default_sweep();
    spec.name = "policy_heavy".into();
    spec.horizon_ms = 30;
    spec.controllers = ControllerAxis::ALL.to_vec();
    spec.tunings = vec![
        TuningAxis::Paper,
        TuningAxis::Eager,
        TuningAxis::EnergyOptimal,
    ];
    spec.workloads = vec![WorkloadAxis::Low];
    spec.seeds = vec![1, 2];
    spec.thermals.truncate(1);
    spec.ip_counts = vec![1];
    spec
}

fn config(threads: usize, dedup: bool) -> RunnerConfig {
    RunnerConfig {
        threads,
        progress: false,
        dedup_baselines: dedup,
        ..RunnerConfig::default()
    }
}

fn archive(spec: &CampaignSpec, threads: usize) -> String {
    let result = run_campaign(spec, &config(threads, true));
    let summary = summarize(&result);
    campaign_json(&summary, Some(&result)).expect("render json")
}

fn timed_sweep(spec: &CampaignSpec, threads: usize) -> f64 {
    let start = Instant::now();
    let result = run_campaign(spec, &config(threads, true));
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(result.results.len(), spec.scenario_count());
    result.results.len() as f64 / wall
}

/// Serial on purpose: a parallel measurement would mix the work
/// reduction with thread-packing effects (phase A is a barrier), letting
/// high-core hosts compress the observed gain below the enforced bound
/// even though the removed work is host-independent.
fn timed_dedup(spec: &CampaignSpec, dedup: bool) -> f64 {
    let start = Instant::now();
    let run = run_campaign_with(spec, &config(1, dedup), None).expect("valid spec");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(run.result.results.len(), spec.scenario_count());
    run.result.results.len() as f64 / wall
}

fn print_summary() {
    let spec = bench_spec();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n== campaign throughput: {} scenarios, horizon {} ms, {cores} core(s) ==",
        spec.scenario_count(),
        spec.horizon_ms
    );

    // warm-up (page in, warm branch predictors and allocator)
    let _ = timed_sweep(&spec, 1);

    let serial: f64 = (0..3).map(|_| timed_sweep(&spec, 1)).fold(0.0, f64::max);
    let parallel: f64 = (0..3).map(|_| timed_sweep(&spec, 0)).fold(0.0, f64::max);
    let speedup = parallel / serial;
    println!("  serial   : {serial:>8.1} scenarios/s");
    println!("  parallel : {parallel:>8.1} scenarios/s ({cores} threads)");
    println!("  speedup  : {speedup:>8.2}x");

    // determinism: the aggregate archive must be byte-identical
    let a = archive(&spec, 1);
    let b = archive(&spec, cores.max(4));
    assert_eq!(a, b, "thread count changed the aggregated output");
    println!("  determinism: serial and parallel archives are byte-identical");

    if cores >= 4 {
        assert!(
            speedup > 1.5,
            "parallel sweep must beat serial by >1.5x on {cores} cores, got {speedup:.2}x"
        );
    } else {
        println!("  (speedup not enforced on {cores} core(s); needs >= 4)");
    }

    print_dedup_summary();
}

/// Baseline dedup on a controller×tuning-heavy grid: less work, same
/// bytes. Measured serially and enforced on any host, since the gain is
/// work removal rather than parallelism.
fn print_dedup_summary() {
    let spec = policy_heavy_spec();
    println!(
        "\n== baseline dedup: {} cells (controller x tuning heavy) ==",
        spec.scenario_count()
    );

    let with = run_campaign_with(&spec, &config(0, true), None).expect("valid spec");
    let without = run_campaign_with(&spec, &config(0, false), None).expect("valid spec");
    assert_eq!(with.result, without.result, "dedup must not change results");
    println!(
        "  simulations: {} deduped vs {} redundant ({} shared baselines, {} always-on reuses)",
        with.stats.simulations,
        without.stats.simulations,
        with.stats.baseline_groups,
        with.stats.reused_baselines,
    );

    // the noise-free guarantee: dedup must remove >= 1.5x of the work
    // (simulation counts are deterministic, unlike wall-clock)
    let sim_ratio = without.stats.simulations as f64 / with.stats.simulations as f64;
    assert!(
        sim_ratio >= 1.5,
        "baseline dedup must remove >=1.5x of the simulations, got {sim_ratio:.2}x"
    );

    let _ = timed_dedup(&spec, false); // warm-up
    let dedup_on: f64 = (0..5).map(|_| timed_dedup(&spec, true)).fold(0.0, f64::max);
    let dedup_off: f64 = (0..5)
        .map(|_| timed_dedup(&spec, false))
        .fold(0.0, f64::max);
    let gain = dedup_on / dedup_off;
    println!("  redundant : {dedup_off:>8.1} scenarios/s");
    println!("  deduped   : {dedup_on:>8.1} scenarios/s");
    println!("  gain      : {gain:>8.2}x ({sim_ratio:.2}x fewer simulations)");
    assert!(
        gain > 1.5,
        "baseline dedup must deliver >1.5x throughput on a policy-heavy grid, got {gain:.2}x \
         ({} vs {} simulations)",
        with.stats.simulations,
        without.stats.simulations
    );
}

fn bench_campaign(c: &mut Criterion) {
    print_summary();
    let spec = bench_spec();
    let scenarios = spec.scenario_count() as u64;

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(scenarios));
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(timed_sweep(&spec, 1)));
    });
    group.bench_function("parallel", |b| {
        b.iter(|| std::hint::black_box(timed_sweep(&spec, 0)));
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
