//! Microbenchmarks of the discrete-event kernel: timed-event throughput,
//! signal update cost, fifo transfer rate and the raw clock tick rate
//! behind the `simspeed` figures.
//!
//! ```sh
//! cargo bench -p dpm-bench --bench kernel_micro
//! ```
//!
//! **Allocation note.** `Sched::dispatch_deltas` used to drop its batch
//! vector every delta cycle, so each notified-event batch re-allocated
//! on the heap — one malloc/free per kernel step, right on the hot
//! loop. It now recycles the buffer the way `commit_updates` always
//! did (swap out, drain, swap back cleared). Measured on these benches
//! (same host, back to back): timed dispatch 4.81 → 3.44 ms/100k
//! (-28 %), signal propagation 7.71 → 6.16 ms (-20 %), fifo transfer
//! 10.72 → 7.25 ms (-32 %), bare clock 15.09 → 10.23 ms (-32 %). A
//! regression that re-introduces per-event allocation shows up here
//! first.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpm_kernel::{Clock, Ctx, EventId, Fifo, Process, Signal, Simulation};
use dpm_units::{SimDuration, SimTime};

/// Self-rescheduling no-op process: measures event scheduling + dispatch.
struct Ticker {
    tick: EventId,
    period: SimDuration,
    count: u64,
}

impl Process for Ticker {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        ctx.notify(self.tick, self.period);
    }
    fn react(&mut self, ctx: &mut Ctx<'_>) {
        self.count += 1;
        ctx.notify(self.tick, self.period);
    }
}

fn bench_timed_events(c: &mut Criterion) {
    const EVENTS: u64 = 100_000;
    let mut group = c.benchmark_group("kernel");
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("timed_event_dispatch_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let tick = sim.event("tick");
            let pid = sim.add_process(
                "ticker",
                Ticker {
                    tick,
                    period: SimDuration::from_nanos(10),
                    count: 0,
                },
            );
            sim.sensitize(pid, tick);
            sim.run_until(SimTime::from_nanos(10 * EVENTS));
            std::hint::black_box(sim.stats().events_fired)
        });
    });
    group.finish();
}

/// Writer toggling a signal; reader sensitive to it: measures the full
/// evaluate/update/delta path per value change.
struct Toggler {
    out: Signal<bool>,
    tick: EventId,
    level: bool,
}

impl Process for Toggler {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        ctx.notify(self.tick, SimDuration::from_nanos(10));
    }
    fn react(&mut self, ctx: &mut Ctx<'_>) {
        self.level = !self.level;
        ctx.write(self.out, self.level);
        ctx.notify(self.tick, SimDuration::from_nanos(10));
    }
}

struct CountReader {
    input: Signal<bool>,
    seen: u64,
}

impl Process for CountReader {
    fn react(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.read(self.input) {
            self.seen += 1;
        }
    }
}

fn bench_signal_path(c: &mut Criterion) {
    const CHANGES: u64 = 100_000;
    let mut group = c.benchmark_group("kernel");
    group.throughput(Throughput::Elements(CHANGES));
    group.bench_function("signal_change_propagation_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let sig = sim.signal("s", false);
            let tick = sim.event("tick");
            let w = sim.add_process(
                "toggler",
                Toggler {
                    out: sig,
                    tick,
                    level: false,
                },
            );
            sim.sensitize(w, tick);
            let r = sim.add_process(
                "reader",
                CountReader {
                    input: sig,
                    seen: 0,
                },
            );
            sim.sensitize_signal(r, sig);
            sim.run_until(SimTime::from_nanos(10 * CHANGES));
            std::hint::black_box(sim.with_process::<CountReader, _>(r, |p| p.seen))
        });
    });
    group.finish();
}

struct FifoWriter {
    out: Fifo<u64>,
    tick: EventId,
    n: u64,
}

impl Process for FifoWriter {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        ctx.notify(self.tick, SimDuration::from_nanos(10));
    }
    fn react(&mut self, ctx: &mut Ctx<'_>) {
        self.n += 1;
        let _ = ctx.fifo_push(self.out, self.n);
        ctx.notify(self.tick, SimDuration::from_nanos(10));
    }
}

struct FifoReader {
    input: Fifo<u64>,
    sum: u64,
}

impl Process for FifoReader {
    fn react(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(v) = ctx.fifo_pop(self.input) {
            self.sum = self.sum.wrapping_add(v);
        }
    }
}

fn bench_fifo_transfer(c: &mut Criterion) {
    const ITEMS: u64 = 100_000;
    let mut group = c.benchmark_group("kernel");
    group.throughput(Throughput::Elements(ITEMS));
    group.bench_function("fifo_transfer_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let chan = sim.fifo::<u64>("chan", 64);
            let tick = sim.event("tick");
            let w = sim.add_process(
                "writer",
                FifoWriter {
                    out: chan,
                    tick,
                    n: 0,
                },
            );
            sim.sensitize(w, tick);
            let r = sim.add_process(
                "reader",
                FifoReader {
                    input: chan,
                    sum: 0,
                },
            );
            sim.sensitize(r, chan.written_event());
            sim.run_until(SimTime::from_nanos(10 * ITEMS));
            std::hint::black_box(sim.with_process::<FifoReader, _>(r, |p| p.sum))
        });
    });
    group.finish();
}

fn bench_clock(c: &mut Criterion) {
    const CYCLES: u64 = 100_000;
    let mut group = c.benchmark_group("kernel");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("bare_clock_100k_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let clk = Clock::spawn(&mut sim, "clk", SimDuration::from_nanos(5));
            sim.run_until(SimTime::from_nanos(5 * CYCLES));
            std::hint::black_box(sim.with_process::<Clock, _>(clk.pid, |c| c.cycles()))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_timed_events,
    bench_signal_path,
    bench_fifo_transfer,
    bench_clock
);
criterion_main!(benches);
