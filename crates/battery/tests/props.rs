//! Property-based tests of the battery models and classifier.

use dpm_battery::{
    Battery, BatteryClass, BatteryClassifier, KibamBattery, LinearBattery, RateCapacityBattery,
};
use dpm_units::{Energy, Power, Ratio, SimDuration};
use proptest::prelude::*;

fn drain_plan() -> impl Strategy<Value = Vec<(f64, u64)>> {
    // (watts, milliseconds) slices
    prop::collection::vec((0.0..50.0f64, 1u64..5_000), 1..40)
}

fn apply<B: Battery>(b: &mut B, plan: &[(f64, u64)]) {
    for (w, ms) in plan {
        b.drain(Power::from_watts(*w), SimDuration::from_millis(*ms));
    }
}

proptest! {
    #[test]
    fn linear_soc_is_monotone_nonincreasing(plan in drain_plan()) {
        let mut b = LinearBattery::new(Energy::from_joules(500.0));
        let mut last = b.soc().value();
        for (w, ms) in &plan {
            b.drain(Power::from_watts(*w), SimDuration::from_millis(*ms));
            let soc = b.soc().value();
            prop_assert!(soc <= last + 1e-12);
            prop_assert!((0.0..=1.0).contains(&soc));
            last = soc;
        }
    }

    #[test]
    fn linear_drain_matches_integral(plan in drain_plan()) {
        let mut b = LinearBattery::new(Energy::from_joules(1e9)); // never empties
        apply(&mut b, &plan);
        let drawn: f64 = plan.iter().map(|(w, ms)| w * (*ms as f64) / 1e3).sum();
        let gone = 1e9 - b.remaining().as_joules();
        prop_assert!((gone - drawn).abs() <= 1e-6 * drawn.max(1.0));
    }

    #[test]
    fn rate_capacity_never_beats_linear(plan in drain_plan()) {
        let cap = Energy::from_joules(1e9);
        let mut ideal = LinearBattery::new(cap);
        let mut lossy = RateCapacityBattery::new(cap, Power::from_watts(1.0), 1.25);
        apply(&mut ideal, &plan);
        apply(&mut lossy, &plan);
        prop_assert!(lossy.remaining() <= ideal.remaining() + Energy::from_joules(1e-9));
    }

    #[test]
    fn kibam_conserves_charge_under_load(plan in drain_plan()) {
        let cap = Energy::from_joules(1e9);
        let mut b = KibamBattery::typical(cap);
        apply(&mut b, &plan);
        let drawn: f64 = plan.iter().map(|(w, ms)| w * (*ms as f64) / 1e3).sum();
        let gone = 1e9 - b.remaining().as_joules();
        // while the available well never empties, charge is conserved
        if !b.is_exhausted() {
            prop_assert!((gone - drawn).abs() <= 1e-4 * drawn.max(1.0), "gone={gone} drawn={drawn}");
        }
        prop_assert!(b.remaining() <= cap);
    }

    #[test]
    fn kibam_rest_recovery_never_creates_energy(
        burst_w in 5.0..50.0f64,
        burst_s in 1u64..10,
        rest_s in 1u64..600,
    ) {
        let cap = Energy::from_joules(1000.0);
        let mut b = KibamBattery::typical(cap);
        b.drain(Power::from_watts(burst_w), SimDuration::from_secs(burst_s));
        let total_after_burst = b.remaining();
        b.drain(Power::ZERO, SimDuration::from_secs(rest_s));
        // recovery shifts charge between wells; the total must not grow
        prop_assert!(b.remaining() <= total_after_burst + Energy::from_joules(1e-9));
    }

    #[test]
    fn classifier_is_stable_under_repeats(socs in prop::collection::vec(0.0..1.0f64, 1..100)) {
        let mut c = BatteryClassifier::with_defaults();
        for soc in socs {
            let first = c.classify(Ratio::new(soc));
            // re-presenting the same soc never changes the class
            let second = c.classify(Ratio::new(soc));
            prop_assert_eq!(first, second);
        }
    }

    #[test]
    fn classifier_tracks_large_moves(a in 0.0..1.0f64, b in 0.0..1.0f64) {
        // Any two SoCs more than 2×hysteresis apart in different raw bands
        // must yield different classes when presented in sequence.
        let mut c1 = BatteryClassifier::with_defaults();
        let mut c2 = BatteryClassifier::with_defaults();
        let ca = c1.classify(Ratio::new(a));
        let cb = c2.classify(Ratio::new(b));
        if ca != cb {
            // moving from a to b through the stateful classifier must not
            // get stuck more than one class away from the raw answer
            let mut c = BatteryClassifier::with_defaults();
            let _ = c.classify(Ratio::new(a));
            let moved = c.classify(Ratio::new(b));
            let diff = (moved.index() as i32 - cb.index() as i32).abs();
            prop_assert!(diff <= 1, "stateful={moved}, raw={cb}");
        }
    }

    #[test]
    fn exhausted_batteries_stay_exhausted(plan in drain_plan()) {
        let mut b = LinearBattery::new(Energy::from_joules(1.0));
        b.drain(Power::from_watts(10.0), SimDuration::from_secs(1));
        prop_assert!(b.is_exhausted());
        apply(&mut b, &plan);
        prop_assert!(b.is_exhausted());
        prop_assert_eq!(b.soc(), Ratio::ZERO);
        prop_assert_eq!(b.remaining(), Energy::ZERO);
    }
}

#[test]
fn class_all_is_sorted_ascending() {
    let mut sorted = BatteryClass::ALL.to_vec();
    sorted.sort();
    assert_eq!(sorted.as_slice(), BatteryClass::ALL.as_slice());
}
