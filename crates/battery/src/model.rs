//! Battery discharge models.
//!
//! Three fidelity levels, all tracked in energy terms:
//!
//! * [`LinearBattery`] — an ideal energy tank (what the paper's
//!   experiments need: the classes move with integrated consumption).
//! * [`RateCapacityBattery`] — high drain rates waste capacity
//!   (Peukert-style exponent), so bursty max-power execution empties the
//!   battery faster than the same energy drawn smoothly.
//! * [`KibamBattery`] — the kinetic battery model: an *available* and a
//!   *bound* charge well; idle periods let charge seep back into the
//!   available well (recovery effect). This rewards DPM policies that
//!   interleave sleep periods — an extension over the paper.

use core::fmt;

use dpm_units::{Energy, Power, Ratio, SimDuration, Voltage};

/// A dischargeable battery tracked in energy terms.
///
/// Implementations must be deterministic and side-effect free outside
/// their own state: the [`BatteryMonitor`](crate::BatteryMonitor) calls
/// [`drain`](Battery::drain) with piecewise-constant power slices.
pub trait Battery: fmt::Debug + 'static {
    /// Rated capacity.
    fn capacity(&self) -> Energy;

    /// Energy still extractable right now.
    fn remaining(&self) -> Energy;

    /// Discharges at `power` for `dt`.
    fn drain(&mut self, power: Power, dt: SimDuration);

    /// State of charge in `[0, 1]`.
    fn soc(&self) -> Ratio {
        Ratio::new(self.remaining() / self.capacity()).clamp_unit()
    }

    /// `true` once no energy can be delivered anymore.
    fn is_exhausted(&self) -> bool {
        self.remaining() <= Energy::ZERO
    }

    /// Terminal voltage (simple affine droop with state of charge).
    fn terminal_voltage(&self) -> Voltage {
        let (v_full, v_empty) = (Voltage::from_volts(4.2), Voltage::from_volts(3.0));
        v_empty + (v_full - v_empty) * self.soc().value()
    }
}

/// Ideal battery: every joule drawn is a joule gone, no rate effects.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearBattery {
    capacity: Energy,
    remaining: Energy,
}

impl LinearBattery {
    /// A full battery of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive capacity.
    pub fn new(capacity: Energy) -> Self {
        assert!(
            capacity.as_joules() > 0.0,
            "battery capacity must be positive"
        );
        Self {
            capacity,
            remaining: capacity,
        }
    }

    /// A battery starting at `soc` (clamped to `[0, 1]`).
    pub fn with_soc(capacity: Energy, soc: Ratio) -> Self {
        let mut b = Self::new(capacity);
        b.remaining = capacity * soc.clamp_unit().value();
        b
    }
}

impl Battery for LinearBattery {
    fn capacity(&self) -> Energy {
        self.capacity
    }

    fn remaining(&self) -> Energy {
        self.remaining
    }

    fn drain(&mut self, power: Power, dt: SimDuration) {
        let e = power * dt;
        self.remaining = (self.remaining - e).max(Energy::ZERO);
    }
}

/// Rate-capacity battery: drawing above the nominal rate wastes energy
/// with a Peukert-style exponent.
///
/// Effective drain is `P·dt · (P/P_ref)^(k−1)` for `P > P_ref` (and the
/// plain `P·dt` below), with `k ≈ 1.1–1.3` for lithium cells.
#[derive(Debug, Clone, PartialEq)]
pub struct RateCapacityBattery {
    inner: LinearBattery,
    p_ref: Power,
    peukert: f64,
}

impl RateCapacityBattery {
    /// A full battery with nominal discharge power `p_ref` and Peukert
    /// exponent `peukert`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity/reference power or `peukert < 1`.
    pub fn new(capacity: Energy, p_ref: Power, peukert: f64) -> Self {
        assert!(
            p_ref.as_watts() > 0.0,
            "reference discharge power must be positive"
        );
        assert!(
            (1.0..2.0).contains(&peukert),
            "peukert exponent must be in [1, 2), got {peukert}"
        );
        Self {
            inner: LinearBattery::new(capacity),
            p_ref,
            peukert,
        }
    }

    /// Starts the battery at `soc`.
    pub fn with_soc(mut self, soc: Ratio) -> Self {
        self.inner = LinearBattery::with_soc(self.inner.capacity, soc);
        self
    }
}

impl Battery for RateCapacityBattery {
    fn capacity(&self) -> Energy {
        self.inner.capacity()
    }

    fn remaining(&self) -> Energy {
        self.inner.remaining()
    }

    fn drain(&mut self, power: Power, dt: SimDuration) {
        let ratio = power / self.p_ref;
        let factor = if ratio > 1.0 {
            ratio.powf(self.peukert - 1.0)
        } else {
            1.0
        };
        self.inner.drain(power * factor, dt);
    }
}

/// Kinetic Battery Model (KiBaM): available + bound wells with rate `k`.
///
/// During discharge the available well empties; during rest, charge flows
/// from the bound well back (recovery). `c` is the available-well capacity
/// fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct KibamBattery {
    capacity: Energy,
    available: Energy,
    bound: Energy,
    /// Available-well fraction of total capacity.
    c: f64,
    /// Well equalization rate (1/s).
    k: f64,
    /// Integration sub-step.
    max_step: SimDuration,
}

impl KibamBattery {
    /// A full KiBaM battery.
    ///
    /// # Panics
    ///
    /// Panics on non-physical parameters (`c ∉ (0,1)`, `k ≤ 0`).
    pub fn new(capacity: Energy, c: f64, k: f64) -> Self {
        assert!(capacity.as_joules() > 0.0, "capacity must be positive");
        assert!((0.0..1.0).contains(&c) && c > 0.0, "c must be in (0, 1)");
        assert!(k > 0.0 && k.is_finite(), "k must be positive");
        Self {
            capacity,
            available: capacity * c,
            bound: capacity * (1.0 - c),
            c,
            k,
            max_step: SimDuration::from_millis(10),
        }
    }

    /// Typical lithium-ion parameters: 40 % available well, equalization
    /// time constant of ~200 s.
    pub fn typical(capacity: Energy) -> Self {
        Self::new(capacity, 0.4, 0.005)
    }

    /// Starts the battery at `soc` (both wells scaled).
    pub fn with_soc(mut self, soc: Ratio) -> Self {
        let s = soc.clamp_unit().value();
        self.available = self.capacity * (self.c * s);
        self.bound = self.capacity * ((1.0 - self.c) * s);
        self
    }

    /// Charge currently in the bound (slow) well.
    pub fn bound_energy(&self) -> Energy {
        self.bound
    }

    fn step(&mut self, power: Power, dt_s: f64) {
        // Well heights; the equalizing flow k·(h2−h1) moves charge wholly
        // from one well to the other (dy1 + dy2 = −I, charge conservation).
        let h1 = self.available.as_joules() / self.c;
        let h2 = self.bound.as_joules() / (1.0 - self.c);
        let flow = self.k * (h2 - h1); // W from bound to available
        let p = power.as_watts();
        let new_avail = self.available.as_joules() - p * dt_s + flow * dt_s;
        let new_bound = self.bound.as_joules() - flow * dt_s;
        self.available = Energy::from_joules(new_avail.max(0.0));
        self.bound = Energy::from_joules(new_bound.clamp(0.0, self.capacity.as_joules()));
    }
}

impl Battery for KibamBattery {
    fn capacity(&self) -> Energy {
        self.capacity
    }

    fn remaining(&self) -> Energy {
        self.available + self.bound
    }

    fn drain(&mut self, power: Power, dt: SimDuration) {
        // Sub-step the ODE for stability on long slices.
        let mut left = dt;
        while !left.is_zero() {
            let step = left.min(self.max_step);
            self.step(power, step.as_secs_f64());
            left -= step;
        }
    }

    /// Exhausted once the *available* well is dry — bound charge cannot be
    /// delivered instantaneously, which is exactly the recovery effect.
    fn is_exhausted(&self) -> bool {
        self.available <= Energy::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_battery_book_keeping() {
        let mut b = LinearBattery::new(Energy::from_joules(10.0));
        b.drain(Power::from_watts(1.0), SimDuration::from_secs(4));
        assert!((b.remaining().as_joules() - 6.0).abs() < 1e-12);
        assert!((b.soc().value() - 0.6).abs() < 1e-12);
        b.drain(Power::from_watts(100.0), SimDuration::from_secs(1));
        assert_eq!(b.remaining(), Energy::ZERO);
        assert!(b.is_exhausted());
    }

    #[test]
    fn with_soc_starts_partial() {
        let b = LinearBattery::with_soc(Energy::from_joules(100.0), Ratio::new(0.3));
        assert!((b.soc().value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rate_capacity_punishes_bursts() {
        let cap = Energy::from_joules(100.0);
        let p_ref = Power::from_watts(1.0);
        let mut smooth = RateCapacityBattery::new(cap, p_ref, 1.2);
        let mut bursty = RateCapacityBattery::new(cap, p_ref, 1.2);
        // Same total energy: 10 J smooth vs 10 J in a 10x burst.
        smooth.drain(Power::from_watts(1.0), SimDuration::from_secs(10));
        bursty.drain(Power::from_watts(10.0), SimDuration::from_secs(1));
        assert!(bursty.remaining() < smooth.remaining());
        // below the reference rate there is no penalty
        let mut slow = RateCapacityBattery::new(cap, p_ref, 1.2);
        slow.drain(Power::from_watts(0.5), SimDuration::from_secs(20));
        assert!((slow.remaining().as_joules() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn kibam_recovers_during_rest() {
        let mut b = KibamBattery::typical(Energy::from_joules(100.0));
        // Hard burst drains the available well.
        b.drain(Power::from_watts(20.0), SimDuration::from_secs(2));
        let after_burst = b.available;
        // Rest: no load, charge seeps back from the bound well.
        b.drain(Power::ZERO, SimDuration::from_secs(60));
        assert!(
            b.available > after_burst,
            "recovery must refill the available well"
        );
        // but total never grows
        assert!(b.remaining() <= Energy::from_joules(100.0) + Energy::from_joules(1e-9));
    }

    #[test]
    fn kibam_total_energy_is_conserved_minus_load() {
        let mut b = KibamBattery::typical(Energy::from_joules(50.0));
        b.drain(Power::from_watts(1.0), SimDuration::from_secs(10));
        // 10 J drawn: remaining within numerical tolerance of 40 J.
        assert!((b.remaining().as_joules() - 40.0).abs() < 0.1);
    }

    #[test]
    fn kibam_exhaustion_is_available_well_dry() {
        let mut b = KibamBattery::new(Energy::from_joules(10.0), 0.2, 0.0001);
        // available well: 2 J; heavy load kills it quickly even though
        // 8 J remain bound.
        b.drain(Power::from_watts(10.0), SimDuration::from_secs(1));
        assert!(b.is_exhausted());
        assert!(b.remaining() > Energy::from_joules(5.0));
    }

    #[test]
    fn terminal_voltage_droops() {
        let mut b = LinearBattery::new(Energy::from_joules(10.0));
        let v_full = b.terminal_voltage();
        b.drain(Power::from_watts(1.0), SimDuration::from_secs(9));
        let v_low = b.terminal_voltage();
        assert!(v_full > v_low);
        assert!(v_low >= Voltage::from_volts(3.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LinearBattery::new(Energy::ZERO);
    }

    #[test]
    #[should_panic(expected = "peukert exponent")]
    fn bad_peukert_rejected() {
        let _ = RateCapacityBattery::new(Energy::from_joules(1.0), Power::from_watts(1.0), 0.9);
    }
}
