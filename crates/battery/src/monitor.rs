//! The battery monitor process: the paper's SystemC battery model.
//!
//! It integrates the SoC's total power draw into a [`Battery`] and
//! publishes two signals the managers consume: the raw state of charge
//! (`f64`, for tracing/estimation) and the quantized [`BatteryClass`].
//!
//! Integration is exact for piecewise-constant power: the monitor is
//! sensitive to every power input signal, so it closes the energy
//! integral with the *old* power value at the instant a new one is
//! published. The periodic tick merely refreshes the published status.

use dpm_kernel::{Ctx, EventId, Process, ProcessId, Signal, Simulation};
use dpm_units::{Energy, Power, Ratio, SimDuration, SimTime};

use crate::class::{BatteryClass, BatteryClassifier, PowerSource};
use crate::model::Battery;

/// Handles to a spawned [`BatteryMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct BatteryMonitorHandles {
    /// The monitor process.
    pub pid: ProcessId,
    /// State of charge in `[0, 1]`.
    pub soc: Signal<f64>,
    /// Quantized battery status.
    pub class: Signal<BatteryClass>,
}

/// Simulation process draining a battery from power-draw signals.
pub struct BatteryMonitor {
    battery: Box<dyn Battery>,
    source: PowerSource,
    power_inputs: Vec<Signal<f64>>,
    cached_power: Power,
    tick: EventId,
    period: SimDuration,
    last_drain: SimTime,
    soc_out: Signal<f64>,
    class_out: Signal<BatteryClass>,
    classifier: BatteryClassifier,
}

impl BatteryMonitor {
    /// Builds the monitor, its output signals and its sensitivity list.
    ///
    /// `power_inputs` are per-component power draws in watts; their sum is
    /// drained from `battery` (unless `source` is [`PowerSource::Mains`],
    /// in which case the battery holds its charge).
    ///
    /// # Panics
    ///
    /// Panics on a zero sampling `period` or duplicate names.
    pub fn spawn(
        sim: &mut Simulation,
        name: &str,
        battery: Box<dyn Battery>,
        source: PowerSource,
        power_inputs: Vec<Signal<f64>>,
        period: SimDuration,
        mut classifier: BatteryClassifier,
    ) -> BatteryMonitorHandles {
        assert!(
            !period.is_zero(),
            "battery sampling period must be non-zero"
        );
        let soc0 = battery.soc();
        let class0 = classifier.classify(soc0);
        let soc_out = sim.signal(&format!("{name}.soc"), soc0.value());
        let class_out = sim.signal(&format!("{name}.class"), class0);
        let tick = sim.event(&format!("{name}.tick"));
        let monitor = BatteryMonitor {
            battery,
            source,
            power_inputs: power_inputs.clone(),
            cached_power: Power::ZERO,
            tick,
            period,
            last_drain: SimTime::ZERO,
            soc_out,
            class_out,
            classifier,
        };
        let pid = sim.add_process(name, monitor);
        sim.sensitize(pid, tick);
        for sig in power_inputs {
            sim.sensitize_signal(pid, sig);
        }
        BatteryMonitorHandles {
            pid,
            soc: soc_out,
            class: class_out,
        }
    }

    /// Remaining energy (for post-run inspection via `with_process`).
    pub fn remaining(&self) -> Energy {
        self.battery.remaining()
    }

    /// Current state of charge.
    pub fn soc(&self) -> Ratio {
        self.battery.soc()
    }

    /// `true` once the battery cannot deliver energy anymore.
    pub fn is_exhausted(&self) -> bool {
        self.battery.is_exhausted()
    }

    /// The configured power source.
    pub fn source(&self) -> PowerSource {
        self.source
    }

    fn sum_inputs(&self, ctx: &Ctx<'_>) -> Power {
        let watts: f64 = self.power_inputs.iter().map(|s| ctx.read(*s)).sum();
        Power::from_watts(watts.max(0.0))
    }

    fn settle(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let dt = now.saturating_duration_since(self.last_drain);
        if !dt.is_zero() && matches!(self.source, PowerSource::Battery) {
            self.battery.drain(self.cached_power, dt);
        }
        self.last_drain = now;
        self.cached_power = self.sum_inputs(ctx);
        let soc = self.battery.soc();
        let class = self.classifier.classify(soc);
        ctx.write(self.soc_out, soc.value());
        ctx.write(self.class_out, class);
    }
}

impl Process for BatteryMonitor {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.last_drain = ctx.now();
        self.cached_power = self.sum_inputs(ctx);
        ctx.notify(self.tick, self.period);
    }

    fn react(&mut self, ctx: &mut Ctx<'_>) {
        self.settle(ctx);
        if ctx.triggered(self.tick) {
            ctx.notify(self.tick, self.period);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearBattery;
    use dpm_units::SimTime;

    struct PowerStepper {
        out: Signal<f64>,
        tick: EventId,
        steps: Vec<(SimDuration, f64)>,
        idx: usize,
    }

    impl Process for PowerStepper {
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if let Some((delay, _)) = self.steps.first() {
                ctx.notify(self.tick, *delay);
            }
        }
        fn react(&mut self, ctx: &mut Ctx<'_>) {
            let (_, watts) = self.steps[self.idx];
            ctx.write(self.out, watts);
            self.idx += 1;
            if let Some((delay, _)) = self.steps.get(self.idx) {
                ctx.notify(self.tick, *delay);
            }
        }
    }

    fn setup(
        source: PowerSource,
        steps: Vec<(SimDuration, f64)>,
    ) -> (Simulation, BatteryMonitorHandles) {
        let mut sim = Simulation::new();
        let power = sim.signal("ip.power", 1.0f64); // 1 W initially
        let tick = sim.event("stepper.tick");
        let stepper = sim.add_process(
            "stepper",
            PowerStepper {
                out: power,
                tick,
                steps,
                idx: 0,
            },
        );
        sim.sensitize(stepper, tick);
        let handles = BatteryMonitor::spawn(
            &mut sim,
            "battery",
            Box::new(LinearBattery::new(Energy::from_joules(100.0))),
            source,
            vec![power],
            SimDuration::from_millis(100),
            BatteryClassifier::with_defaults(),
        );
        (sim, handles)
    }

    #[test]
    fn drains_piecewise_constant_power_exactly() {
        // 1 W for 2 s, then 5 W for 2 s => 12 J after 4 s.
        let (mut sim, handles) =
            setup(PowerSource::Battery, vec![(SimDuration::from_secs(2), 5.0)]);
        sim.run_until(SimTime::from_secs(4));
        let remaining = sim.with_process::<BatteryMonitor, _>(handles.pid, |m| m.remaining());
        assert!(
            (remaining.as_joules() - 88.0).abs() < 0.01,
            "expected ~88 J, got {remaining}"
        );
        let soc = sim.peek(handles.soc);
        assert!((soc - 0.88).abs() < 1e-3);
        assert_eq!(sim.peek(handles.class), BatteryClass::Full);
    }

    #[test]
    fn classes_descend_as_battery_drains() {
        // constant 1 W on a 100 J battery: Full -> ... -> Empty in 100 s.
        let (mut sim, handles) = setup(PowerSource::Battery, vec![]);
        let mut seen = vec![sim.peek(handles.class)];
        // 21 × 5 s = 105 s > the 100 s runtime of a 100 J battery at 1 W
        // (one extra step absorbs floating-point residue in the integral).
        for _ in 0..21 {
            sim.run_for(SimDuration::from_secs(5));
            let c = sim.peek(handles.class);
            if *seen.last().unwrap() != c {
                seen.push(c);
            }
        }
        assert_eq!(
            seen,
            vec![
                BatteryClass::Full,
                BatteryClass::High,
                BatteryClass::Medium,
                BatteryClass::Low,
                BatteryClass::Empty
            ]
        );
        let exhausted = sim.with_process::<BatteryMonitor, _>(handles.pid, |m| m.is_exhausted());
        assert!(exhausted);
    }

    #[test]
    fn mains_powered_battery_holds_charge() {
        let (mut sim, handles) = setup(PowerSource::Mains, vec![]);
        sim.run_until(SimTime::from_secs(50));
        let remaining = sim.with_process::<BatteryMonitor, _>(handles.pid, |m| m.remaining());
        assert_eq!(remaining, Energy::from_joules(100.0));
        assert_eq!(sim.peek(handles.class), BatteryClass::Full);
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_rejected() {
        let mut sim = Simulation::new();
        let _ = BatteryMonitor::spawn(
            &mut sim,
            "battery",
            Box::new(LinearBattery::new(Energy::from_joules(1.0))),
            PowerSource::Battery,
            vec![],
            SimDuration::ZERO,
            BatteryClassifier::with_defaults(),
        );
    }
}
