//! Battery models and the battery status monitor of the DATE'05 DPM
//! architecture.
//!
//! The paper develops *"SystemC models of the battery"* to close the
//! control loop: the LEM reads a five-class battery status (Empty, Low,
//! Medium, High, Full) and the GEM gates IPs on it. This crate provides:
//!
//! * [`Battery`] — the model trait, with three implementations:
//!   [`LinearBattery`] (ideal energy tank), [`RateCapacityBattery`]
//!   (Peukert-style losses at high drain) and [`KibamBattery`] (kinetic
//!   two-well model with charge recovery; an extension over the paper).
//! * [`BatteryClass`] — the paper's five status classes, plus
//!   [`BatteryClassifier`], a hysteresis quantizer that keeps the class
//!   signal from chattering at threshold crossings.
//! * [`PowerSource`] — battery vs. mains, for Table 1's "power supply" row.
//! * [`BatteryMonitor`] — a simulation process integrating the SoC's total
//!   power draw into the battery and publishing `state-of-charge` and
//!   class signals.
//!
//! # Examples
//!
//! ```
//! use dpm_battery::{Battery, LinearBattery};
//! use dpm_units::{Energy, Power, SimDuration};
//!
//! let mut b = LinearBattery::new(Energy::from_joules(100.0));
//! b.drain(Power::from_watts(2.0), SimDuration::from_secs(10));
//! assert!((b.soc().value() - 0.8).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod model;
mod monitor;

pub use class::{BatteryClass, BatteryClassifier, PowerSource};
pub use model::{Battery, KibamBattery, LinearBattery, RateCapacityBattery};
pub use monitor::{BatteryMonitor, BatteryMonitorHandles};
