//! The paper's five battery status classes and a hysteresis quantizer.

use core::fmt;

use dpm_kernel::{Traceable, VcdValue};
use dpm_units::Ratio;

/// Battery status as the LEM/GEM see it (paper §1.3: *"the battery status
/// (coded in 5 classes: Empty, Low, Medium, High and Full)"*).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum BatteryClass {
    /// Practically no charge left; only the most critical work may run.
    Empty,
    /// Running low; aggressive saving.
    Low,
    /// Comfortable middle.
    Medium,
    /// Nearly full.
    High,
    /// Fully charged.
    Full,
}

impl BatteryClass {
    /// All classes, ascending.
    pub const ALL: [BatteryClass; 5] = [
        BatteryClass::Empty,
        BatteryClass::Low,
        BatteryClass::Medium,
        BatteryClass::High,
        BatteryClass::Full,
    ];

    /// Dense index (0 = Empty).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            BatteryClass::Empty => 0,
            BatteryClass::Low => 1,
            BatteryClass::Medium => 2,
            BatteryClass::High => 3,
            BatteryClass::Full => 4,
        }
    }

    /// Single-letter code used in the paper's Table 1 (`E, L, M, H, F`).
    pub const fn code(self) -> char {
        match self {
            BatteryClass::Empty => 'E',
            BatteryClass::Low => 'L',
            BatteryClass::Medium => 'M',
            BatteryClass::High => 'H',
            BatteryClass::Full => 'F',
        }
    }
}

impl fmt::Display for BatteryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BatteryClass::Empty => "Empty",
            BatteryClass::Low => "Low",
            BatteryClass::Medium => "Medium",
            BatteryClass::High => "High",
            BatteryClass::Full => "Full",
        };
        f.write_str(s)
    }
}

impl Traceable for BatteryClass {
    const WIDTH: u32 = 3;
    fn vcd_value(&self) -> VcdValue {
        VcdValue::Bits(self.index() as u64)
    }
}

/// What currently powers the SoC. Table 1's last row selects `ON1`
/// whenever the system runs from the mains ("Power supply") and the
/// temperature allows it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PowerSource {
    /// Running from the battery; status classes drive the policy.
    Battery,
    /// Running from a power supply; energy is "free", latency rules.
    Mains,
}

impl fmt::Display for PowerSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PowerSource::Battery => "battery",
            PowerSource::Mains => "mains",
        })
    }
}

impl Traceable for PowerSource {
    const WIDTH: u32 = 1;
    fn vcd_value(&self) -> VcdValue {
        VcdValue::Bits(matches!(self, PowerSource::Mains) as u64)
    }
}

/// Quantizes a state of charge into a [`BatteryClass`] with hysteresis.
///
/// Plain threshold quantization chatters when the SoC hovers at a
/// boundary (each sampling period would flip the class and wake every
/// sensitive manager). The classifier therefore only leaves the current
/// class when the SoC moves `hysteresis` beyond the boundary.
///
/// # Examples
///
/// ```
/// use dpm_battery::{BatteryClass, BatteryClassifier};
/// use dpm_units::Ratio;
///
/// let mut c = BatteryClassifier::with_defaults();
/// assert_eq!(c.classify(Ratio::new(0.9)), BatteryClass::Full);
/// assert_eq!(c.classify(Ratio::new(0.845)), BatteryClass::Full); // within hysteresis
/// assert_eq!(c.classify(Ratio::new(0.82)), BatteryClass::High);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryClassifier {
    /// Ascending boundaries between the five classes.
    thresholds: [f64; 4],
    hysteresis: f64,
    last: Option<BatteryClass>,
}

impl BatteryClassifier {
    /// Default boundaries: Empty < 5 % ≤ Low < 25 % ≤ Medium < 55 % ≤
    /// High < 85 % ≤ Full, with ±1 % hysteresis.
    pub fn with_defaults() -> Self {
        Self::new([0.05, 0.25, 0.55, 0.85], 0.01)
    }

    /// Custom boundaries (ascending, within `(0, 1)`) and hysteresis.
    ///
    /// # Panics
    ///
    /// Panics on unsorted thresholds or a hysteresis that is negative or
    /// wider than the narrowest class band.
    pub fn new(thresholds: [f64; 4], hysteresis: f64) -> Self {
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "battery class thresholds must be strictly ascending"
        );
        assert!(
            thresholds.iter().all(|t| (0.0..1.0).contains(t)),
            "battery class thresholds must lie in (0, 1)"
        );
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        let min_band = thresholds
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);
        assert!(
            2.0 * hysteresis < min_band,
            "hysteresis {hysteresis} too wide for the narrowest class band {min_band}"
        );
        Self {
            thresholds,
            hysteresis,
            last: None,
        }
    }

    fn raw_class(&self, soc: f64) -> BatteryClass {
        let mut idx = 0;
        for t in self.thresholds {
            if soc >= t {
                idx += 1;
            }
        }
        BatteryClass::ALL[idx]
    }

    /// Classifies `soc`, honouring hysteresis against the previous result.
    pub fn classify(&mut self, soc: Ratio) -> BatteryClass {
        let soc = soc.clamp_unit().value();
        let raw = self.raw_class(soc);
        let Some(last) = self.last else {
            self.last = Some(raw);
            return raw;
        };
        if raw == last {
            return last;
        }
        // Moving up requires clearing the boundary above the last class by
        // the hysteresis margin; moving down symmetrically.
        let next = if raw > last {
            let boundary = self.thresholds[last.index()]; // boundary above `last`
            if soc >= boundary + self.hysteresis {
                raw
            } else {
                last
            }
        } else {
            let boundary = self.thresholds[last.index() - 1]; // boundary below `last`
            if soc < boundary - self.hysteresis {
                raw
            } else {
                last
            }
        };
        self.last = Some(next);
        next
    }

    /// The last classification, if any.
    pub fn current(&self) -> Option<BatteryClass> {
        self.last
    }

    /// Forgets the classification history (the next call is raw).
    pub fn reset(&mut self) {
        self.last = None;
    }
}

impl Default for BatteryClassifier {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_boundaries() {
        let mut c = BatteryClassifier::with_defaults();
        assert_eq!(c.classify(Ratio::new(0.00)), BatteryClass::Empty);
        c.reset();
        assert_eq!(c.classify(Ratio::new(0.10)), BatteryClass::Low);
        c.reset();
        assert_eq!(c.classify(Ratio::new(0.40)), BatteryClass::Medium);
        c.reset();
        assert_eq!(c.classify(Ratio::new(0.70)), BatteryClass::High);
        c.reset();
        assert_eq!(c.classify(Ratio::new(1.00)), BatteryClass::Full);
    }

    #[test]
    fn hysteresis_prevents_chatter() {
        let mut c = BatteryClassifier::with_defaults();
        assert_eq!(c.classify(Ratio::new(0.26)), BatteryClass::Medium);
        // dithering right at the 0.25 boundary stays Medium
        for soc in [0.249, 0.251, 0.248, 0.252, 0.2401] {
            assert_eq!(c.classify(Ratio::new(soc)), BatteryClass::Medium, "{soc}");
        }
        // a decisive move below the hysteresis band flips to Low
        assert_eq!(c.classify(Ratio::new(0.2399)), BatteryClass::Low);
        // and dithering at the boundary again stays Low
        assert_eq!(c.classify(Ratio::new(0.2550)), BatteryClass::Low);
        assert_eq!(c.classify(Ratio::new(0.2601)), BatteryClass::Medium);
    }

    #[test]
    fn multi_class_jumps_resolve_raw() {
        let mut c = BatteryClassifier::with_defaults();
        assert_eq!(c.classify(Ratio::new(0.9)), BatteryClass::Full);
        // a crash from Full to 10% is far beyond hysteresis of any boundary
        assert_eq!(c.classify(Ratio::new(0.10)), BatteryClass::Low);
    }

    #[test]
    fn out_of_range_soc_is_clamped() {
        let mut c = BatteryClassifier::with_defaults();
        assert_eq!(c.classify(Ratio::new(-0.2)), BatteryClass::Empty);
        assert_eq!(c.classify(Ratio::new(1.7)), BatteryClass::Full);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_thresholds_rejected() {
        let _ = BatteryClassifier::new([0.3, 0.2, 0.5, 0.8], 0.01);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn oversized_hysteresis_rejected() {
        let _ = BatteryClassifier::new([0.05, 0.25, 0.55, 0.85], 0.2);
    }

    #[test]
    fn codes_match_paper_table() {
        let codes: String = BatteryClass::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes, "ELMHF");
    }

    #[test]
    fn ordering_is_by_charge() {
        assert!(BatteryClass::Empty < BatteryClass::Low);
        assert!(BatteryClass::High < BatteryClass::Full);
    }
}
