//! Property-based tests of the power models: physical sanity that must
//! hold for *any* parameterization, not just the defaults.

use dpm_power::{
    break_even_time, BreakEvenTable, DvfsLadder, InstructionClass, InstructionMix, IpPowerModel,
    OperatingPoint, PowerState, TransitionCost, TransitionTable,
};
use dpm_units::{Energy, Frequency, Power, SimDuration, Voltage};
use proptest::prelude::*;

/// A random but valid DVFS ladder: strictly decreasing f, non-increasing V.
fn ladder_strategy() -> impl Strategy<Value = DvfsLadder> {
    (
        50.0..2000.0f64, // f1 MHz
        0.3..0.9f64,     // f ratio per step
        1.0..2.5f64,     // V1
        0.75..1.0f64,    // V ratio per step
    )
        .prop_map(|(f1, fr, v1, vr)| {
            let mk = |i: i32| {
                OperatingPoint::new(
                    Frequency::from_mega_hertz(f1 * fr.powi(i)),
                    Voltage::from_volts(v1 * vr.powi(i)),
                )
            };
            DvfsLadder::new([mk(0), mk(1), mk(2), mk(3)])
        })
}

fn model_strategy() -> impl Strategy<Value = IpPowerModel> {
    (ladder_strategy(), 0.05e-9..2e-9f64, 0.0..0.9f64).prop_map(|(ladder, ceff, idle)| {
        let mut b = IpPowerModel::builder();
        b.dvfs(ladder).ceff(ceff).idle_activity(idle);
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn energy_per_instruction_monotone_without_leakage(ladder in ladder_strategy(), ceff in 0.05e-9..2e-9f64) {
        // Monotonicity down the ladder is a *dynamic-energy* property
        // (E ∝ V²); with heavy leakage a slower state can genuinely cost
        // more energy per instruction (longer runtime × leakage), which is
        // the classic argument against naive DVFS in leakage-dominated
        // processes. So assert it for the leakage-free component.
        let mut b = IpPowerModel::builder();
        b.dvfs(ladder).ceff(ceff).leakage(dpm_power::LeakageModel {
            p0: Power::ZERO,
            temp_coeff: 0.0,
            t_ref: dpm_units::Celsius::new(25.0),
        });
        let model = b.build();
        for class in InstructionClass::ALL {
            let mut last = Energy::MAX_SENTINEL;
            for state in PowerState::EXECUTION {
                let e = model.energy_per_instruction(state, class);
                prop_assert!(e.as_joules() > 0.0);
                prop_assert!(e.as_joules() <= last, "{state} {class}");
                last = e.as_joules();
            }
        }
    }

    #[test]
    fn leakage_can_defeat_dvfs(ceff in 1e-14..1e-12f64) {
        // Complementary property: with tiny switched capacitance and huge
        // leakage, the slowest state costs *more* energy per instruction —
        // the regime where the LEM's estimation logic matters. This holds
        // whenever frequency drops faster than voltage down the ladder
        // (true for the default ladder: f4/f1 = 0.25 < V4/V1 = 0.67).
        let mut b = IpPowerModel::builder();
        b.ceff(ceff).leakage(dpm_power::LeakageModel {
            p0: Power::from_watts(1.0),
            temp_coeff: 0.0,
            t_ref: dpm_units::Celsius::new(25.0),
        });
        let model = b.build();
        let e1 = model.energy_per_instruction(PowerState::On1, InstructionClass::Alu);
        let e4 = model.energy_per_instruction(PowerState::On4, InstructionClass::Alu);
        prop_assert!(e4 > e1, "leakage-dominated: slower must cost more");
    }

    #[test]
    fn execution_time_inverse_to_frequency(model in model_strategy(), n in 1u64..10_000_000) {
        let mix = InstructionMix::default();
        let t1 = model.execution_time(n, &mix, PowerState::On1).unwrap();
        for state in PowerState::EXECUTION {
            let t = model.execution_time(n, &mix, state).unwrap();
            let slow = model.dvfs().slowdown(state).unwrap();
            let expect = t1.as_secs_f64() * slow;
            prop_assert!((t.as_secs_f64() - expect).abs() <= expect * 1e-6 + 2e-12);
        }
    }

    #[test]
    fn state_power_ordering_holds_for_any_model(model in model_strategy()) {
        // Each ON state burns at least as much idling as any sleep state.
        for on in PowerState::EXECUTION {
            for sl in PowerState::SLEEP {
                prop_assert!(model.idle_power(on) >= model.state_power(sl), "{on} vs {sl}");
            }
        }
        prop_assert_eq!(model.state_power(PowerState::SoftOff), Power::ZERO);
    }

    #[test]
    fn break_even_scales_with_transition_energy(
        hold_mw in 1.0..1000.0f64,
        sleep_frac in 0.0..0.9f64,
        e_uj in 0.1..10_000.0f64,
        lat_us in 1u64..100_000,
    ) {
        let hold = Power::from_milliwatts(hold_mw);
        let sleep = hold * sleep_frac;
        let down = TransitionCost::new(
            SimDuration::from_micros(lat_us),
            Energy::from_microjoules(e_uj),
        );
        let up = TransitionCost::new(
            SimDuration::from_micros(lat_us),
            Energy::from_microjoules(e_uj),
        );
        let tbe1 = break_even_time(hold, sleep, down, up);
        // doubling the transition energy can only increase the break-even
        let down2 = TransitionCost::new(down.latency, down.energy * 2.0);
        let up2 = TransitionCost::new(up.latency, up.energy * 2.0);
        let tbe2 = break_even_time(hold, sleep, down2, up2);
        prop_assert!(tbe2 >= tbe1);
        // and the break-even is never below the total transition latency
        prop_assert!(tbe1 >= down.latency + up.latency);
    }

    #[test]
    fn deepest_within_is_monotone_in_idle_time(
        model in model_strategy(),
        idle_a_us in 1u64..10_000_000,
        idle_b_us in 1u64..10_000_000,
    ) {
        let table = TransitionTable::for_model(&model);
        let be = BreakEvenTable::compute(&model, &table, PowerState::On1);
        let (short, long) = if idle_a_us <= idle_b_us {
            (idle_a_us, idle_b_us)
        } else {
            (idle_b_us, idle_a_us)
        };
        let s = be.deepest_within(SimDuration::from_micros(short), None);
        let l = be.deepest_within(SimDuration::from_micros(long), None);
        // A longer idle prediction can only allow an equal or deeper state.
        match (s, l) {
            (Some(ss), Some(ls)) => prop_assert!(ls <= ss, "longer idle must sleep at least as deep"),
            (Some(_), None) => prop_assert!(false, "longer idle lost a profitable state"),
            _ => {}
        }
    }

    #[test]
    fn transition_table_triangle_inequality_to_on1(model in model_strategy()) {
        // Direct wake from a sleep state is never slower than wake-to-On4
        // followed by a DVFS hop… not guaranteed by construction for
        // energies, but latencies are: direct up-latency is depth-bound.
        let t = TransitionTable::for_model(&model);
        for s in PowerState::SLEEP {
            let direct = t.cost(s, PowerState::On1).latency;
            let via = t.cost(s, PowerState::On4).latency + t.cost(PowerState::On4, PowerState::On1).latency;
            prop_assert!(direct <= via);
        }
    }
}

/// proptest strategies can't easily produce `f64::MAX`, so give Energy a
/// sentinel for "larger than anything physical".
trait MaxSentinel {
    const MAX_SENTINEL: f64;
}
impl MaxSentinel for Energy {
    const MAX_SENTINEL: f64 = f64::MAX;
}
