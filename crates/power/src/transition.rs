//! Power-state transition costs.
//!
//! The paper (§1.2): *"The DPM algorithm used considers the cost in terms
//! of delay and power dissipation of the transition between two power
//! states."* The table below assigns every ordered state pair a latency
//! and an energy; the LEM's break-even analysis and the PSM's transition
//! sequencing both read it.

use dpm_units::{Energy, Power, SimDuration};

use crate::model::IpPowerModel;
use crate::state::PowerState;

/// Latency and energy of one state transition.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct TransitionCost {
    /// Time during which the IP can do no useful work.
    pub latency: SimDuration,
    /// Energy dissipated by the transition itself.
    pub energy: Energy,
}

impl TransitionCost {
    /// The free transition (state to itself).
    pub const FREE: TransitionCost = TransitionCost {
        latency: SimDuration::ZERO,
        energy: Energy::ZERO,
    };

    /// A new cost entry.
    pub const fn new(latency: SimDuration, energy: Energy) -> Self {
        Self { latency, energy }
    }

    /// Component-wise sum (for composed transitions).
    pub fn plus(self, other: TransitionCost) -> TransitionCost {
        TransitionCost {
            latency: self.latency + other.latency,
            energy: self.energy + other.energy,
        }
    }
}

/// The full 9×9 transition cost matrix.
///
/// # Examples
///
/// ```
/// use dpm_power::{IpPowerModel, PowerState, TransitionTable};
///
/// let table = TransitionTable::for_model(&IpPowerModel::default_cpu());
/// let light = table.cost(PowerState::Sl1, PowerState::On1);
/// let deep = table.cost(PowerState::Sl4, PowerState::On1);
/// assert!(deep.latency > light.latency, "deeper sleep wakes slower");
/// assert!(deep.energy > light.energy, "deeper sleep wakes costlier");
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransitionTable {
    costs: Vec<TransitionCost>, // row-major 9×9, [from][to]
}

/// Down-transition (enter sleep depth d, index 0 = Sl1) latencies in µs.
const DOWN_LAT_US: [f64; 4] = [2.0, 20.0, 100.0, 500.0];
/// Wake-up latencies per sleep depth in µs.
const UP_LAT_US: [f64; 4] = [10.0, 100.0, 500.0, 2000.0];
/// Down energies as multiples of (nominal power × 1 µs).
const DOWN_E_UNITS: [f64; 4] = [1.0, 4.0, 15.0, 50.0];
/// Wake energies as multiples of (nominal power × 1 µs).
const UP_E_UNITS: [f64; 4] = [5.0, 20.0, 75.0, 250.0];
/// DVFS rail-switch settle time in µs.
const DVFS_LAT_US: f64 = 10.0;
/// Soft-off boot latency in µs / energy units.
const BOOT_LAT_US: f64 = 10_000.0;
const BOOT_E_UNITS: f64 = 1_000.0;
const SHUTDOWN_LAT_US: f64 = 1_000.0;
const SHUTDOWN_E_UNITS: f64 = 10.0;

impl TransitionTable {
    /// Derives a physically consistent table from an IP power model:
    /// deeper sleep states take longer and cost more to leave; DVFS
    /// switches pay a regulator settle time; soft-off needs a boot.
    pub fn for_model(model: &IpPowerModel) -> Self {
        // Energy unit: nominal active power × 1 µs.
        let p_nom = model.mix_power(PowerState::On1, &crate::instr::InstructionMix::default());
        Self::from_energy_unit(p_nom)
    }

    /// Same shape as [`for_model`](Self::for_model) with an explicit
    /// nominal power for the energy unit.
    pub fn from_energy_unit(p_nom: Power) -> Self {
        let unit = |units: f64| p_nom * SimDuration::from_micros(1) * units;
        let us = |x: f64| SimDuration::from_secs_f64(x * 1e-6);

        let mut costs = vec![TransitionCost::FREE; 81];
        let mut set = |from: PowerState, to: PowerState, c: TransitionCost| {
            costs[from.index() * 9 + to.index()] = c;
        };

        use PowerState::*;
        let on = [On1, On2, On3, On4];
        let sl = [Sl1, Sl2, Sl3, Sl4];

        // ON <-> ON: DVFS switch; energy grows with the level distance.
        for (i, &a) in on.iter().enumerate() {
            for (j, &b) in on.iter().enumerate() {
                if i != j {
                    let dist = i.abs_diff(j) as f64;
                    set(a, b, TransitionCost::new(us(DVFS_LAT_US), unit(2.0 * dist)));
                }
            }
        }

        // ON -> sleep and sleep -> ON.
        for &a in &on {
            for (d, &s) in sl.iter().enumerate() {
                set(
                    a,
                    s,
                    TransitionCost::new(us(DOWN_LAT_US[d]), unit(DOWN_E_UNITS[d])),
                );
                set(
                    s,
                    a,
                    TransitionCost::new(us(UP_LAT_US[d]), unit(UP_E_UNITS[d])),
                );
            }
        }

        // Sleep <-> sleep: deepening is the cost difference of the down
        // paths; lightening is half a wake from the deeper state.
        for (d1, &s1) in sl.iter().enumerate() {
            for (d2, &s2) in sl.iter().enumerate() {
                if d2 > d1 {
                    let lat = (DOWN_LAT_US[d2] - DOWN_LAT_US[d1]).max(1.0);
                    let e = (DOWN_E_UNITS[d2] - DOWN_E_UNITS[d1]).max(0.5);
                    set(s1, s2, TransitionCost::new(us(lat), unit(e)));
                } else if d2 < d1 {
                    set(
                        s1,
                        s2,
                        TransitionCost::new(us(UP_LAT_US[d1] * 0.5), unit(UP_E_UNITS[d1] * 0.5)),
                    );
                }
            }
        }

        // Soft-off.
        for &a in &on {
            set(
                a,
                SoftOff,
                TransitionCost::new(us(SHUTDOWN_LAT_US), unit(SHUTDOWN_E_UNITS)),
            );
            set(
                SoftOff,
                a,
                TransitionCost::new(us(BOOT_LAT_US), unit(BOOT_E_UNITS)),
            );
        }
        for (d, &s) in sl.iter().enumerate() {
            // off <-> sleep goes through a partial boot/shutdown
            set(
                s,
                SoftOff,
                TransitionCost::new(us(SHUTDOWN_LAT_US * 0.5), unit(SHUTDOWN_E_UNITS * 0.5)),
            );
            set(
                SoftOff,
                s,
                TransitionCost::new(
                    us(BOOT_LAT_US + DOWN_LAT_US[d]),
                    unit(BOOT_E_UNITS + DOWN_E_UNITS[d]),
                ),
            );
        }

        Self { costs }
    }

    /// The cost of going from `from` to `to` (free when equal).
    #[inline]
    pub fn cost(&self, from: PowerState, to: PowerState) -> TransitionCost {
        self.costs[from.index() * 9 + to.index()]
    }

    /// Overrides one entry (for custom characterizations and ablations).
    pub fn set_cost(&mut self, from: PowerState, to: PowerState, cost: TransitionCost) {
        self.costs[from.index() * 9 + to.index()] = cost;
    }

    /// Round-trip cost `from -> to -> from`.
    pub fn round_trip(&self, from: PowerState, to: PowerState) -> TransitionCost {
        self.cost(from, to).plus(self.cost(to, from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TransitionTable {
        TransitionTable::for_model(&IpPowerModel::default_cpu())
    }

    #[test]
    fn self_transitions_are_free() {
        let t = table();
        for s in PowerState::ALL {
            assert_eq!(t.cost(s, s), TransitionCost::FREE);
        }
    }

    #[test]
    fn wake_cost_grows_with_sleep_depth() {
        let t = table();
        let mut last_lat = SimDuration::ZERO;
        let mut last_e = Energy::ZERO;
        for s in PowerState::SLEEP {
            let c = t.cost(s, PowerState::On1);
            assert!(c.latency > last_lat, "{s}");
            assert!(c.energy > last_e, "{s}");
            last_lat = c.latency;
            last_e = c.energy;
        }
    }

    #[test]
    fn entering_sleep_is_cheaper_than_leaving() {
        let t = table();
        for s in PowerState::SLEEP {
            let down = t.cost(PowerState::On1, s);
            let up = t.cost(s, PowerState::On1);
            assert!(down.latency < up.latency, "{s}");
            assert!(down.energy < up.energy, "{s}");
        }
    }

    #[test]
    fn dvfs_hop_cost_scales_with_distance() {
        let t = table();
        let near = t.cost(PowerState::On1, PowerState::On2);
        let far = t.cost(PowerState::On1, PowerState::On4);
        assert_eq!(near.latency, far.latency, "settle time is rail-bound");
        assert!(far.energy > near.energy);
    }

    #[test]
    fn boot_dominates_everything() {
        let t = table();
        let boot = t.cost(PowerState::SoftOff, PowerState::On1);
        for s in PowerState::SLEEP {
            assert!(boot.latency > t.cost(s, PowerState::On1).latency);
        }
    }

    #[test]
    fn round_trip_adds_up() {
        let t = table();
        let rt = t.round_trip(PowerState::On1, PowerState::Sl2);
        let manual = t
            .cost(PowerState::On1, PowerState::Sl2)
            .plus(t.cost(PowerState::Sl2, PowerState::On1));
        assert_eq!(rt, manual);
    }

    #[test]
    fn set_cost_overrides() {
        let mut t = table();
        let custom =
            TransitionCost::new(SimDuration::from_micros(1), Energy::from_microjoules(1.0));
        t.set_cost(PowerState::On1, PowerState::Sl1, custom);
        assert_eq!(t.cost(PowerState::On1, PowerState::Sl1), custom);
    }
}
