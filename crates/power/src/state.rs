//! The ACPI-style power state space of the paper's Power State Machine.

use core::fmt;

use dpm_kernel::{Traceable, VcdValue};

/// One of the nine power states of the Power State Machine.
///
/// Following the paper (§1.2): *"The PSM follows the recommendations of
/// the ACPI standard: soft off, four sleep states (SL1, SL2, SL3, SL4),
/// four execution states (ON1, ON2, ON3, ON4) with decreasing speed and
/// power consumption using the variable-voltage technique."*
///
/// The derived order is by **wakefulness**:
/// `SoftOff < Sl4 < Sl3 < Sl2 < Sl1 < On4 < On3 < On2 < On1`.
/// `On1` is the fastest, most power-hungry execution state; `Sl4` the
/// deepest sleep state (cheapest to hold, most expensive to leave).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum PowerState {
    /// Mechanically off; only reachable/leavable through a full reboot-like
    /// transition.
    SoftOff,
    /// Deepest sleep: state lost, longest wake-up.
    Sl4,
    /// Deep sleep.
    Sl3,
    /// Medium sleep.
    Sl2,
    /// Lightest sleep: clock gated, immediate-ish wake-up. The GEM can
    /// force any PSM into this state.
    Sl1,
    /// Slowest execution state (lowest voltage/frequency).
    On4,
    /// Low-mid execution state.
    On3,
    /// High-mid execution state.
    On2,
    /// Fastest execution state (nominal voltage/frequency).
    On1,
}

/// Coarse classification of a [`PowerState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// The soft-off state.
    Off,
    /// One of `Sl1..Sl4`.
    Sleep,
    /// One of `On1..On4`.
    Execution,
}

/// Index of an execution state, `1` fastest to `4` slowest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OnLevel(u8);

/// Index of a sleep state, `1` lightest to `4` deepest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SleepLevel(u8);

impl OnLevel {
    /// Creates a level; valid levels are 1..=4.
    ///
    /// # Panics
    ///
    /// Panics outside that range.
    pub fn new(level: u8) -> Self {
        assert!(
            (1..=4).contains(&level),
            "ON level must be 1..=4, got {level}"
        );
        Self(level)
    }

    /// The numeric level (1 = fastest).
    pub const fn get(self) -> u8 {
        self.0
    }
}

impl SleepLevel {
    /// Creates a level; valid levels are 1..=4.
    ///
    /// # Panics
    ///
    /// Panics outside that range.
    pub fn new(level: u8) -> Self {
        assert!(
            (1..=4).contains(&level),
            "sleep level must be 1..=4, got {level}"
        );
        Self(level)
    }

    /// The numeric level (1 = lightest).
    pub const fn get(self) -> u8 {
        self.0
    }
}

impl PowerState {
    /// Every state, ordered by ascending wakefulness.
    pub const ALL: [PowerState; 9] = [
        PowerState::SoftOff,
        PowerState::Sl4,
        PowerState::Sl3,
        PowerState::Sl2,
        PowerState::Sl1,
        PowerState::On4,
        PowerState::On3,
        PowerState::On2,
        PowerState::On1,
    ];

    /// The execution states, fastest first.
    pub const EXECUTION: [PowerState; 4] = [
        PowerState::On1,
        PowerState::On2,
        PowerState::On3,
        PowerState::On4,
    ];

    /// The sleep states, lightest first.
    pub const SLEEP: [PowerState; 4] = [
        PowerState::Sl1,
        PowerState::Sl2,
        PowerState::Sl3,
        PowerState::Sl4,
    ];

    /// Dense index into [`PowerState::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            PowerState::SoftOff => 0,
            PowerState::Sl4 => 1,
            PowerState::Sl3 => 2,
            PowerState::Sl2 => 3,
            PowerState::Sl1 => 4,
            PowerState::On4 => 5,
            PowerState::On3 => 6,
            PowerState::On2 => 7,
            PowerState::On1 => 8,
        }
    }

    /// Coarse kind of this state.
    #[inline]
    pub const fn kind(self) -> StateKind {
        match self {
            PowerState::SoftOff => StateKind::Off,
            PowerState::Sl1 | PowerState::Sl2 | PowerState::Sl3 | PowerState::Sl4 => {
                StateKind::Sleep
            }
            _ => StateKind::Execution,
        }
    }

    /// `true` for any `ON` state.
    #[inline]
    pub const fn is_execution(self) -> bool {
        matches!(self.kind(), StateKind::Execution)
    }

    /// `true` for any sleep state.
    #[inline]
    pub const fn is_sleep(self) -> bool {
        matches!(self.kind(), StateKind::Sleep)
    }

    /// The execution level, if this is an `ON` state.
    #[inline]
    pub fn on_level(self) -> Option<OnLevel> {
        match self {
            PowerState::On1 => Some(OnLevel(1)),
            PowerState::On2 => Some(OnLevel(2)),
            PowerState::On3 => Some(OnLevel(3)),
            PowerState::On4 => Some(OnLevel(4)),
            _ => None,
        }
    }

    /// The sleep depth, if this is a sleep state.
    #[inline]
    pub fn sleep_level(self) -> Option<SleepLevel> {
        match self {
            PowerState::Sl1 => Some(SleepLevel(1)),
            PowerState::Sl2 => Some(SleepLevel(2)),
            PowerState::Sl3 => Some(SleepLevel(3)),
            PowerState::Sl4 => Some(SleepLevel(4)),
            _ => None,
        }
    }

    /// The execution state for a level.
    #[inline]
    pub fn on(level: OnLevel) -> PowerState {
        match level.get() {
            1 => PowerState::On1,
            2 => PowerState::On2,
            3 => PowerState::On3,
            _ => PowerState::On4,
        }
    }

    /// The sleep state for a depth.
    #[inline]
    pub fn sleep(level: SleepLevel) -> PowerState {
        match level.get() {
            1 => PowerState::Sl1,
            2 => PowerState::Sl2,
            3 => PowerState::Sl3,
            _ => PowerState::Sl4,
        }
    }

    /// Short uppercase name as used in the paper's tables.
    pub const fn short_name(self) -> &'static str {
        match self {
            PowerState::SoftOff => "OFF",
            PowerState::Sl4 => "SL4",
            PowerState::Sl3 => "SL3",
            PowerState::Sl2 => "SL2",
            PowerState::Sl1 => "SL1",
            PowerState::On4 => "ON4",
            PowerState::On3 => "ON3",
            PowerState::On2 => "ON2",
            PowerState::On1 => "ON1",
        }
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl Traceable for PowerState {
    const WIDTH: u32 = 4;
    fn vcd_value(&self) -> VcdValue {
        VcdValue::Bits(self.index() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_wakefulness() {
        assert!(PowerState::SoftOff < PowerState::Sl4);
        assert!(PowerState::Sl4 < PowerState::Sl1);
        assert!(PowerState::Sl1 < PowerState::On4);
        assert!(PowerState::On4 < PowerState::On1);
    }

    #[test]
    fn index_matches_all_order() {
        for (i, s) in PowerState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn kinds_partition_the_space() {
        let mut off = 0;
        let mut sleep = 0;
        let mut exec = 0;
        for s in PowerState::ALL {
            match s.kind() {
                StateKind::Off => off += 1,
                StateKind::Sleep => sleep += 1,
                StateKind::Execution => exec += 1,
            }
        }
        assert_eq!((off, sleep, exec), (1, 4, 4));
    }

    #[test]
    fn levels_roundtrip() {
        for s in PowerState::EXECUTION {
            assert_eq!(PowerState::on(s.on_level().unwrap()), s);
            assert!(s.is_execution());
            assert!(s.sleep_level().is_none());
        }
        for s in PowerState::SLEEP {
            assert_eq!(PowerState::sleep(s.sleep_level().unwrap()), s);
            assert!(s.is_sleep());
            assert!(s.on_level().is_none());
        }
        assert!(PowerState::SoftOff.on_level().is_none());
        assert!(PowerState::SoftOff.sleep_level().is_none());
    }

    #[test]
    #[should_panic(expected = "ON level must be 1..=4")]
    fn bad_on_level_rejected() {
        let _ = OnLevel::new(5);
    }

    #[test]
    fn display_matches_paper_spelling() {
        assert_eq!(PowerState::On4.to_string(), "ON4");
        assert_eq!(PowerState::Sl1.to_string(), "SL1");
        assert_eq!(PowerState::SoftOff.to_string(), "OFF");
    }

    #[test]
    fn traceable_encodes_index() {
        assert_eq!(PowerState::On1.vcd_value(), VcdValue::Bits(8));
        assert_eq!(PowerState::SoftOff.vcd_value(), VcdValue::Bits(0));
    }
}
