//! Per-IP power/energy models.
//!
//! Each IP is a black box characterized by (paper §1.2) an average energy
//! per power state and instruction type. The model below derives those
//! numbers from a compact physical parameterization:
//!
//! * dynamic power `P_dyn = C_eff · V² · f · activity`
//! * leakage power `P_leak = P₀ · (V/V_nom) · e^{k·(T−T_ref)}`
//!   (temperature dependence is an extension over the paper, enabled by
//!   passing the current die temperature)
//! * sleep-state hold power as characterized fractions of nominal leakage.

use dpm_units::{Celsius, Energy, Frequency, Power, SimDuration, Voltage};

use crate::dvfs::DvfsLadder;
use crate::instr::{InstructionClass, InstructionMix};
use crate::state::PowerState;

/// Exponential-in-temperature leakage model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeakageModel {
    /// Leakage power at nominal voltage and `t_ref`.
    pub p0: Power,
    /// Exponential temperature coefficient (1/K). `0.03` roughly doubles
    /// leakage every 23 K, typical for 130 nm-class processes.
    pub temp_coeff: f64,
    /// Reference die temperature for `p0`.
    pub t_ref: Celsius,
}

impl LeakageModel {
    /// Leakage power at supply `v` (relative to `v_nom`) and temperature `t`.
    pub fn power(&self, v: Voltage, v_nom: Voltage, t: Celsius) -> Power {
        let v_scale = v.as_volts() / v_nom.as_volts();
        let t_scale = (self.temp_coeff * (t - self.t_ref)).exp();
        self.p0 * v_scale * t_scale
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        Self {
            p0: Power::from_milliwatts(20.0),
            temp_coeff: 0.03,
            t_ref: Celsius::new(25.0),
        }
    }
}

/// The power/energy characterization of one IP block.
///
/// Constructed with [`IpPowerModel::builder`] or the
/// [`IpPowerModel::default_cpu`] preset used by the experiments.
///
/// # Examples
///
/// ```
/// use dpm_power::{InstructionClass, IpPowerModel, PowerState};
///
/// let m = IpPowerModel::default_cpu();
/// // ON4 burns less power but more time per instruction than ON1:
/// let p1 = m.active_power(PowerState::On1, InstructionClass::Alu);
/// let p4 = m.active_power(PowerState::On4, InstructionClass::Alu);
/// assert!(p4 < p1);
/// // ... and less *energy* per instruction thanks to voltage scaling:
/// let e1 = m.energy_per_instruction(PowerState::On1, InstructionClass::Alu);
/// let e4 = m.energy_per_instruction(PowerState::On4, InstructionClass::Alu);
/// assert!(e4 < e1);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IpPowerModel {
    dvfs: DvfsLadder,
    /// Effective switched capacitance per cycle at activity weight 1.0.
    ceff_farad: f64,
    /// Fraction of active switching that persists when idle but clocked.
    idle_activity: f64,
    leakage: LeakageModel,
    /// Hold power of `Sl1..Sl4` as fractions of nominal leakage.
    sleep_fractions: [f64; 4],
}

/// Builder for [`IpPowerModel`].
#[derive(Debug, Clone)]
pub struct IpPowerModelBuilder {
    dvfs: DvfsLadder,
    ceff_farad: f64,
    idle_activity: f64,
    leakage: LeakageModel,
    sleep_fractions: [f64; 4],
}

impl IpPowerModelBuilder {
    /// Sets the DVFS ladder.
    pub fn dvfs(&mut self, ladder: DvfsLadder) -> &mut Self {
        self.dvfs = ladder;
        self
    }

    /// Sets the effective switched capacitance per cycle (farad).
    pub fn ceff(&mut self, farad: f64) -> &mut Self {
        self.ceff_farad = farad;
        self
    }

    /// Sets the idle switching fraction (0..1).
    pub fn idle_activity(&mut self, fraction: f64) -> &mut Self {
        self.idle_activity = fraction;
        self
    }

    /// Sets the leakage model.
    pub fn leakage(&mut self, leakage: LeakageModel) -> &mut Self {
        self.leakage = leakage;
        self
    }

    /// Sets the four sleep hold-power fractions (`Sl1` first, of nominal
    /// leakage).
    pub fn sleep_fractions(&mut self, fractions: [f64; 4]) -> &mut Self {
        self.sleep_fractions = fractions;
        self
    }

    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics on non-physical parameters (negative capacitance, idle
    /// activity outside `[0, 1]`, non-decreasing sleep fractions).
    pub fn build(&self) -> IpPowerModel {
        assert!(
            self.ceff_farad > 0.0 && self.ceff_farad.is_finite(),
            "effective capacitance must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.idle_activity),
            "idle activity must be within [0, 1]"
        );
        assert!(
            self.sleep_fractions.iter().all(|f| (0.0..=1.0).contains(f)),
            "sleep fractions must be within [0, 1]"
        );
        for w in self.sleep_fractions.windows(2) {
            assert!(
                w[0] >= w[1],
                "deeper sleep states must not burn more power than lighter ones"
            );
        }
        IpPowerModel {
            dvfs: self.dvfs,
            ceff_farad: self.ceff_farad,
            idle_activity: self.idle_activity,
            leakage: self.leakage,
            sleep_fractions: self.sleep_fractions,
        }
    }
}

impl IpPowerModel {
    /// A builder initialized with the [`default_cpu`](Self::default_cpu)
    /// parameters.
    pub fn builder() -> IpPowerModelBuilder {
        IpPowerModelBuilder {
            dvfs: DvfsLadder::default_cpu(),
            ceff_farad: 0.4e-9,
            idle_activity: 0.3,
            leakage: LeakageModel::default(),
            sleep_fractions: [0.35, 0.10, 0.03, 0.005],
        }
    }

    /// The embedded-CPU-class preset used by the experiment harness:
    /// 200 MHz @ 1.8 V nominal, ~250 mW active, ~20 mW leakage.
    pub fn default_cpu() -> Self {
        Self::builder().build()
    }

    /// The DVFS ladder of this IP.
    pub fn dvfs(&self) -> &DvfsLadder {
        &self.dvfs
    }

    /// The leakage model of this IP.
    pub fn leakage_model(&self) -> &LeakageModel {
        &self.leakage
    }

    /// The clock frequency in `state` (`None` when not executing).
    pub fn frequency(&self, state: PowerState) -> Option<Frequency> {
        self.dvfs.frequency(state)
    }

    fn dynamic_power(&self, state: PowerState, activity: f64) -> Power {
        match self.dvfs.point_for(state) {
            Some(p) => Power::from_watts(
                self.ceff_farad * p.voltage.squared() * p.frequency.as_hertz() * activity,
            ),
            None => Power::ZERO,
        }
    }

    fn leakage_power_at(&self, state: PowerState, t: Celsius) -> Power {
        match self.dvfs.point_for(state) {
            Some(p) => self
                .leakage
                .power(p.voltage, self.dvfs.nominal().voltage, t),
            None => Power::ZERO,
        }
    }

    /// Power while executing instructions of `class` in `state`, at the
    /// leakage reference temperature. Sleep/off states return their hold
    /// power (an IP cannot execute there).
    pub fn active_power(&self, state: PowerState, class: InstructionClass) -> Power {
        self.active_power_at(state, class, self.leakage.t_ref)
    }

    /// Like [`active_power`](Self::active_power) with an explicit die
    /// temperature for the leakage term.
    pub fn active_power_at(&self, state: PowerState, class: InstructionClass, t: Celsius) -> Power {
        if !state.is_execution() {
            return self.state_power_at(state, t);
        }
        self.dynamic_power(state, class.activity_weight()) + self.leakage_power_at(state, t)
    }

    /// Power while executing a task with instruction mix `mix` in `state`.
    pub fn mix_power(&self, state: PowerState, mix: &InstructionMix) -> Power {
        self.mix_power_at(state, mix, self.leakage.t_ref)
    }

    /// Like [`mix_power`](Self::mix_power) with an explicit temperature.
    pub fn mix_power_at(&self, state: PowerState, mix: &InstructionMix, t: Celsius) -> Power {
        if !state.is_execution() {
            return self.state_power_at(state, t);
        }
        self.dynamic_power(state, mix.average_activity()) + self.leakage_power_at(state, t)
    }

    /// Power while idle but clocked in an execution state, or the hold
    /// power of a sleep/off state.
    pub fn idle_power(&self, state: PowerState) -> Power {
        self.idle_power_at(state, self.leakage.t_ref)
    }

    /// Like [`idle_power`](Self::idle_power) with an explicit temperature.
    pub fn idle_power_at(&self, state: PowerState, t: Celsius) -> Power {
        if !state.is_execution() {
            return self.state_power_at(state, t);
        }
        self.dynamic_power(state, self.idle_activity) + self.leakage_power_at(state, t)
    }

    /// The state's hold power: idle power for execution states, residual
    /// leakage for sleep states, zero for soft-off.
    pub fn state_power(&self, state: PowerState) -> Power {
        self.state_power_at(state, self.leakage.t_ref)
    }

    /// Like [`state_power`](Self::state_power) with an explicit temperature.
    pub fn state_power_at(&self, state: PowerState, t: Celsius) -> Power {
        match state {
            PowerState::SoftOff => Power::ZERO,
            s if s.is_sleep() => {
                let frac = self.sleep_fractions[(s.sleep_level().unwrap().get() - 1) as usize];
                // Sleep leakage still rises with temperature.
                let t_scale = (self.leakage.temp_coeff * (t - self.leakage.t_ref)).exp();
                self.leakage.p0 * frac * t_scale
            }
            s => self.idle_power_at(s, t),
        }
    }

    /// Average energy of one instruction of `class` in `state`
    /// (dynamic `C·V²` per cycle × CPI, plus leakage over the cycles).
    ///
    /// Returns zero for non-execution states.
    pub fn energy_per_instruction(&self, state: PowerState, class: InstructionClass) -> Energy {
        let Some(p) = self.dvfs.point_for(state) else {
            return Energy::ZERO;
        };
        let cycles = class.cpi();
        let dyn_e = self.ceff_farad * p.voltage.squared() * class.activity_weight() * cycles;
        let leak_w = self.leakage_power_at(state, self.leakage.t_ref).as_watts();
        let leak_e = leak_w * cycles / p.frequency.as_hertz();
        Energy::from_joules(dyn_e + leak_e)
    }

    /// Execution time of `instructions` with mix `mix` in `state`.
    ///
    /// Returns `None` when `state` cannot execute.
    pub fn execution_time(
        &self,
        instructions: u64,
        mix: &InstructionMix,
        state: PowerState,
    ) -> Option<SimDuration> {
        let f = self.frequency(state)?;
        let cycles = instructions as f64 * mix.average_cpi();
        Some(SimDuration::from_secs_f64(cycles / f.as_hertz()))
    }

    /// Energy to execute `instructions` with mix `mix` in `state`
    /// (dynamic + leakage over the execution time).
    ///
    /// Returns `None` when `state` cannot execute.
    pub fn execution_energy(
        &self,
        instructions: u64,
        mix: &InstructionMix,
        state: PowerState,
    ) -> Option<Energy> {
        let dt = self.execution_time(instructions, mix, state)?;
        Some(self.mix_power(state, mix) * dt)
    }

    /// Instruction throughput in `state` for mix `mix` (instructions/s).
    pub fn throughput(&self, state: PowerState, mix: &InstructionMix) -> Option<f64> {
        self.frequency(state)
            .map(|f| f.as_hertz() / mix.average_cpi())
    }
}

impl Default for IpPowerModel {
    fn default() -> Self {
        Self::default_cpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cpu_is_in_the_embedded_regime() {
        let m = IpPowerModel::default_cpu();
        let p = m.active_power(PowerState::On1, InstructionClass::Alu);
        assert!(
            p > Power::from_milliwatts(100.0) && p < Power::from_watts(1.0),
            "{p}"
        );
        let leak = m.state_power(PowerState::Sl4);
        assert!(leak < Power::from_milliwatts(1.0), "{leak}");
    }

    #[test]
    fn power_ordering_across_states() {
        let m = IpPowerModel::default_cpu();
        let mix = InstructionMix::default();
        // active > idle within a state
        assert!(m.mix_power(PowerState::On1, &mix) > m.idle_power(PowerState::On1));
        // ON power decreases down the ladder
        assert!(m.idle_power(PowerState::On1) > m.idle_power(PowerState::On4));
        // any ON idle > any sleep hold
        assert!(m.idle_power(PowerState::On4) > m.state_power(PowerState::Sl1));
        // sleep power decreases with depth, off is zero
        assert!(m.state_power(PowerState::Sl1) > m.state_power(PowerState::Sl2));
        assert!(m.state_power(PowerState::Sl3) > m.state_power(PowerState::Sl4));
        assert_eq!(m.state_power(PowerState::SoftOff), Power::ZERO);
    }

    #[test]
    fn energy_per_instruction_drops_with_voltage() {
        let m = IpPowerModel::default_cpu();
        for class in InstructionClass::ALL {
            let e1 = m.energy_per_instruction(PowerState::On1, class);
            let e4 = m.energy_per_instruction(PowerState::On4, class);
            assert!(e4 < e1, "{class}: {e4} !< {e1}");
            // but not *too* low: the (V4/V1)^2 dynamic floor is ~0.44
            assert!(e4.as_joules() > 0.3 * e1.as_joules());
        }
    }

    #[test]
    fn execution_time_scales_with_slowdown() {
        let m = IpPowerModel::default_cpu();
        let mix = InstructionMix::pure(InstructionClass::Alu);
        let t1 = m.execution_time(1_000_000, &mix, PowerState::On1).unwrap();
        let t4 = m.execution_time(1_000_000, &mix, PowerState::On4).unwrap();
        assert!((t4 / t1 - 4.0).abs() < 1e-9);
        assert_eq!(m.execution_time(10, &mix, PowerState::Sl1), None);
    }

    #[test]
    fn on4_task_energy_beats_on1() {
        // The core DVFS claim: the same task at ON4 takes 4x longer but
        // costs less energy (V² scaling dominates the leakage increase).
        let m = IpPowerModel::default_cpu();
        let mix = InstructionMix::default();
        let e1 = m
            .execution_energy(1_000_000, &mix, PowerState::On1)
            .unwrap();
        let e4 = m
            .execution_energy(1_000_000, &mix, PowerState::On4)
            .unwrap();
        assert!(e4 < e1);
        let saving = 1.0 - e4 / e1;
        assert!(saving > 0.3 && saving < 0.6, "saving = {saving}");
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let m = IpPowerModel::default_cpu();
        let cold = m.idle_power_at(PowerState::On1, Celsius::new(25.0));
        let hot = m.idle_power_at(PowerState::On1, Celsius::new(85.0));
        assert!(hot > cold);
        // sleep leakage too
        let s_cold = m.state_power_at(PowerState::Sl2, Celsius::new(25.0));
        let s_hot = m.state_power_at(PowerState::Sl2, Celsius::new(85.0));
        assert!(s_hot > s_cold);
    }

    #[test]
    #[should_panic(expected = "idle activity")]
    fn builder_validates_idle_activity() {
        let _ = IpPowerModel::builder().idle_activity(1.5).build();
    }

    #[test]
    #[should_panic(expected = "deeper sleep")]
    fn builder_validates_sleep_monotonicity() {
        let _ = IpPowerModel::builder()
            .sleep_fractions([0.1, 0.2, 0.05, 0.01])
            .build();
    }
}
