//! Variable-voltage operating points for the execution states.
//!
//! The paper (§1.2): *"The voltage-scaling technique optimizes power
//! consumption decreasing clock frequency and supply voltage in an
//! appropriate way."* A [`DvfsLadder`] holds the four (frequency, voltage)
//! pairs of `ON1..ON4`, validated to be monotonically decreasing.

use dpm_units::{Frequency, Voltage};

use crate::state::{OnLevel, PowerState};

/// A single (clock frequency, supply voltage) pair.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency of the execution state.
    pub frequency: Frequency,
    /// Supply voltage of the execution state.
    pub voltage: Voltage,
}

impl OperatingPoint {
    /// A new operating point.
    ///
    /// # Panics
    ///
    /// Panics on non-positive frequency or voltage.
    pub fn new(frequency: Frequency, voltage: Voltage) -> Self {
        assert!(
            frequency.value() > 0.0 && frequency.is_finite(),
            "operating point frequency must be positive"
        );
        assert!(
            voltage.as_volts() > 0.0 && voltage.is_finite(),
            "operating point voltage must be positive"
        );
        Self { frequency, voltage }
    }

    /// Relative dynamic power versus a reference point: `(V/V₀)²·(f/f₀)`.
    pub fn dynamic_power_ratio(&self, reference: &OperatingPoint) -> f64 {
        (self.voltage.squared() / reference.voltage.squared())
            * (self.frequency / reference.frequency)
    }

    /// Relative energy-per-cycle versus a reference point: `(V/V₀)²`.
    pub fn energy_per_cycle_ratio(&self, reference: &OperatingPoint) -> f64 {
        self.voltage.squared() / reference.voltage.squared()
    }
}

/// The four operating points of `ON1..ON4`, fastest first.
///
/// # Examples
///
/// ```
/// use dpm_power::{DvfsLadder, PowerState};
///
/// let ladder = DvfsLadder::default_cpu();
/// let on1 = ladder.point_for(PowerState::On1).unwrap();
/// let on4 = ladder.point_for(PowerState::On4).unwrap();
/// assert!(on1.frequency > on4.frequency);
/// assert!(on1.voltage > on4.voltage);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DvfsLadder {
    points: [OperatingPoint; 4],
}

impl DvfsLadder {
    /// A ladder from four points (`ON1` first).
    ///
    /// # Panics
    ///
    /// Panics unless both frequency and voltage strictly decrease from
    /// `ON1` to `ON4` (the paper's "decreasing speed and power").
    pub fn new(points: [OperatingPoint; 4]) -> Self {
        for w in points.windows(2) {
            assert!(
                w[0].frequency > w[1].frequency,
                "DVFS ladder frequencies must strictly decrease from ON1 to ON4"
            );
            assert!(
                w[0].voltage >= w[1].voltage,
                "DVFS ladder voltages must not increase from ON1 to ON4"
            );
        }
        Self { points }
    }

    /// The default ladder used throughout the workspace: a 200 MHz-class
    /// embedded core scaled 1.0×/0.75×/0.5×/0.25× with a 1.8 V → 1.2 V
    /// rail. The `ON4/ON1` energy-per-cycle ratio is `(1.2/1.8)² ≈ 0.44`,
    /// which is what makes the paper's ~55 % battery-Low saving possible.
    pub fn default_cpu() -> Self {
        Self::new([
            OperatingPoint::new(Frequency::from_mega_hertz(200.0), Voltage::from_volts(1.8)),
            OperatingPoint::new(Frequency::from_mega_hertz(150.0), Voltage::from_volts(1.6)),
            OperatingPoint::new(Frequency::from_mega_hertz(100.0), Voltage::from_volts(1.4)),
            OperatingPoint::new(Frequency::from_mega_hertz(50.0), Voltage::from_volts(1.2)),
        ])
    }

    /// The operating point of execution level `level`.
    #[inline]
    pub fn point(&self, level: OnLevel) -> OperatingPoint {
        self.points[(level.get() - 1) as usize]
    }

    /// The operating point for `state`, or `None` for sleep/off states.
    #[inline]
    pub fn point_for(&self, state: PowerState) -> Option<OperatingPoint> {
        state.on_level().map(|l| self.point(l))
    }

    /// The clock frequency of `state` (`None` for sleep/off states).
    #[inline]
    pub fn frequency(&self, state: PowerState) -> Option<Frequency> {
        self.point_for(state).map(|p| p.frequency)
    }

    /// The nominal (fastest) operating point, `ON1`.
    #[inline]
    pub fn nominal(&self) -> OperatingPoint {
        self.points[0]
    }

    /// Iterates `(state, point)` pairs, `ON1` first.
    pub fn iter(&self) -> impl Iterator<Item = (PowerState, OperatingPoint)> + '_ {
        PowerState::EXECUTION
            .iter()
            .copied()
            .zip(self.points.iter().copied())
    }

    /// Slowdown factor of `state` relative to `ON1` (`>= 1`).
    pub fn slowdown(&self, state: PowerState) -> Option<f64> {
        self.frequency(state).map(|f| self.nominal().frequency / f)
    }
}

impl Default for DvfsLadder {
    fn default() -> Self {
        Self::default_cpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_is_monotone() {
        let ladder = DvfsLadder::default_cpu();
        let freqs: Vec<f64> = ladder.iter().map(|(_, p)| p.frequency.value()).collect();
        assert!(freqs.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn slowdown_relative_to_on1() {
        let ladder = DvfsLadder::default_cpu();
        assert!((ladder.slowdown(PowerState::On1).unwrap() - 1.0).abs() < 1e-12);
        assert!((ladder.slowdown(PowerState::On4).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(ladder.slowdown(PowerState::Sl1), None);
    }

    #[test]
    fn dynamic_ratios_follow_cv2f() {
        let ladder = DvfsLadder::default_cpu();
        let on1 = ladder.nominal();
        let on4 = ladder.point(OnLevel::new(4));
        // (1.2/1.8)^2 * (50/200) = 0.4444 * 0.25
        assert!((on4.dynamic_power_ratio(&on1) - 0.4444444 * 0.25).abs() < 1e-6);
        assert!((on4.energy_per_cycle_ratio(&on1) - 0.4444444).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn non_monotone_frequency_rejected() {
        let p = |mhz: f64, v: f64| {
            OperatingPoint::new(Frequency::from_mega_hertz(mhz), Voltage::from_volts(v))
        };
        let _ = DvfsLadder::new([p(100.0, 1.8), p(150.0, 1.6), p(50.0, 1.4), p(25.0, 1.2)]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        let _ = OperatingPoint::new(Frequency::ZERO, Voltage::from_volts(1.0));
    }
}
