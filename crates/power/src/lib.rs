//! Power states, DVFS operating points, energy models and break-even
//! analysis for the DATE'05 dynamic power management architecture.
//!
//! The paper's Power State Machine follows the ACPI recommendation: one
//! soft-off state, four sleep states `SL1..SL4` and four execution states
//! `ON1..ON4` implementing the variable-voltage technique. This crate
//! provides:
//!
//! * [`PowerState`] — the nine-state ACPI-style state space, ordered by
//!   "wakefulness" (`SoftOff < SL4 < … < SL1 < ON4 < … < ON1`).
//! * [`OperatingPoint`] / [`DvfsLadder`] — the (frequency, voltage) pairs
//!   of the four execution states, with CMOS `C·V²·f` scaling.
//! * [`InstructionClass`] / [`InstructionMix`] — the paper associates "an
//!   average energy dissipation … to each power state and type of
//!   instructions the IP is executing"; instruction classes carry both an
//!   energy weight and a CPI (cycles per instruction).
//! * [`IpPowerModel`] — per-state active/idle/sleep power, per-instruction
//!   energy, and an optional temperature-dependent leakage term.
//! * [`TransitionTable`] — delay and energy cost of every state pair (the
//!   paper: "the DPM algorithm used considers the cost in terms of delay
//!   and power dissipation of the transition between two power states").
//! * [`break_even_time`] — the minimum idle time for which entering a
//!   sleep state saves energy, used by the LEM's sleep decision.
//! * [`EnergyMeter`] — piecewise-constant power integration with per-state
//!   attribution, feeding the battery/thermal models and the metrics.
//!
//! # Examples
//!
//! ```
//! use dpm_power::{IpPowerModel, PowerState, TransitionTable, break_even_time};
//!
//! let model = IpPowerModel::default_cpu();
//! let table = TransitionTable::for_model(&model);
//! let tbe = break_even_time(
//!     model.idle_power(PowerState::On1),
//!     model.state_power(PowerState::Sl2),
//!     table.cost(PowerState::On1, PowerState::Sl2),
//!     table.cost(PowerState::Sl2, PowerState::On1),
//! );
//! assert!(tbe > dpm_units::SimDuration::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakeven;
mod dvfs;
mod instr;
mod meter;
mod model;
mod state;
mod transition;

pub use breakeven::{break_even_time, BreakEvenEntry, BreakEvenTable};
pub use dvfs::{DvfsLadder, OperatingPoint};
pub use instr::{InstructionClass, InstructionMix};
pub use meter::EnergyMeter;
pub use model::{IpPowerModel, IpPowerModelBuilder, LeakageModel};
pub use state::{OnLevel, PowerState, SleepLevel, StateKind};
pub use transition::{TransitionCost, TransitionTable};
