//! Break-even analysis for sleep decisions.
//!
//! The paper (§1.3): *"This prediction is compared with the minimum time
//! for which the state switching guarantees a reduction of energy
//! dissipation, called break-even time."*

use dpm_units::{Energy, Power, SimDuration};

use crate::model::IpPowerModel;
use crate::state::PowerState;
use crate::transition::{TransitionCost, TransitionTable};

/// The minimum idle duration for which `hold → sleep → hold` dissipates
/// no more energy than simply holding.
///
/// With transition cost `E_tr` over `T_tr = T_down + T_up`:
///
/// * staying: `E_stay(T) = P_hold · T`
/// * sleeping: `E_sleep(T) = E_tr + P_sleep · (T − T_tr)` for `T ≥ T_tr`
///
/// The break-even time is where the two meet, never less than `T_tr`
/// itself. When the sleep state does not actually save power
/// (`P_sleep ≥ P_hold`), there is no finite break-even time and
/// [`SimDuration::MAX`] is returned.
///
/// # Examples
///
/// ```
/// use dpm_power::{break_even_time, IpPowerModel, PowerState, TransitionTable};
///
/// let m = IpPowerModel::default_cpu();
/// let t = TransitionTable::for_model(&m);
/// let tbe_light = break_even_time(
///     m.idle_power(PowerState::On1),
///     m.state_power(PowerState::Sl1),
///     t.cost(PowerState::On1, PowerState::Sl1),
///     t.cost(PowerState::Sl1, PowerState::On1),
/// );
/// let tbe_deep = break_even_time(
///     m.idle_power(PowerState::On1),
///     m.state_power(PowerState::Sl4),
///     t.cost(PowerState::On1, PowerState::Sl4),
///     t.cost(PowerState::Sl4, PowerState::On1),
/// );
/// assert!(tbe_deep > tbe_light, "deep sleep needs longer idle to pay off");
/// ```
pub fn break_even_time(
    hold_power: Power,
    sleep_power: Power,
    down: TransitionCost,
    up: TransitionCost,
) -> SimDuration {
    if hold_power <= sleep_power {
        return SimDuration::MAX;
    }
    let t_tr = down.latency + up.latency;
    let e_tr = down.energy + up.energy;
    let numerator = e_tr.as_joules() - sleep_power.as_watts() * t_tr.as_secs_f64();
    let denominator = (hold_power - sleep_power).as_watts();
    let t = (numerator / denominator).max(0.0);
    SimDuration::from_secs_f64(t).max(t_tr)
}

/// One sleep candidate with its break-even time and wake latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakEvenEntry {
    /// The candidate sleep (or off) state.
    pub state: PowerState,
    /// Minimum profitable idle duration.
    pub break_even: SimDuration,
    /// Latency to resume execution from this state.
    pub wake_latency: SimDuration,
    /// Round-trip transition time (`hold → state → hold`).
    pub transition_time: SimDuration,
    /// Round-trip transition energy.
    pub transition_energy: Energy,
    /// Hold power while parked in the state.
    pub sleep_power: Power,
}

impl BreakEvenEntry {
    /// Estimated energy of spending an idle period of length `idle` in
    /// this state (transition round trip plus residency).
    pub fn idle_energy(&self, idle: SimDuration) -> Energy {
        self.transition_energy + self.sleep_power * idle.saturating_sub(self.transition_time)
    }
}

/// Break-even times of every sleep state (and soft-off) from a given hold
/// state, used by the LEM to pick the deepest profitable sleep state.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakEvenTable {
    hold: PowerState,
    hold_power: Power,
    entries: Vec<BreakEvenEntry>,
}

impl BreakEvenTable {
    /// Computes the table for idling in `hold` (usually the ON state the
    /// IP would otherwise wait in).
    ///
    /// # Panics
    ///
    /// Panics if `hold` is not an execution state.
    pub fn compute(model: &IpPowerModel, transitions: &TransitionTable, hold: PowerState) -> Self {
        assert!(
            hold.is_execution(),
            "break-even tables are computed for execution states, got {hold}"
        );
        let hold_power = model.idle_power(hold);
        let mut entries = Vec::with_capacity(5);
        for state in PowerState::SLEEP.into_iter().chain([PowerState::SoftOff]) {
            let down = transitions.cost(hold, state);
            let up = transitions.cost(state, hold);
            let sleep_power = model.state_power(state);
            entries.push(BreakEvenEntry {
                state,
                break_even: break_even_time(hold_power, sleep_power, down, up),
                wake_latency: up.latency,
                transition_time: down.latency + up.latency,
                transition_energy: down.energy + up.energy,
                sleep_power,
            });
        }
        Self {
            hold,
            hold_power,
            entries,
        }
    }

    /// The hold state this table was computed for.
    pub fn hold_state(&self) -> PowerState {
        self.hold
    }

    /// All entries, lightest sleep first, soft-off last.
    pub fn entries(&self) -> &[BreakEvenEntry] {
        &self.entries
    }

    /// The most power-frugal state whose break-even time fits within
    /// `predicted_idle` and whose wake latency does not exceed
    /// `max_wake_latency` (if given). `None` means "stay awake".
    ///
    /// This is the paper's heuristic. It is *not* always energy-optimal:
    /// when a deep state's transition energy is large relative to the
    /// hold-power gap, a lighter state can beat it even for idles past
    /// the deep state's break-even — see
    /// [`cheapest_within`](Self::cheapest_within).
    pub fn deepest_within(
        &self,
        predicted_idle: SimDuration,
        max_wake_latency: Option<SimDuration>,
    ) -> Option<PowerState> {
        self.entries
            .iter()
            .rfind(|e| {
                e.break_even <= predicted_idle
                    && max_wake_latency.is_none_or(|max| e.wake_latency <= max)
            })
            .map(|e| e.state)
    }

    /// The state minimizing the *estimated energy* of an idle period of
    /// `predicted_idle` (round-trip transition energy plus residency),
    /// subject to the wake-latency cap. `None` means staying awake is the
    /// cheapest option. Extension over the paper's deepest-profitable
    /// heuristic.
    pub fn cheapest_within(
        &self,
        predicted_idle: SimDuration,
        max_wake_latency: Option<SimDuration>,
    ) -> Option<PowerState> {
        let stay_awake = self.hold_power * predicted_idle;
        self.entries
            .iter()
            .filter(|e| e.transition_time <= predicted_idle)
            .filter(|e| max_wake_latency.is_none_or(|max| e.wake_latency <= max))
            .map(|e| (e.state, e.idle_energy(predicted_idle)))
            .filter(|(_, energy)| *energy < stay_awake)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("energies are finite"))
            .map(|(state, _)| state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_units::Energy;

    fn setup() -> (IpPowerModel, TransitionTable) {
        let m = IpPowerModel::default_cpu();
        let t = TransitionTable::for_model(&m);
        (m, t)
    }

    #[test]
    fn break_even_never_below_transition_time() {
        let (m, t) = setup();
        for s in PowerState::SLEEP {
            let down = t.cost(PowerState::On1, s);
            let up = t.cost(s, PowerState::On1);
            let tbe = break_even_time(m.idle_power(PowerState::On1), m.state_power(s), down, up);
            assert!(tbe >= down.latency + up.latency, "{s}");
        }
    }

    #[test]
    fn useless_sleep_state_has_no_break_even() {
        let tbe = break_even_time(
            Power::from_milliwatts(1.0),
            Power::from_milliwatts(2.0), // "sleep" burns more than holding
            TransitionCost::FREE,
            TransitionCost::FREE,
        );
        assert_eq!(tbe, SimDuration::MAX);
    }

    #[test]
    fn zero_cost_transition_break_even_is_transition_time() {
        let tbe = break_even_time(
            Power::from_milliwatts(10.0),
            Power::ZERO,
            TransitionCost::FREE,
            TransitionCost::FREE,
        );
        assert_eq!(tbe, SimDuration::ZERO);
    }

    #[test]
    fn deeper_states_have_longer_break_even() {
        let (m, t) = setup();
        let table = BreakEvenTable::compute(&m, &t, PowerState::On1);
        let times: Vec<SimDuration> = table.entries().iter().map(|e| e.break_even).collect();
        for w in times.windows(2) {
            assert!(
                w[0] <= w[1],
                "break-even must not shrink with depth: {times:?}"
            );
        }
    }

    #[test]
    fn deepest_within_picks_correct_state() {
        let (m, t) = setup();
        let table = BreakEvenTable::compute(&m, &t, PowerState::On1);
        // A very short idle: nothing pays off.
        assert_eq!(
            table.deepest_within(SimDuration::from_micros(1), None),
            None
        );
        // A long idle: at least Sl2 pays off; result must be a sleep state
        // at least as deep as what a medium idle returns.
        let medium = table.deepest_within(SimDuration::from_millis(1), None);
        let long = table.deepest_within(SimDuration::from_secs(10), None);
        assert!(medium.is_some());
        assert!(long.is_some());
        assert!(long.unwrap() <= medium.unwrap(), "deeper == less wakeful");
    }

    #[test]
    fn wake_latency_constraint_limits_depth() {
        let (m, t) = setup();
        let table = BreakEvenTable::compute(&m, &t, PowerState::On1);
        let unconstrained = table.deepest_within(SimDuration::from_secs(10), None);
        let constrained = table.deepest_within(
            SimDuration::from_secs(10),
            Some(SimDuration::from_micros(50)),
        );
        assert!(unconstrained.unwrap() < constrained.unwrap_or(PowerState::On1));
        // with a 50 µs wake budget only Sl1 (10 µs wake) qualifies
        assert_eq!(constrained, Some(PowerState::Sl1));
    }

    #[test]
    #[should_panic(expected = "execution states")]
    fn table_from_sleep_state_rejected() {
        let (m, t) = setup();
        let _ = BreakEvenTable::compute(&m, &t, PowerState::Sl1);
    }

    #[test]
    fn cheapest_never_loses_to_deepest() {
        let (m, t) = setup();
        let table = BreakEvenTable::compute(&m, &t, PowerState::On1);
        for idle_us in [50u64, 200, 1_000, 5_000, 20_000, 100_000] {
            let idle = SimDuration::from_micros(idle_us);
            let cheapest = table.cheapest_within(idle, None);
            let deepest = table.deepest_within(idle, None);
            let energy_of = |s: Option<PowerState>| match s {
                Some(state) => table
                    .entries()
                    .iter()
                    .find(|e| e.state == state)
                    .unwrap()
                    .idle_energy(idle),
                None => m.idle_power(PowerState::On1) * idle,
            };
            assert!(
                energy_of(cheapest).as_joules() <= energy_of(deepest).as_joules() + 1e-15,
                "idle {idle}: cheapest {cheapest:?} must not lose to deepest {deepest:?}"
            );
        }
    }

    #[test]
    fn cheapest_beats_deepest_for_medium_idles() {
        // For ~10 ms idles the deep states' transition energy exceeds the
        // light states' residual hold energy, so the heuristics disagree —
        // the motivating case for the energy-optimal selector.
        let (m, t) = setup();
        let table = BreakEvenTable::compute(&m, &t, PowerState::On1);
        let idle = SimDuration::from_millis(10);
        let cheapest = table.cheapest_within(idle, None).unwrap();
        let deepest = table.deepest_within(idle, None).unwrap();
        assert!(
            cheapest > deepest,
            "cheapest {cheapest} should be lighter than deepest {deepest}"
        );
    }

    #[test]
    fn cheapest_declines_tiny_idles() {
        let (m, t) = setup();
        let table = BreakEvenTable::compute(&m, &t, PowerState::On1);
        assert_eq!(
            table.cheapest_within(SimDuration::from_micros(1), None),
            None
        );
        let _ = m;
    }

    #[test]
    fn manual_formula_crosscheck() {
        // P_hold = 100 mW, P_sleep = 10 mW, E_tr = 1 mJ, T_tr = 1 ms
        // T* = (1e-3 - 0.01*1e-3) / 0.09 = 11.0 ms
        let tbe = break_even_time(
            Power::from_milliwatts(100.0),
            Power::from_milliwatts(10.0),
            TransitionCost::new(SimDuration::from_micros(500), Energy::from_millijoules(0.5)),
            TransitionCost::new(SimDuration::from_micros(500), Energy::from_millijoules(0.5)),
        );
        assert!((tbe.as_secs_f64() - 0.011).abs() < 1e-9, "{tbe}");
    }
}
