//! Piecewise-constant energy integration with per-state attribution.

use dpm_units::{Energy, Power, SimTime};

use crate::state::PowerState;

/// Integrates a piecewise-constant power trace into energy, attributing
/// each slice to the power state the IP was in, plus impulse energies for
/// state transitions.
///
/// The owner calls [`set_power`](Self::set_power) /
/// [`set_state`](Self::set_state) at every change and
/// [`finish`](Self::finish) (or [`advance`](Self::advance)) before reading
/// totals.
///
/// # Examples
///
/// ```
/// use dpm_power::{EnergyMeter, PowerState};
/// use dpm_units::{Power, SimTime};
///
/// let mut meter = EnergyMeter::new(SimTime::ZERO, PowerState::On1, Power::from_watts(1.0));
/// meter.set_power(SimTime::from_millis(2), Power::from_watts(0.5));
/// meter.advance(SimTime::from_millis(4));
/// assert!((meter.total().as_joules() - 0.003).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMeter {
    last: SimTime,
    power: Power,
    state: PowerState,
    total: Energy,
    by_state: [Energy; 9],
    transition: Energy,
    transition_count: u64,
}

impl EnergyMeter {
    /// A meter starting at `t0` in `state` drawing `power`.
    pub fn new(t0: SimTime, state: PowerState, power: Power) -> Self {
        Self {
            last: t0,
            power,
            state,
            total: Energy::ZERO,
            by_state: [Energy::ZERO; 9],
            transition: Energy::ZERO,
            transition_count: 0,
        }
    }

    /// Integrates up to `now` with the current power/state.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last recorded instant.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now
            .checked_duration_since(self.last)
            .expect("energy meter driven backwards in time");
        if !dt.is_zero() {
            let e = self.power * dt;
            self.total += e;
            self.by_state[self.state.index()] += e;
            self.last = now;
        } else {
            self.last = now;
        }
    }

    /// Integrates up to `now`, then changes the drawn power.
    pub fn set_power(&mut self, now: SimTime, power: Power) {
        self.advance(now);
        self.power = power;
    }

    /// Integrates up to `now`, then changes state and power attribution.
    pub fn set_state(&mut self, now: SimTime, state: PowerState, power: Power) {
        self.advance(now);
        self.state = state;
        self.power = power;
    }

    /// Adds a transition impulse energy (counted in the total and in the
    /// separate transition bucket, not in any state's bucket).
    pub fn add_transition(&mut self, energy: Energy) {
        self.total += energy;
        self.transition += energy;
        self.transition_count += 1;
    }

    /// Integrates up to `now` and returns the grand total.
    pub fn finish(&mut self, now: SimTime) -> Energy {
        self.advance(now);
        self.total
    }

    /// Total energy so far (states + transitions), up to the last advance.
    pub fn total(&self) -> Energy {
        self.total
    }

    /// Energy attributed to `state`.
    pub fn by_state(&self, state: PowerState) -> Energy {
        self.by_state[state.index()]
    }

    /// Energy attributed to transitions.
    pub fn transition_energy(&self) -> Energy {
        self.transition
    }

    /// Number of transition impulses recorded.
    pub fn transition_count(&self) -> u64 {
        self.transition_count
    }

    /// The currently drawn power.
    pub fn current_power(&self) -> Power {
        self.power
    }

    /// The state currently attributed.
    pub fn current_state(&self) -> PowerState {
        self.state
    }

    /// Last instant integrated to.
    pub fn last_update(&self) -> SimTime {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_units::SimDuration;

    #[test]
    fn integrates_piecewise_constant_power() {
        let mut m = EnergyMeter::new(SimTime::ZERO, PowerState::On1, Power::from_watts(2.0));
        m.set_power(SimTime::from_secs(1), Power::from_watts(1.0));
        m.set_power(SimTime::from_secs(3), Power::ZERO);
        m.advance(SimTime::from_secs(10));
        assert!((m.total().as_joules() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn attributes_by_state() {
        let mut m = EnergyMeter::new(SimTime::ZERO, PowerState::On1, Power::from_watts(1.0));
        m.set_state(
            SimTime::from_secs(2),
            PowerState::Sl1,
            Power::from_watts(0.1),
        );
        m.advance(SimTime::from_secs(12));
        assert!((m.by_state(PowerState::On1).as_joules() - 2.0).abs() < 1e-12);
        assert!((m.by_state(PowerState::Sl1).as_joules() - 1.0).abs() < 1e-12);
        assert!((m.total().as_joules() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn transition_impulses_count_separately() {
        let mut m = EnergyMeter::new(SimTime::ZERO, PowerState::On1, Power::ZERO);
        m.add_transition(Energy::from_millijoules(5.0));
        m.add_transition(Energy::from_millijoules(3.0));
        assert!((m.transition_energy().as_joules() - 8e-3).abs() < 1e-15);
        assert_eq!(m.transition_count(), 2);
        assert!((m.total().as_joules() - 8e-3).abs() < 1e-15);
        assert_eq!(m.by_state(PowerState::On1), Energy::ZERO);
    }

    #[test]
    fn zero_duration_updates_are_free() {
        let mut m = EnergyMeter::new(SimTime::ZERO, PowerState::On1, Power::from_watts(5.0));
        m.set_power(SimTime::ZERO, Power::from_watts(1.0));
        m.set_power(SimTime::ZERO, Power::from_watts(2.0));
        assert_eq!(m.total(), Energy::ZERO);
        m.advance(SimTime::ZERO + SimDuration::from_secs(1));
        assert!((m.total().as_joules() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards in time")]
    fn time_reversal_is_detected() {
        let mut m = EnergyMeter::new(SimTime::from_secs(5), PowerState::On1, Power::ZERO);
        m.advance(SimTime::from_secs(4));
    }

    #[test]
    fn finish_is_advance_plus_total() {
        let mut m = EnergyMeter::new(SimTime::ZERO, PowerState::On2, Power::from_watts(1.5));
        let total = m.finish(SimTime::from_secs(2));
        assert!((total.as_joules() - 3.0).abs() < 1e-12);
        assert_eq!(m.current_state(), PowerState::On2);
        assert_eq!(m.last_update(), SimTime::from_secs(2));
    }
}
