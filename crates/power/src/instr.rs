//! Instruction classes and mixes.
//!
//! The paper (§1.2): *"During the power characterization of the IP an
//! average energy dissipation is associated to each power state and type
//! of instructions the IP is executing."* Instruction classes carry an
//! energy weight (relative switched capacitance) and a CPI so that task
//! duration and energy both depend on what the task executes.

use core::fmt;

/// A coarse instruction type, as produced by IP power characterization.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum InstructionClass {
    /// Arithmetic/logic operations: cheap, single cycle.
    Alu,
    /// Control flow: slightly more expensive (pipeline disruption).
    Control,
    /// Memory accesses: multi-cycle, high switching activity.
    Memory,
    /// I/O and bus transactions: slowest, most energy per instruction.
    Io,
}

impl InstructionClass {
    /// All classes.
    pub const ALL: [InstructionClass; 4] = [
        InstructionClass::Alu,
        InstructionClass::Control,
        InstructionClass::Memory,
        InstructionClass::Io,
    ];

    /// Dense index into [`InstructionClass::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            InstructionClass::Alu => 0,
            InstructionClass::Control => 1,
            InstructionClass::Memory => 2,
            InstructionClass::Io => 3,
        }
    }

    /// Relative switching-activity weight (energy per instruction scales
    /// with this; `Alu` is the 1.0 reference).
    #[inline]
    pub const fn activity_weight(self) -> f64 {
        match self {
            InstructionClass::Alu => 1.0,
            InstructionClass::Control => 1.2,
            InstructionClass::Memory => 1.9,
            InstructionClass::Io => 2.6,
        }
    }

    /// Average cycles per instruction of this class.
    #[inline]
    pub const fn cpi(self) -> f64 {
        match self {
            InstructionClass::Alu => 1.0,
            InstructionClass::Control => 1.5,
            InstructionClass::Memory => 3.0,
            InstructionClass::Io => 6.0,
        }
    }
}

impl fmt::Display for InstructionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstructionClass::Alu => "alu",
            InstructionClass::Control => "control",
            InstructionClass::Memory => "memory",
            InstructionClass::Io => "io",
        };
        f.write_str(s)
    }
}

/// A normalized blend of instruction classes describing a task.
///
/// # Examples
///
/// ```
/// use dpm_power::{InstructionClass, InstructionMix};
///
/// let mix = InstructionMix::new([0.6, 0.1, 0.25, 0.05]);
/// assert!((mix.fraction(InstructionClass::Alu) - 0.6).abs() < 1e-12);
/// assert!(mix.average_cpi() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InstructionMix {
    fractions: [f64; 4],
}

impl InstructionMix {
    /// A mix from per-class weights (`[alu, control, memory, io]`).
    /// Weights are normalized to sum to one.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative/NaN or all weights are zero.
    pub fn new(weights: [f64; 4]) -> Self {
        let sum: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && sum > 0.0,
            "instruction mix weights must be non-negative with a positive sum, got {weights:?}"
        );
        Self {
            fractions: weights.map(|w| w / sum),
        }
    }

    /// A pure single-class mix.
    pub fn pure(class: InstructionClass) -> Self {
        let mut w = [0.0; 4];
        w[class.index()] = 1.0;
        Self { fractions: w }
    }

    /// A typical compute-dominated mix.
    pub fn typical_compute() -> Self {
        Self::new([0.55, 0.15, 0.25, 0.05])
    }

    /// A memory/IO-heavy streaming mix.
    pub fn typical_streaming() -> Self {
        Self::new([0.25, 0.10, 0.40, 0.25])
    }

    /// Fraction of instructions in `class` (sums to 1 across classes).
    #[inline]
    pub fn fraction(&self, class: InstructionClass) -> f64 {
        self.fractions[class.index()]
    }

    /// Mix-weighted average activity weight.
    pub fn average_activity(&self) -> f64 {
        InstructionClass::ALL
            .iter()
            .map(|c| self.fraction(*c) * c.activity_weight())
            .sum()
    }

    /// Mix-weighted average CPI.
    pub fn average_cpi(&self) -> f64 {
        InstructionClass::ALL
            .iter()
            .map(|c| self.fraction(*c) * c.cpi())
            .sum()
    }
}

impl Default for InstructionMix {
    /// The compute-dominated mix.
    fn default() -> Self {
        Self::typical_compute()
    }
}

impl fmt::Display for InstructionMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alu {:.0}% / ctl {:.0}% / mem {:.0}% / io {:.0}%",
            self.fractions[0] * 100.0,
            self.fractions[1] * 100.0,
            self.fractions[2] * 100.0,
            self.fractions[3] * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_normalize() {
        let mix = InstructionMix::new([2.0, 2.0, 4.0, 2.0]);
        assert!((mix.fraction(InstructionClass::Memory) - 0.4).abs() < 1e-12);
        let total: f64 = InstructionClass::ALL.iter().map(|c| mix.fraction(*c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pure_mix_has_class_properties() {
        let mix = InstructionMix::pure(InstructionClass::Io);
        assert_eq!(mix.average_cpi(), InstructionClass::Io.cpi());
        assert_eq!(
            mix.average_activity(),
            InstructionClass::Io.activity_weight()
        );
    }

    #[test]
    fn heavier_classes_cost_more() {
        assert!(InstructionClass::Io.activity_weight() > InstructionClass::Alu.activity_weight());
        assert!(InstructionClass::Memory.cpi() > InstructionClass::Control.cpi());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = InstructionMix::new([1.0, -0.5, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_rejected() {
        let _ = InstructionMix::new([0.0; 4]);
    }

    #[test]
    fn streaming_is_heavier_than_compute() {
        let c = InstructionMix::typical_compute();
        let s = InstructionMix::typical_streaming();
        assert!(s.average_activity() > c.average_activity());
        assert!(s.average_cpi() > c.average_cpi());
    }
}
