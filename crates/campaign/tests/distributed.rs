//! Distributed-execution contract: any number of lease-coordinated
//! workers over one campaign directory produce the **byte-identical**
//! report of a single-process run, with the **same total work** (no cell
//! and no shared baseline simulated twice), and a worker dying
//! mid-campaign never loses a cell — survivors reclaim its stale lease
//! and complete it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dpm_campaign::{
    campaign_json, run_campaign_with, run_cells_with, run_worker, search_campaign, search_json,
    summarize, BatteryAxis, CampaignArchive, CampaignResult, CampaignSpec, ControllerAxis,
    LeaseConfig, LeaseRecord, Metric, Objective, RunStats, RunnerConfig, ScenarioSpec,
    SearchFidelity, SearchSpec, ThermalAxis, TuningAxis, WorkerOptions, WorkloadAxis,
    LEASE_VERSION,
};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory under the cargo-managed tmp dir.
fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "distributed-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_with(seeds: Vec<u64>) -> CampaignSpec {
    CampaignSpec {
        name: "distributed".into(),
        horizon_ms: 5,
        master_seed: 0xD157,
        initial_soc: 0.9,
        controllers: vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn],
        tunings: vec![TuningAxis::Paper],
        workloads: vec![WorkloadAxis::Low],
        seeds,
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool],
        ip_counts: vec![1],
    }
}

fn serial() -> RunnerConfig {
    RunnerConfig {
        threads: 1,
        ..RunnerConfig::default()
    }
}

fn fast_lease() -> LeaseConfig {
    LeaseConfig::for_process().with_poll_ms(1)
}

fn report_bytes(result: &CampaignResult) -> String {
    campaign_json(&summarize(result), Some(result)).expect("render json")
}

/// Overwrites a group's lease with a heartbeat frozen at the epoch — the
/// on-disk state a killed worker leaves behind (claim, no result).
fn kill_holder(archive: &CampaignArchive, group: usize, holder: &str) {
    let dead = LeaseRecord {
        lease_version: LEASE_VERSION,
        spec_fingerprint: archive.fingerprint(),
        group,
        holder: holder.into(),
        heartbeat_ms: 0,
    };
    std::fs::write(
        archive.lease_path(group),
        serde_json::to_string(&dead).expect("serialize lease"),
    )
    .expect("write stale lease");
}

#[test]
fn two_workers_split_the_grid_and_match_single_process_bytes() {
    let spec = spec_with(vec![1, 2, 3]);
    let cold = run_campaign_with(&spec, &serial(), None).expect("cold run");
    let reference = report_bytes(&cold.result);

    let dir = scratch_dir();
    let _ = CampaignArchive::open(&dir, &spec).expect("create campaign dir");
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let dir = dir.clone();
                scope.spawn(move || {
                    let options = WorkerOptions {
                        threads: 1,
                        dedup_baselines: true,
                        lease: fast_lease(),
                    };
                    run_worker(&dir, &options).expect("worker")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // every worker ends holding the complete, byte-identical campaign
    for outcome in &outcomes {
        assert_eq!(report_bytes(&outcome.run.result), reference);
    }
    // ... and the work sums to exactly the single-process totals: the
    // grid partitioned by baseline group, nothing simulated twice
    let mut sum = RunStats::default();
    for outcome in &outcomes {
        sum.absorb(&outcome.summary.stats);
    }
    assert_eq!(sum.executed_cells, spec.scenario_count());
    assert_eq!(sum.simulations, cold.stats.simulations);
    assert_eq!(sum.baseline_groups, cold.stats.baseline_groups);
    assert_eq!(sum.reused_baselines, cold.stats.reused_baselines);
    // cross-fed cells arrive via the archive
    assert_eq!(
        sum.archived_cells + sum.executed_cells,
        2 * spec.scenario_count()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_killed_workers_group_is_reclaimed_and_completed() {
    let spec = spec_with(vec![1, 2]);
    let cold = run_campaign_with(&spec, &serial(), None).expect("cold run");
    let reference = report_bytes(&cold.result);

    let dir = scratch_dir();
    let archive = CampaignArchive::open(&dir, &spec).expect("create campaign dir");
    // the doomed worker claims group 0, stores *none* of its cells
    // (killed mid-cell), and its heartbeat freezes in the past
    let doomed = fast_lease();
    let lease = archive
        .try_claim(0, &doomed)
        .expect("claim")
        .expect("group 0 free");
    kill_holder(&archive, lease.group(), &doomed.holder);
    drop(lease); // never released — the process is gone

    // a surviving worker must reclaim the stale lease and finish
    let survivor = WorkerOptions {
        threads: 1,
        dedup_baselines: true,
        lease: fast_lease(),
    };
    let outcome = run_worker(&dir, &survivor).expect("survivor drains the grid");
    assert_eq!(report_bytes(&outcome.run.result), reference);
    assert_eq!(outcome.summary.stats.executed_cells, spec.scenario_count());

    // the grid is fully archived and no lease (stale or live) remains
    let load = archive.load(&spec, &spec.expand());
    assert_eq!(load.loaded, spec.scenario_count());
    let gc = archive.gc(&spec, survivor.lease.ttl_ms).expect("gc");
    assert_eq!(gc.leases_active, 0);
    assert_eq!(gc.records_removed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// ROADMAP "lease heartbeat refresh mid-group": a group whose wall time
/// exceeds the lease TTL must never be reclaimed from its *living*
/// holder — the runner refreshes the heartbeat between cells (via the
/// per-unit hook, throttled to a quarter TTL), not only between chunks.
///
/// Three assertions pin the guarantee: a watcher polling the lease file
/// never observes it stale while the run is in flight; the heartbeat
/// visibly advances mid-group whenever the group outlives the throttle
/// interval; and a second, waiting worker absorbs every cell from the
/// archive instead of stealing the group (summed simulations equal the
/// single-process totals — a reclaim would duplicate them).
#[test]
fn slow_group_under_short_ttl_is_never_reclaimed_from_a_live_worker() {
    // one baseline group (every inner axis single-valued) of 8 cells,
    // with a horizon long enough that the whole group far outlives the
    // TTL on a loaded single-core runner while each individual cell
    // stays well inside it (~140ms/cell debug vs a 900ms TTL — a
    // mid-cell gap can never outlast the TTL short of a 6x stall, and
    // per-cell refreshes land every couple hundred ms)
    let spec = CampaignSpec {
        name: "slow_group".into(),
        horizon_ms: 2500,
        master_seed: 0x51_0C,
        initial_soc: 0.9,
        controllers: vec![
            ControllerAxis::Dpm,
            ControllerAxis::Timeout500us,
            ControllerAxis::Timeout2ms,
            ControllerAxis::Oracle,
        ],
        tunings: vec![TuningAxis::Paper, TuningAxis::Eager],
        workloads: vec![WorkloadAxis::High],
        seeds: vec![1],
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool],
        ip_counts: vec![1],
    };
    assert_eq!(spec.group_count(), 1);
    let ttl_ms = 900;
    let cold = run_campaign_with(&spec, &serial(), None).expect("cold run");

    let dir = scratch_dir();
    let archive = CampaignArchive::open(&dir, &spec).expect("create campaign dir");
    let lease_path = archive.lease_path(0);

    let (outcomes, stale_seen, heartbeats) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let spec = &spec;
                let archive = &archive;
                scope.spawn(move || {
                    let config = RunnerConfig {
                        threads: 2,
                        ..RunnerConfig::default()
                    }
                    .with_lease(
                        LeaseConfig::for_process()
                            .with_ttl_ms(ttl_ms)
                            .with_poll_ms(5),
                    );
                    let started = std::time::Instant::now();
                    let run = run_cells_with(spec, &spec.expand(), &config, Some(archive), None)
                        .expect("leased run");
                    (run, started.elapsed())
                })
            })
            .collect();

        // the watcher: sample the lease until both workers finish
        let mut stale_seen = false;
        let mut heartbeats: Vec<u64> = Vec::new();
        while !workers.iter().all(|w| w.is_finished()) {
            if matches!(
                archive.lease_state(0, ttl_ms),
                dpm_campaign::LeaseState::Stale
            ) {
                stale_seen = true;
            }
            if let Ok(text) = std::fs::read_to_string(&lease_path) {
                if let Ok(rec) = serde_json::from_str::<LeaseRecord>(&text) {
                    heartbeats.push(rec.heartbeat_ms);
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let outcomes: Vec<_> = workers
            .into_iter()
            .map(|w| w.join().expect("join worker"))
            .collect();
        (outcomes, stale_seen, heartbeats)
    });

    assert!(
        !stale_seen,
        "a live worker's lease must never be observed stale"
    );
    // whenever the *simulating* worker outlived half the TTL, some
    // refresh (per-cell hook or chunk boundary) must have fired and the
    // heartbeat must have visibly advanced mid-group
    let holder_wall = outcomes
        .iter()
        .filter(|(run, _)| run.stats.simulations > 0)
        .map(|(_, wall)| *wall)
        .max()
        .expect("one worker simulated the group");
    if holder_wall.as_millis() as u64 >= ttl_ms / 2 {
        let advanced = heartbeats
            .first()
            .is_some_and(|first| heartbeats.iter().any(|h| h > first));
        assert!(
            advanced,
            "heartbeat never advanced over a {}ms group (observed {} samples)",
            holder_wall.as_millis(),
            heartbeats.len(),
        );
    }
    // no reclaim ⇒ no duplicated work: exactly one worker simulated the
    // group, the other absorbed it from the archive
    let mut sum = RunStats::default();
    for (run, _) in &outcomes {
        assert_eq!(run.result, cold.result, "leased results must match cold");
        sum.absorb(&run.stats);
    }
    assert_eq!(sum.simulations, cold.stats.simulations);
    assert_eq!(sum.executed_cells, spec.scenario_count());
    assert_eq!(sum.baseline_groups, cold.stats.baseline_groups);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_coordinated_searches_share_one_climb() {
    let spec = spec_with(vec![1, 2, 3, 4]);
    let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 6);
    let reference = search_campaign(&spec, &search, &serial(), None).expect("reference search");
    let reference_bytes = search_json(&reference.report).expect("render");

    let dir = scratch_dir();
    let _ = CampaignArchive::open(&dir, &spec).expect("create campaign dir");
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let dir = dir.clone();
                let spec = &spec;
                let search = &search;
                scope.spawn(move || {
                    let archive = CampaignArchive::open(&dir, spec).expect("open archive");
                    let config = serial().with_lease(fast_lease());
                    search_campaign(spec, search, &config, Some(&archive)).expect("search")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let mut executed = 0;
    for outcome in &outcomes {
        assert_eq!(
            search_json(&outcome.report).expect("render"),
            reference_bytes,
            "coordinated searches must report byte-identically"
        );
        executed += outcome.stats.executed_cells;
    }
    // the climbs share the directory: each evaluated cell simulated once
    assert_eq!(executed, reference.stats.executed_cells);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Coarse work must be accounted exactly once across a coordinated
/// multi-fidelity search: the screening pass runs at coarse fidelity
/// under the same leases as the fine promotions, so the summed
/// `coarse_simulations` (like `simulations`) must equal the
/// single-process totals — a double-count or a dropped chunk sum would
/// break the parity either way.
#[test]
fn coordinated_multi_fidelity_work_sums_match_single_process() {
    let spec = spec_with(vec![1, 2, 3, 4]);
    let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 6)
        .with_fidelity(SearchFidelity::Multi);
    let reference = search_campaign(&spec, &search, &serial(), None).expect("reference search");
    let reference_bytes = search_json(&reference.report).expect("render");
    assert!(
        reference.stats.coarse_simulations > 0,
        "the screen must do coarse work for this parity to mean anything"
    );

    let dir = scratch_dir();
    let _ = CampaignArchive::open(&dir, &spec).expect("create campaign dir");
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let dir = dir.clone();
                let spec = &spec;
                let search = &search;
                scope.spawn(move || {
                    let archive = CampaignArchive::open(&dir, spec).expect("open archive");
                    let config = serial().with_lease(fast_lease());
                    search_campaign(spec, search, &config, Some(&archive)).expect("search")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let mut sum = RunStats::default();
    for outcome in &outcomes {
        assert_eq!(
            search_json(&outcome.report).expect("render"),
            reference_bytes,
            "coordinated multi-fidelity searches must report byte-identically"
        );
        sum.absorb(&outcome.stats);
    }
    // every screen and every promotion simulated exactly once between
    // the two searchers
    assert_eq!(sum.executed_cells, reference.stats.executed_cells);
    assert_eq!(sum.simulations, reference.stats.simulations);
    assert_eq!(sum.coarse_simulations, reference.stats.coarse_simulations);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `dpm search --workers N` end to end: the driver spawns its own
/// coordinated children and the report file it writes is byte-identical
/// to a single-process run of the same spec — the CLI counterpart of
/// the in-process coordination tests above, through the portfolio
/// strategy for good measure.
#[test]
fn cli_search_with_workers_matches_single_process_report_bytes() {
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let spec_path = dir.join("spec.toml");
    std::fs::write(
        &spec_path,
        "name = \"cli_workers\"\n\
         horizon_ms = 4\n\
         \n\
         [axes]\n\
         workloads = [\"low\", \"high\"]\n\
         seeds = [1, 2]\n\
         thermals = [\"cool\"]\n\
         ip_counts = [1]\n\
         \n\
         [search]\n\
         objective = \"energy_saving\"\n\
         budget = 6\n",
    )
    .expect("write spec");

    let run = |extra: &[&str], out: &std::path::Path| {
        let status = std::process::Command::new(env!("CARGO_BIN_EXE_dpm"))
            .arg("search")
            .arg(&spec_path)
            .args(["--strategy", "portfolio", "--format", "json"])
            .arg("--out")
            .arg(out)
            .args(extra)
            .status()
            .expect("spawn dpm");
        assert!(status.success(), "dpm search exited with {status}");
    };

    let single = dir.join("single.json");
    run(&[], &single);
    let pooled = dir.join("workers.json");
    run(
        &["--workers", "2", "--ttl-ms", "4000", "--poll-ms", "1"],
        &pooled,
    );

    let single_bytes = std::fs::read(&single).expect("read single report");
    let pooled_bytes = std::fs::read(&pooled).expect("read pooled report");
    assert_eq!(
        single_bytes, pooled_bytes,
        "--workers 2 must write the byte-identical report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One simulated worker of the interleaving model: it may hold one
/// lease at a time.
struct ModelWorker {
    lease_cfg: LeaseConfig,
    held: Option<dpm_campaign::WorkLease>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Any interleaving of claim / complete / crash over a small grid
    // never loses a cell and never double-counts one: summed RunStats
    // execute each cell exactly once, and the drained archive aggregates
    // byte-identically to a cold run.
    #[test]
    fn claim_complete_crash_interleavings_never_lose_or_double_count(
        ops in prop::collection::vec((0usize..2, 0usize..3, 0usize..4), 0..10),
    ) {
        let spec = spec_with(vec![1, 2]);
        let cells = spec.expand();
        let cold = run_campaign_with(&spec, &serial(), None).expect("cold run");
        let reference = report_bytes(&cold.result);

        let dir = scratch_dir();
        let archive = CampaignArchive::open(&dir, &spec).expect("create campaign dir");
        let mut workers: Vec<ModelWorker> = (0..2)
            .map(|_| ModelWorker { lease_cfg: fast_lease(), held: None })
            .collect();
        let mut executed_total = 0;

        for (w, action, group) in ops {
            let group = group % spec.group_count();
            match action {
                // claim: take the group's lease if free/stale and the
                // worker's hands are empty
                0 => {
                    if workers[w].held.is_none() {
                        workers[w].held = archive
                            .try_claim(group, &workers[w].lease_cfg)
                            .expect("claim io");
                    }
                }
                // complete: run the held group's missing cells, store
                // their records, release the lease
                1 => {
                    if let Some(lease) = workers[w].held.take() {
                        let missing: Vec<ScenarioSpec> = cells
                            .iter()
                            .filter(|c| {
                                spec.group_of(c.index) == lease.group()
                                    && archive.load_cell(&spec, c).is_none()
                            })
                            .copied()
                            .collect();
                        if !missing.is_empty() {
                            let run = run_cells_with(
                                &spec, &missing, &serial(), Some(&archive), None,
                            )
                            .expect("batch");
                            executed_total += run.stats.executed_cells;
                        }
                        archive.release(lease);
                    }
                }
                // crash: die with the lease in hand — the file stays,
                // the heartbeat never advances
                _ => {
                    if let Some(lease) = workers[w].held.take() {
                        kill_holder(&archive, lease.group(), &workers[w].lease_cfg.holder);
                        drop(lease);
                    }
                }
            }
        }
        // any survivor still holding a lease at the end dies too
        for w in &mut workers {
            if let Some(lease) = w.held.take() {
                kill_holder(&archive, lease.group(), &w.lease_cfg.holder);
                drop(lease);
            }
        }

        // a final worker drains whatever the interleaving left behind
        let drain = WorkerOptions {
            threads: 1,
            dedup_baselines: true,
            lease: fast_lease(),
        };
        let outcome = run_worker(&dir, &drain).expect("drain");
        executed_total += outcome.summary.stats.executed_cells;

        // no cell lost, none double-counted, bytes identical
        prop_assert_eq!(executed_total, spec.scenario_count());
        let load = archive.load(&spec, &cells);
        prop_assert_eq!(load.loaded, spec.scenario_count());
        prop_assert_eq!(load.skipped, 0);
        prop_assert_eq!(report_bytes(&outcome.run.result), reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
