//! Golden-report regression corpus: the text / markdown / json
//! renderings of `SearchReport` (climb + anneal + portfolio) and
//! `ParetoReport` on `specs/quick.toml` are checked in under
//! `tests/golden/` and diffed
//! byte-for-byte here, so report-format changes are always deliberate.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! DPM_UPDATE_GOLDEN=1 cargo test -p dpm-campaign --test golden
//! ```
//!
//! then review the diff like any other code change. The corpus also
//! pins simulation determinism end-to-end: a golden mismatch with no
//! renderer change means the *metrics* moved.

use std::path::{Path, PathBuf};

use dpm_campaign::{
    pareto_ascii, pareto_campaign, pareto_json, pareto_markdown, parse_campaign_toml, search_ascii,
    search_campaign, search_json, search_markdown, CampaignSpec, MultiObjective, ParetoSpec,
    RunnerConfig, SearchSpec, StrategyKind,
};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn quick_spec() -> (CampaignSpec, SearchSpec) {
    let text = std::fs::read_to_string(repo_path("specs/quick.toml")).expect("read quick.toml");
    let (spec, defaults) = parse_campaign_toml(&text).expect("parse quick.toml");
    let search = SearchSpec::new(
        defaults.objective.expect("quick.toml sets an objective"),
        defaults.budget.expect("quick.toml sets a budget"),
    );
    (spec, search)
}

/// Compares `rendered` against the checked-in golden file, or rewrites
/// it when `DPM_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("DPM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run with DPM_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == rendered,
        "{name} drifted from its golden rendering.\n\
         If the change is deliberate, regenerate with\n\
         DPM_UPDATE_GOLDEN=1 cargo test -p dpm-campaign --test golden\n\
         and review the diff.\n\
         ---- expected ----\n{expected}\n---- got ----\n{rendered}\n",
    );
}

#[test]
fn climb_search_report_matches_the_golden_corpus() {
    let (spec, search) = quick_spec();
    let outcome =
        search_campaign(&spec, &search, &RunnerConfig::default(), None).expect("climb search");
    assert_golden("search-quick.txt", &search_ascii(&outcome.report));
    assert_golden("search-quick.md", &search_markdown(&outcome.report));
    assert_golden("search-quick.json", &search_json(&outcome.report).unwrap());
}

#[test]
fn anneal_search_report_matches_the_golden_corpus() {
    let (spec, search) = quick_spec();
    let search = search.with_strategy(StrategyKind::Anneal);
    let outcome =
        search_campaign(&spec, &search, &RunnerConfig::default(), None).expect("anneal search");
    assert_golden("anneal-quick.txt", &search_ascii(&outcome.report));
    assert_golden("anneal-quick.md", &search_markdown(&outcome.report));
    assert_golden("anneal-quick.json", &search_json(&outcome.report).unwrap());
}

#[test]
fn portfolio_search_report_matches_the_golden_corpus() {
    let (spec, search) = quick_spec();
    let search = search.with_strategy(StrategyKind::Portfolio);
    let outcome =
        search_campaign(&spec, &search, &RunnerConfig::default(), None).expect("portfolio search");
    assert_golden("portfolio-quick.txt", &search_ascii(&outcome.report));
    assert_golden("portfolio-quick.md", &search_markdown(&outcome.report));
    assert_golden(
        "portfolio-quick.json",
        &search_json(&outcome.report).unwrap(),
    );
}

#[test]
fn pareto_report_matches_the_golden_corpus() {
    let (spec, search) = quick_spec();
    let pareto = ParetoSpec::new(
        MultiObjective::parse("energy_saving,min:delay").expect("objectives"),
        search.budget,
    );
    let outcome =
        pareto_campaign(&spec, &pareto, &RunnerConfig::default(), None).expect("pareto search");
    assert_golden("pareto-quick.txt", &pareto_ascii(&outcome.report));
    assert_golden("pareto-quick.md", &pareto_markdown(&outcome.report));
    assert_golden("pareto-quick.json", &pareto_json(&outcome.report).unwrap());
}
