//! Archive round-trip contract: resuming a campaign from any partial
//! archive yields the **byte-identical** aggregate a cold run produces,
//! for any thread count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dpm_campaign::{
    campaign_json, run_campaign_with, summarize, BatteryAxis, CampaignArchive, CampaignResult,
    CampaignSpec, ControllerAxis, RunnerConfig, ThermalAxis, TuningAxis, WorkloadAxis,
};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory under the cargo-managed tmp dir.
fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "resume-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_with(master_seed: u64, seeds: Vec<u64>, two_controllers: bool) -> CampaignSpec {
    CampaignSpec {
        name: "resume".into(),
        horizon_ms: 6,
        master_seed,
        initial_soc: 0.9,
        controllers: if two_controllers {
            vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn]
        } else {
            vec![ControllerAxis::Dpm]
        },
        tunings: vec![TuningAxis::Paper],
        workloads: vec![WorkloadAxis::Low],
        seeds,
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool],
        ip_counts: vec![1],
    }
}

fn config(threads: usize) -> RunnerConfig {
    RunnerConfig {
        threads,
        ..RunnerConfig::default()
    }
}

fn archive_bytes(result: &CampaignResult) -> String {
    campaign_json(&summarize(result), Some(result)).expect("render json")
}

/// Cold-runs `spec`, seeds an archive with the cells selected by `keep`,
/// then resumes on each requested thread count and checks byte equality.
fn check_resume(spec: &CampaignSpec, keep: impl Fn(usize) -> bool) {
    let cold = run_campaign_with(spec, &config(1), None).expect("cold run");
    let reference = archive_bytes(&cold.result);

    // fresh archive per thread count: a resume *writes back* the cells it
    // completes, so a shared directory would fill up after the first pass
    for threads in [1, 2, 8] {
        let dir = scratch_dir();
        let archive = CampaignArchive::open(&dir, spec).expect("open archive");
        let mut kept = 0;
        for (i, r) in cold.result.results.iter().enumerate() {
            if keep(i) {
                archive.store(spec, r).expect("store cell");
                kept += 1;
            }
        }

        let resumed =
            run_campaign_with(spec, &config(threads), Some(&archive)).expect("resumed run");
        assert_eq!(resumed.stats.archived_cells, kept);
        assert_eq!(
            resumed.stats.executed_cells,
            spec.scenario_count() - kept,
            "resume must run exactly the missing cells"
        );
        assert_eq!(
            archive_bytes(&resumed.result),
            reference,
            "resume on {threads} threads (archive hits: {kept}) diverged from the cold run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_from_empty_partial_and_full_archives() {
    let spec = spec_with(0xDA7E_2005, vec![1, 2, 3], true);
    check_resume(&spec, |_| false); // empty archive: everything fresh
    check_resume(&spec, |i| i % 2 == 0); // every other cell archived
    check_resume(&spec, |_| true); // full archive: zero simulations
}

#[test]
fn fully_archived_resume_runs_no_simulations() {
    let spec = spec_with(3, vec![4, 5], true);
    let cold = run_campaign_with(&spec, &config(1), None).unwrap();
    let dir = scratch_dir();
    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    for r in &cold.result.results {
        archive.store(&spec, r).unwrap();
    }
    let resumed = run_campaign_with(&spec, &config(2), Some(&archive)).unwrap();
    assert_eq!(resumed.stats.simulations, 0);
    assert_eq!(resumed.stats.baseline_groups, 0);
    assert_eq!(resumed.result, cold.result);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_leaves_a_resumable_archive() {
    // a "killed" sweep is modeled by archiving only a prefix of the grid;
    // the resumed run must also *write back* the cells it completes
    let spec = spec_with(9, vec![1, 2], true);
    let cold = run_campaign_with(&spec, &config(1), None).unwrap();
    let dir = scratch_dir();
    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    for r in cold.result.results.iter().take(2) {
        archive.store(&spec, r).unwrap();
    }
    let first = run_campaign_with(&spec, &config(1), Some(&archive)).unwrap();
    assert!(first.stats.simulations > 0);
    // second resume: everything already on disk
    let second = run_campaign_with(&spec, &config(4), Some(&archive)).unwrap();
    assert_eq!(second.stats.simulations, 0);
    assert_eq!(second.result, cold.result);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn broken_archive_mid_run_keeps_the_results() {
    // the archive dir breaks after open (segments/ blocked by a file,
    // so the writer can neither create the directory nor a segment):
    // stores fail, but the run still returns complete, correct results
    let spec = spec_with(21, vec![1], true);
    let dir = scratch_dir();
    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    let _ = std::fs::remove_dir_all(dir.join("segments"));
    std::fs::write(dir.join("segments"), "in the way").unwrap();

    let run = run_campaign_with(&spec, &config(2), Some(&archive)).unwrap();
    assert!(!run.archive_errors.is_empty(), "store failures surface");
    let cold = run_campaign_with(&spec, &config(1), None).unwrap();
    assert_eq!(run.result, cold.result, "results survive archive failure");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Any spec, any archived subset, 1/2/8 threads: the aggregate is
    // byte-identical to a cold run.
    #[test]
    fn archive_round_trip_matches_cold_run(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 1..3),
        two_controllers in prop::sample::select(vec![false, true]),
        keep_mask in prop::bits::u8::masked(0b1111_1111),
    ) {
        let spec = spec_with(master, seeds, two_controllers);
        check_resume(&spec, |i| keep_mask & (1 << (i % 8)) != 0);
    }
}
