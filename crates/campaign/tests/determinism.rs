//! The campaign engine's load-bearing property: identical spec + master
//! seed ⇒ **byte-identical** aggregated output, regardless of how many
//! threads execute the sweep.

use dpm_campaign::{
    campaign_json, run_campaign, summarize, BatteryAxis, CampaignSpec, ControllerAxis,
    RunnerConfig, ThermalAxis, TuningAxis, WorkloadAxis,
};
use proptest::prelude::*;

fn spec_with(master_seed: u64, seeds: Vec<u64>, two_controllers: bool) -> CampaignSpec {
    CampaignSpec {
        name: "determinism".into(),
        horizon_ms: 6,
        master_seed,
        initial_soc: 0.9,
        controllers: if two_controllers {
            vec![ControllerAxis::Dpm, ControllerAxis::Oracle]
        } else {
            vec![ControllerAxis::Dpm]
        },
        tunings: vec![TuningAxis::Paper],
        workloads: vec![WorkloadAxis::Low],
        seeds,
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool],
        ip_counts: vec![1],
    }
}

fn archive_bytes(spec: &CampaignSpec, threads: usize) -> String {
    let result = run_campaign(
        spec,
        &RunnerConfig {
            threads,
            ..RunnerConfig::default()
        },
    );
    let summary = summarize(&result);
    campaign_json(&summary, Some(&result)).expect("render json")
}

#[test]
fn thread_count_never_changes_the_archive() {
    let spec = spec_with(0xDA7E_2005, vec![1, 2, 3], true);
    let reference = archive_bytes(&spec, 1);
    for threads in [2, 3, 4, 8] {
        assert_eq!(
            archive_bytes(&spec, threads),
            reference,
            "thread count {threads} changed the aggregated output"
        );
    }
}

#[test]
fn repeated_runs_are_identical() {
    let spec = spec_with(7, vec![5], false);
    assert_eq!(archive_bytes(&spec, 4), archive_bytes(&spec, 4));
}

#[test]
fn different_master_seeds_change_the_traces() {
    let a = archive_bytes(&spec_with(1, vec![1], false), 1);
    let b = archive_bytes(&spec_with(2, vec![1], false), 1);
    assert_ne!(a, b, "master seed must reach the workload generators");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Randomized master seeds and seed-axis contents: serial and
    // 4-thread execution must agree byte for byte.
    #[test]
    fn determinism_holds_for_arbitrary_master_seeds(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 1..3),
    ) {
        let spec = spec_with(master, seeds, false);
        prop_assert_eq!(archive_bytes(&spec, 1), archive_bytes(&spec, 4));
    }
}
