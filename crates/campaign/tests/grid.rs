//! Grid-expansion contract: axis counts multiply, labels and names
//! round-trip, and the TOML form re-expands to the same grid.

use dpm_campaign::{
    BatteryAxis, CampaignSpec, ControllerAxis, ScenarioSpec, ThermalAxis, TuningAxis, WorkloadAxis,
};

fn full_spec() -> CampaignSpec {
    CampaignSpec {
        name: "grid".into(),
        horizon_ms: 10,
        master_seed: 99,
        initial_soc: 0.5,
        controllers: vec![
            ControllerAxis::Dpm,
            ControllerAxis::AlwaysOn,
            ControllerAxis::Oracle,
        ],
        tunings: vec![TuningAxis::Paper, TuningAxis::NoSleep],
        workloads: vec![WorkloadAxis::Low, WorkloadAxis::High, WorkloadAxis::PaperA],
        seeds: vec![1, 2],
        batteries: vec![BatteryAxis::Linear, BatteryAxis::Kibam],
        thermals: vec![ThermalAxis::Cool, ThermalAxis::Hot],
        ip_counts: vec![1, 2, 4],
    }
}

#[test]
fn axis_counts_multiply() {
    let spec = full_spec();
    let expected = 3 * 2 * 3 * 2 * 2 * 2 * 3;
    assert_eq!(spec.scenario_count(), expected);
    let cells = spec.expand();
    assert_eq!(cells.len(), expected);
    // indices are the expansion positions
    for (i, c) in cells.iter().enumerate() {
        assert_eq!(c.index, i);
    }
}

#[test]
fn every_axis_combination_appears_exactly_once() {
    let spec = full_spec();
    let cells = spec.expand();
    let mut keys: Vec<(usize, usize, usize, u64, usize, usize, usize)> = cells
        .iter()
        .map(|c| {
            (
                spec.controllers
                    .iter()
                    .position(|x| *x == c.controller)
                    .unwrap(),
                spec.tunings.iter().position(|x| *x == c.tuning).unwrap(),
                spec.workloads
                    .iter()
                    .position(|x| *x == c.workload)
                    .unwrap(),
                c.seed,
                spec.batteries.iter().position(|x| *x == c.battery).unwrap(),
                spec.thermals.iter().position(|x| *x == c.thermal).unwrap(),
                c.ip_count,
            )
        })
        .collect();
    keys.sort();
    let before = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), before, "no duplicated cells");
}

#[test]
fn labels_encode_every_axis_and_round_trip() {
    let spec = full_spec();
    for cell in spec.expand() {
        let label = cell.label();
        // every axis value is present in the label...
        assert!(
            label.contains(&format!("ctrl={}", cell.controller.label())),
            "{label}"
        );
        assert!(
            label.contains(&format!("tune={}", cell.tuning.label())),
            "{label}"
        );
        assert!(
            label.contains(&format!("wl={}", cell.workload.label())),
            "{label}"
        );
        assert!(label.contains(&format!("seed={}", cell.seed)), "{label}");
        assert!(
            label.contains(&format!("batt={}", cell.battery.label())),
            "{label}"
        );
        assert!(
            label.contains(&format!("therm={}", cell.thermal.label())),
            "{label}"
        );
        assert!(label.contains(&format!("ips={}", cell.ip_count)), "{label}");
        // ...and each axis name parses back to the same value
        assert_eq!(
            ControllerAxis::parse(cell.controller.label()).unwrap(),
            cell.controller
        );
        assert_eq!(TuningAxis::parse(cell.tuning.label()).unwrap(), cell.tuning);
        assert_eq!(
            WorkloadAxis::parse(cell.workload.label()).unwrap(),
            cell.workload
        );
        assert_eq!(
            BatteryAxis::parse(cell.battery.label()).unwrap(),
            cell.battery
        );
        assert_eq!(
            ThermalAxis::parse(cell.thermal.label()).unwrap(),
            cell.thermal
        );
    }
}

#[test]
fn labels_are_unique() {
    let cells = full_spec().expand();
    let mut labels: Vec<String> = cells.iter().map(ScenarioSpec::label).collect();
    labels.sort();
    let before = labels.len();
    labels.dedup();
    assert_eq!(labels.len(), before);
}

#[test]
fn toml_round_trip_preserves_the_grid() {
    let spec = full_spec();
    let reparsed = CampaignSpec::from_toml(&spec.to_toml()).unwrap();
    assert_eq!(reparsed, spec);
    assert_eq!(reparsed.expand(), spec.expand());
}
