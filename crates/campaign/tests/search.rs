//! Search contract: the adaptive climber finds the exhaustive-campaign
//! argmax while running measurably fewer simulations, degenerates to the
//! exhaustive winner when the budget covers the grid, and its report is
//! **byte-identical** across thread counts and archived/fresh mixes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dpm_campaign::{
    run_campaign_with, search_campaign, search_json, BatteryAxis, CampaignArchive, CampaignSpec,
    Constraint, ControllerAxis, Metric, Objective, RunnerConfig, SearchSpec, ThermalAxis,
    TuningAxis, WorkloadAxis,
};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "search-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(threads: usize) -> RunnerConfig {
    RunnerConfig {
        threads,
        ..RunnerConfig::default()
    }
}

/// A 64-cell grid (4 controllers × 2 tunings × 2 workloads × 2 seeds ×
/// 2 thermals) — big enough that a 40-evaluation search is a real
/// saving over sweeping it.
fn grid64() -> CampaignSpec {
    CampaignSpec {
        name: "search64".into(),
        horizon_ms: 5,
        master_seed: 0x5EA2_C805,
        initial_soc: 0.9,
        controllers: vec![
            ControllerAxis::Dpm,
            ControllerAxis::Timeout500us,
            ControllerAxis::Timeout2ms,
            ControllerAxis::Oracle,
        ],
        tunings: vec![TuningAxis::Paper, TuningAxis::Eager],
        workloads: vec![WorkloadAxis::Low, WorkloadAxis::High],
        seeds: vec![1, 2],
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool, ThermalAxis::Hot],
        ip_counts: vec![1],
    }
}

fn small_spec(master_seed: u64, seeds: Vec<u64>, two_controllers: bool) -> CampaignSpec {
    CampaignSpec {
        name: "search_small".into(),
        horizon_ms: 6,
        master_seed,
        initial_soc: 0.9,
        controllers: if two_controllers {
            vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn]
        } else {
            vec![ControllerAxis::Dpm]
        },
        tunings: vec![TuningAxis::Paper],
        workloads: vec![WorkloadAxis::Low],
        seeds,
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool],
        ip_counts: vec![1],
    }
}

#[test]
fn search_matches_exhaustive_argmax_with_fewer_simulations() {
    let spec = grid64();
    let objective = Objective::for_metric(Metric::EnergySavingPct);

    let exhaustive = run_campaign_with(&spec, &config(0), None).expect("exhaustive sweep");
    let reference = objective
        .argbest(&exhaustive.result.results)
        .expect("grid has successful cells")
        .scenario
        .index;

    let search = SearchSpec::new(objective, 40);
    let outcome = search_campaign(&spec, &search, &config(0), None).expect("search");
    let best = outcome.report.best.as_ref().expect("search found a best");

    assert_eq!(
        best.index, reference,
        "search must find the exhaustive winner"
    );
    assert!(outcome.report.evaluated <= 40);
    assert!(
        outcome.stats.simulations < exhaustive.stats.simulations,
        "search must run measurably fewer simulations: {} vs {}",
        outcome.stats.simulations,
        exhaustive.stats.simulations,
    );
}

#[test]
fn constrained_search_matches_the_constrained_exhaustive_winner() {
    let spec = grid64();
    // bound the delay overhead at the exhaustive median so the
    // constraint genuinely excludes cells, whatever the platform's
    // floating point does
    let exhaustive = run_campaign_with(&spec, &config(0), None).unwrap();
    let median =
        dpm_campaign::metric_stat_where(&exhaustive.result, Metric::DelayOverheadPct, |_| true)
            .percentile(50.0);
    let objective = Objective::for_metric(Metric::EnergySavingPct).with_constraint(Constraint {
        metric: Metric::DelayOverheadPct,
        op: dpm_campaign::ConstraintOp::Le,
        bound: median,
    });
    let reference = objective.argbest(&exhaustive.result.results).unwrap();
    assert!(
        objective.score(reference).unwrap().feasible,
        "some cell satisfies the median bound by construction"
    );

    // a full-budget search must land on the same constrained winner
    let search = SearchSpec::new(objective, spec.scenario_count());
    let outcome = search_campaign(&spec, &search, &config(0), None).unwrap();
    let best = outcome.report.best.as_ref().unwrap();
    assert_eq!(best.index, reference.scenario.index);
    assert!(best.feasible);
}

#[test]
fn repeated_resume_search_runs_zero_fresh_simulations() {
    let spec = grid64();
    let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 24);
    let dir = scratch_dir();

    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    let first = search_campaign(&spec, &search, &config(2), Some(&archive)).unwrap();
    assert!(first.stats.simulations > 0);
    assert!(first.archive_errors.is_empty());

    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    let second = search_campaign(&spec, &search, &config(4), Some(&archive)).unwrap();
    assert_eq!(
        second.stats.simulations, 0,
        "the campaign directory is a complete result cache for the search"
    );
    assert_eq!(second.stats.archived_cells, second.report.evaluated);
    assert_eq!(
        search_json(&second.report).unwrap(),
        search_json(&first.report).unwrap(),
        "cached and fresh searches must render byte-identical reports"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // With budget >= grid size the search *is* an exhaustive sweep:
    // same winner as the campaign argmax, every cell evaluated.
    #[test]
    fn full_budget_search_equals_exhaustive_argmax(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 1..4),
        two_controllers in prop::sample::select(vec![false, true]),
        metric in prop::sample::select(vec![
            Metric::EnergySavingPct,
            Metric::EnergyJ,
            Metric::MeanLatencyUs,
            Metric::LowPowerFrac,
        ]),
        extra_budget in 0usize..3,
    ) {
        let spec = small_spec(master, seeds, two_controllers);
        let objective = Objective::for_metric(metric);
        let exhaustive = run_campaign_with(&spec, &config(1), None).unwrap();
        let reference = objective.argbest(&exhaustive.result.results).unwrap();

        let search = SearchSpec::new(objective, spec.scenario_count() + extra_budget);
        let outcome = search_campaign(&spec, &search, &config(1), None).unwrap();
        prop_assert_eq!(outcome.report.evaluated, spec.scenario_count());
        let best = outcome.report.best.as_ref().unwrap();
        prop_assert_eq!(best.index, reference.scenario.index);
        prop_assert_eq!(&best.metrics, reference.metrics.as_ref().unwrap());
    }

    // The report is byte-identical on 1/2/8 threads and for any
    // archived/fresh mix of cells.
    #[test]
    fn search_report_is_byte_deterministic(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 2..4),
        budget in 1usize..9,
        keep_mask in prop::bits::u8::masked(0b1111_1111),
    ) {
        let spec = small_spec(master, seeds, true);
        let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), budget);
        let reference = search_json(
            &search_campaign(&spec, &search, &config(1), None).unwrap().report,
        ).unwrap();

        for threads in [2, 8] {
            let report = search_campaign(&spec, &search, &config(threads), None).unwrap().report;
            prop_assert_eq!(
                &search_json(&report).unwrap(),
                &reference,
                "threads={} diverged", threads
            );
        }

        // pre-archive an arbitrary subset of the exhaustive results and
        // re-search: identical bytes again
        let exhaustive = run_campaign_with(&spec, &config(1), None).unwrap();
        let dir = scratch_dir();
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        for (i, r) in exhaustive.result.results.iter().enumerate() {
            if keep_mask & (1 << (i % 8)) != 0 {
                archive.store(&spec, r).unwrap();
            }
        }
        let mixed = search_campaign(&spec, &search, &config(2), Some(&archive)).unwrap();
        prop_assert_eq!(
            &search_json(&mixed.report).unwrap(),
            &reference,
            "archived/fresh mix diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
