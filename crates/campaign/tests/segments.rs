//! Segment-store contract: records round-trip bit-identically through
//! the append-only segment files, torn tails re-run exactly the cell
//! they hid, and legacy per-cell-JSON archives resume (and compact)
//! with zero fresh simulations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dpm_campaign::{
    campaign_json, run_campaign_with, summarize, BatteryAxis, CampaignArchive, CampaignResult,
    CampaignSpec, ControllerAxis, LeaseConfig, LeaseRecord, RunnerConfig, ScenarioMetrics,
    ScenarioResult, ThermalAxis, TuningAxis, WorkloadAxis, LEASE_VERSION,
};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "segments-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_with(seeds: Vec<u64>) -> CampaignSpec {
    CampaignSpec {
        name: "segments".into(),
        horizon_ms: 6,
        master_seed: 0x5E6_2005,
        initial_soc: 0.9,
        controllers: vec![ControllerAxis::Dpm],
        tunings: vec![TuningAxis::Paper],
        workloads: vec![WorkloadAxis::Low],
        seeds,
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool],
        ip_counts: vec![1],
    }
}

fn config(threads: usize) -> RunnerConfig {
    RunnerConfig {
        threads,
        ..RunnerConfig::default()
    }
}

fn archive_bytes(result: &CampaignResult) -> String {
    campaign_json(&summarize(result), Some(result)).expect("render json")
}

/// A synthetic result for one grid cell, its metrics derived from an
/// arbitrary bag of floats — the payloads never see a simulator, so the
/// round-trip is tested on arbitrary bit patterns, not just the ones
/// the kernel happens to produce.
fn synthetic_result(
    spec: &CampaignSpec,
    index: usize,
    floats: &[f64],
    ints: &[usize],
) -> ScenarioResult {
    let f = |i: usize| floats[i % floats.len()];
    let n = |i: usize| ints[i % ints.len()];
    ScenarioResult {
        scenario: spec.cell_at(index),
        metrics: Some(ScenarioMetrics {
            completed: n(0),
            total_tasks: n(1),
            deferred: n(2),
            energy_j: f(0),
            baseline_energy_j: f(1),
            energy_saving_pct: f(2),
            temp_reduction_pct: f(3),
            delay_overhead_pct: f(4),
            mean_latency_us: f(5),
            max_temp_c: f(6),
            final_soc: f(7),
            low_power_frac: f(8),
        }),
        error: None,
    }
}

/// The single segment file of an archive that had exactly one writer.
fn only_segment(dir: &std::path::Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir.join("segments"))
        .expect("segments dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().ends_with(".log"))
        .collect();
    assert_eq!(segments.len(), 1, "one writer allocates one segment");
    segments.pop().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Arbitrary cell payloads -> append -> reopen: the rebuilt index
    // serves every record, and the loaded results (and their rendered
    // bytes) are identical to what was stored — before and after
    // compaction.
    #[test]
    fn segment_records_round_trip(
        cell_count in 1usize..10,
        floats in prop::collection::vec(
            // spread draws across wildly different magnitudes — including
            // subnormals — so the round-trip is exercised on bit patterns
            // the simulator itself would never produce
            (0u8..4, -1.0f64..1.0).prop_map(|(scale, v)| match scale {
                0 => v,
                1 => v * 1.0e18,
                2 => v * 1.0e-300,
                _ => v * f64::MIN_POSITIVE,
            }),
            1..12,
        ),
        ints in prop::collection::vec(0usize..1_000_000, 1..4),
    ) {
        let spec = spec_with((1..=cell_count as u64).collect());
        let dir = scratch_dir();
        let stored: Vec<ScenarioResult> = (0..spec.scenario_count())
            .map(|i| synthetic_result(&spec, i, &floats, &ints))
            .collect();
        {
            let archive = CampaignArchive::open(&dir, &spec).expect("open");
            for r in &stored {
                archive.store(&spec, r).expect("store");
            }
        }
        // reopen: the index is rebuilt from the segment scan alone
        let reopened = CampaignArchive::open(&dir, &spec).expect("reopen");
        let load = reopened.load(&spec, &spec.expand());
        prop_assert_eq!(load.loaded, stored.len());
        prop_assert_eq!(load.skipped, 0);
        let loaded: Vec<ScenarioResult> =
            load.slots.into_iter().map(Option::unwrap).collect();
        prop_assert_eq!(&loaded, &stored);
        let result = |results: Vec<ScenarioResult>| CampaignResult {
            name: spec.name.clone(),
            horizon_ms: spec.horizon_ms,
            master_seed: spec.master_seed,
            results,
        };
        let reference = archive_bytes(&result(stored.clone()));
        prop_assert_eq!(&archive_bytes(&result(loaded)), &reference);
        // compaction preserves every byte of the rendered aggregate
        let report = reopened.compact(&spec).expect("compact");
        prop_assert_eq!(report.records, stored.len());
        let recompacted = CampaignArchive::open(&dir, &spec).expect("reopen after compact");
        let load = recompacted.load(&spec, &spec.expand());
        prop_assert_eq!(load.loaded, stored.len());
        let loaded: Vec<ScenarioResult> =
            load.slots.into_iter().map(Option::unwrap).collect();
        prop_assert_eq!(&archive_bytes(&result(loaded)), &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_final_record_reruns_exactly_that_cell() {
    // a writer killed mid-append leaves a truncated final frame: the
    // reopened archive must skip it — and only it — and a resume must
    // re-run exactly that cell, byte-identically
    let spec = spec_with(vec![1, 2, 3]);
    let cold = run_campaign_with(&spec, &config(1), None).expect("cold run");
    let dir = scratch_dir();
    {
        let archive = CampaignArchive::open(&dir, &spec).expect("open");
        for r in &cold.result.results {
            archive.store(&spec, r).expect("store");
        }
    }
    let segment = only_segment(&dir);
    let full = std::fs::metadata(&segment).expect("segment stat").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .expect("open segment");
    file.set_len(full - 3).expect("tear the final record");
    drop(file);

    let archive = CampaignArchive::open(&dir, &spec).expect("reopen torn");
    let load = archive.load(&spec, &spec.expand());
    assert_eq!(
        load.loaded,
        spec.scenario_count() - 1,
        "torn cell is missing"
    );
    assert_eq!(load.skipped, 0, "a torn tail is not a corrupt record");

    let resumed = run_campaign_with(&spec, &config(2), Some(&archive)).expect("resume");
    assert_eq!(
        resumed.stats.executed_cells, 1,
        "exactly the torn cell re-runs"
    );
    assert_eq!(
        archive_bytes(&resumed.result),
        archive_bytes(&cold.result),
        "the healed campaign is byte-identical"
    );
    // the re-run stored the cell again: a second resume is all-archive
    let again = run_campaign_with(&spec, &config(1), Some(&archive)).expect("second resume");
    assert_eq!(again.stats.simulations, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_refuses_under_a_live_lease_and_proceeds_once_it_is_gone() {
    // the two-writer race compaction must refuse to enter: a worker
    // holding a group lease may append a record to the current segments
    // at any moment; compaction rewrites-and-deletes those segments, so
    // running the two concurrently would silently drop the append
    let spec = spec_with(vec![1, 2]);
    let dir = scratch_dir();
    let archive = CampaignArchive::open(&dir, &spec).expect("open");
    let stored = synthetic_result(&spec, 0, &[0.25, -3.5e17], &[7]);
    archive.store(&spec, &stored).expect("store");

    let lease_cfg = LeaseConfig::for_process();
    let lease = archive
        .try_claim(0, &lease_cfg)
        .expect("claim io")
        .expect("group 0 free");
    let err = archive
        .compact(&spec)
        .expect_err("compact must refuse while a lease is live");
    assert!(err.contains("unexpired lease"), "unexpected error: {err}");
    // the refusal left the store untouched: the record still loads
    assert_eq!(archive.load(&spec, &spec.expand()).loaded, 1);

    // released lease -> compaction proceeds and keeps every record
    archive.release(lease);
    let report = archive.compact(&spec).expect("compact after release");
    assert_eq!(report.records, 1);

    // a *stale* lease — the on-disk residue of a killed worker — must
    // not block compaction forever: only unexpired claims refuse
    let dead = LeaseRecord {
        lease_version: LEASE_VERSION,
        spec_fingerprint: archive.fingerprint(),
        group: 1,
        holder: "dead-worker".into(),
        heartbeat_ms: 0,
    };
    std::fs::write(
        archive.lease_path(1),
        serde_json::to_string(&dead).expect("serialize lease"),
    )
    .expect("write stale lease");
    let report = archive
        .compact(&spec)
        .expect("stale leases never block compaction");
    assert_eq!(report.records, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_five_digit_archive_resumes_and_compacts_without_simulations() {
    // an archive exactly as an old binary left it: per-cell JSON files
    // with 5-digit names, no segments at all
    let spec = spec_with(vec![4, 5]);
    let cold = run_campaign_with(&spec, &config(1), None).expect("cold run");
    let dir = scratch_dir();
    {
        let archive = CampaignArchive::open(&dir, &spec).expect("open");
        for r in &cold.result.results {
            archive.store_legacy(&spec, r).expect("store legacy");
            let index = r.scenario.index;
            std::fs::rename(
                dir.join("cells").join(format!("cell-{index:08}.json")),
                dir.join("cells").join(format!("cell-{index:05}.json")),
            )
            .expect("rename to the historical 5-digit name");
        }
        let _ = std::fs::remove_dir_all(dir.join("segments"));
    }

    // read-through: zero fresh simulations, byte-identical report
    let archive = CampaignArchive::open(&dir, &spec).expect("reopen legacy");
    let resumed = run_campaign_with(&spec, &config(2), Some(&archive)).expect("legacy resume");
    assert_eq!(resumed.stats.simulations, 0, "legacy records all load");
    assert_eq!(archive_bytes(&resumed.result), archive_bytes(&cold.result));

    // compaction migrates every legacy file into one segment...
    let report = archive.compact(&spec).expect("compact legacy");
    assert_eq!(report.records, spec.scenario_count());
    assert_eq!(report.legacy_migrated, spec.scenario_count());
    assert!(
        std::fs::read_dir(dir.join("cells"))
            .map(|entries| entries.count() == 0)
            .unwrap_or(true),
        "migrated legacy files are removed"
    );
    // ...and the compacted archive still resumes with zero simulations
    let compacted = CampaignArchive::open(&dir, &spec).expect("reopen compacted");
    let again = run_campaign_with(&spec, &config(1), Some(&compacted)).expect("compacted resume");
    assert_eq!(again.stats.simulations, 0);
    assert_eq!(archive_bytes(&again.result), archive_bytes(&cold.result));
    let _ = std::fs::remove_dir_all(&dir);
}
