//! Differential harness for the pluggable search strategies.
//!
//! The contract, strategy by strategy:
//!
//! * **pareto**: with `budget >= grid size` the returned front equals
//!   the **brute-force non-dominated set** of an exhaustive campaign
//!   ([`MultiObjective::front`]) — property-tested over random grids,
//!   objective pairs and budget surpluses, and pinned on a 64-cell
//!   acceptance grid;
//! * **anneal**: with `budget >= grid size` the walk degenerates to an
//!   exhaustive sweep and the reported best equals the campaign
//!   argmax — property-tested over random grids, metrics and schedules;
//! * **portfolio**: the restart portfolio racing climb/anneal/front
//!   expansion inherits both guarantees — full budget ⇒ the exhaustive
//!   argmax — property-tested over the same random grids and schedules;
//! * **every strategy**: the report is **byte-identical** across 1/2/8
//!   threads, fresh/archived mixes, lease-coordinated concurrent runs
//!   (`--coordinate`), and speculative prefetch on or off — with summed
//!   `RunStats` across coordinated searchers equal to the
//!   single-process totals, and speculative work never charged against
//!   the strategy budget.
//!
//! Policy (tests/README.md): determinism claims assert on report
//! *bytes* (`search_json` / `pareto_json`), work claims on `RunStats` —
//! never both on the same artifact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dpm_campaign::{
    pareto_campaign, pareto_json, run_campaign_with, search_campaign, search_json, BatteryAxis,
    CampaignArchive, CampaignSpec, ControllerAxis, LeaseConfig, Metric, MultiObjective, Objective,
    ParetoSpec, RunnerConfig, SearchFidelity, SearchSpec, StrategyKind, ThermalAxis, TuningAxis,
    WorkloadAxis,
};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "strategies-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(threads: usize) -> RunnerConfig {
    RunnerConfig {
        threads,
        ..RunnerConfig::default()
    }
}

/// The 64-cell acceptance grid (4 controllers × 2 tunings × 2 workloads
/// × 2 seeds × 2 thermals).
fn grid64() -> CampaignSpec {
    CampaignSpec {
        name: "strategies64".into(),
        horizon_ms: 5,
        master_seed: 0x5745_A7E6,
        initial_soc: 0.9,
        controllers: vec![
            ControllerAxis::Dpm,
            ControllerAxis::Timeout500us,
            ControllerAxis::Timeout2ms,
            ControllerAxis::Oracle,
        ],
        tunings: vec![TuningAxis::Paper, TuningAxis::Eager],
        workloads: vec![WorkloadAxis::Low, WorkloadAxis::High],
        seeds: vec![1, 2],
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool, ThermalAxis::Hot],
        ip_counts: vec![1],
    }
}

fn small_spec(master_seed: u64, seeds: Vec<u64>, two_controllers: bool) -> CampaignSpec {
    CampaignSpec {
        name: "strategies_small".into(),
        horizon_ms: 6,
        master_seed,
        initial_soc: 0.9,
        controllers: if two_controllers {
            vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn]
        } else {
            vec![ControllerAxis::Dpm]
        },
        tunings: vec![TuningAxis::Paper],
        workloads: vec![WorkloadAxis::Low],
        seeds,
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool],
        ip_counts: vec![1],
    }
}

fn multi() -> MultiObjective {
    MultiObjective::parse("energy_saving,min:delay").unwrap()
}

fn anneal_spec(objective: Objective, budget: usize) -> SearchSpec {
    SearchSpec::new(objective, budget).with_strategy(StrategyKind::Anneal)
}

// ---- acceptance: the 64-cell grid -----------------------------------

/// ISSUE 5 acceptance: `--strategy pareto --budget <grid-size>` on a
/// ≤64-cell spec returns exactly the brute-force non-dominated set.
#[test]
fn full_budget_pareto_on_64_cells_equals_brute_force_front() {
    let spec = grid64();
    let objectives = multi();
    let exhaustive = run_campaign_with(&spec, &config(0), None).expect("exhaustive sweep");
    let reference: Vec<usize> = objectives
        .front(&exhaustive.result.results)
        .iter()
        .map(|r| r.scenario.index)
        .collect();
    assert!(!reference.is_empty());

    let pareto = ParetoSpec::new(objectives.clone(), spec.scenario_count());
    let outcome = pareto_campaign(&spec, &pareto, &config(0), None).expect("pareto search");
    assert_eq!(outcome.report.evaluated, spec.scenario_count());
    let front: Vec<usize> = outcome.report.front.iter().map(|p| p.index).collect();
    assert_eq!(front, reference, "front must equal the brute-force set");
    // the front's metric vectors match the exhaustive cells bit for bit
    for point in &outcome.report.front {
        let cell = &exhaustive.result.results[point.index];
        let score = objectives.score(cell).expect("front cells scored");
        assert_eq!(point.values, score.values);
        assert_eq!(point.metrics, *cell.metrics.as_ref().unwrap());
    }
}

/// A *budgeted* Pareto search reports a front that is internally
/// non-dominated and a subset of the evaluated cells' true front.
#[test]
fn budgeted_pareto_front_is_mutually_non_dominated() {
    let spec = grid64();
    let objectives = multi();
    let pareto = ParetoSpec::new(objectives.clone(), 24);
    let outcome = pareto_campaign(&spec, &pareto, &config(0), None).expect("pareto search");
    assert!(outcome.report.evaluated <= 24);
    let scores: Vec<_> = outcome
        .report
        .front
        .iter()
        .map(|p| dpm_campaign::MultiScore {
            values: p.values.clone(),
            feasible: p.feasible,
        })
        .collect();
    for (i, a) in scores.iter().enumerate() {
        for (j, b) in scores.iter().enumerate() {
            assert!(
                i == j || !objectives.dominates(a, b),
                "front cell #{} dominates front cell #{}",
                outcome.report.front[i].index,
                outcome.report.front[j].index,
            );
        }
    }
}

#[test]
fn full_budget_anneal_on_64_cells_equals_exhaustive_argmax() {
    let spec = grid64();
    let objective = Objective::for_metric(Metric::EnergySavingPct);
    let exhaustive = run_campaign_with(&spec, &config(0), None).expect("exhaustive sweep");
    let reference = objective
        .argbest(&exhaustive.result.results)
        .expect("grid has successful cells");

    let outcome = search_campaign(
        &spec,
        &anneal_spec(objective, spec.scenario_count()),
        &config(0),
        None,
    )
    .expect("anneal search");
    assert_eq!(outcome.report.evaluated, spec.scenario_count());
    let best = outcome.report.best.as_ref().expect("anneal found a best");
    assert_eq!(best.index, reference.scenario.index);
    assert_eq!(&best.metrics, reference.metrics.as_ref().unwrap());
}

/// ISSUE 10 acceptance: the restart portfolio is complete — full budget
/// degenerates to an exhaustive sweep and the reported best equals the
/// campaign argmax, exactly like its slowest sub-strategy alone.
#[test]
fn full_budget_portfolio_on_64_cells_equals_exhaustive_argmax() {
    let spec = grid64();
    let objective = Objective::for_metric(Metric::EnergySavingPct);
    let exhaustive = run_campaign_with(&spec, &config(0), None).expect("exhaustive sweep");
    let reference = objective
        .argbest(&exhaustive.result.results)
        .expect("grid has successful cells");

    let search =
        SearchSpec::new(objective, spec.scenario_count()).with_strategy(StrategyKind::Portfolio);
    let outcome = search_campaign(&spec, &search, &config(0), None).expect("portfolio search");
    assert_eq!(outcome.report.evaluated, spec.scenario_count());
    let best = outcome
        .report
        .best
        .as_ref()
        .expect("portfolio found a best");
    assert_eq!(best.index, reference.scenario.index);
    assert_eq!(&best.metrics, reference.metrics.as_ref().unwrap());
}

// ---- coordinated (lease-sharing) byte-identity ----------------------

/// Runs `search` through two lease-coordinated searchers over one
/// campaign directory and returns their (report-bytes, stats) pairs.
fn coordinated_pair<R: Send>(
    spec: &CampaignSpec,
    run: impl Fn(&RunnerConfig, &CampaignArchive) -> R + Sync,
) -> Vec<R> {
    let dir = scratch_dir();
    let _ = CampaignArchive::open(&dir, spec).expect("create campaign dir");
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let dir = dir.clone();
                let run = &run;
                scope.spawn(move || {
                    let archive = CampaignArchive::open(&dir, spec).expect("open archive");
                    let config = config(1).with_lease(LeaseConfig::for_process().with_poll_ms(1));
                    run(&config, &archive)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join searcher"))
            .collect()
    });
    let _ = std::fs::remove_dir_all(&dir);
    outcomes
}

/// ISSUE 5 acceptance: both new strategies are byte-identical under
/// `--coordinate` with 2 workers, with summed work equal to one run.
#[test]
fn anneal_and_pareto_are_byte_identical_under_coordination() {
    let spec = grid64();

    let anneal = anneal_spec(Objective::for_metric(Metric::EnergySavingPct), 16);
    let reference = search_campaign(&spec, &anneal, &config(1), None).expect("reference");
    let reference_bytes = search_json(&reference.report).expect("render");
    let outcomes = coordinated_pair(&spec, |config, archive| {
        let out = search_campaign(&spec, &anneal, config, Some(archive)).expect("anneal");
        (search_json(&out.report).expect("render"), out.stats)
    });
    let mut executed = 0;
    for (bytes, stats) in &outcomes {
        assert_eq!(bytes, &reference_bytes, "coordinated anneal diverged");
        executed += stats.executed_cells;
    }
    assert_eq!(
        executed, reference.stats.executed_cells,
        "coordinated annealers must split the work, not duplicate it"
    );

    let pareto = ParetoSpec::new(multi(), 16);
    let reference = pareto_campaign(&spec, &pareto, &config(1), None).expect("reference");
    let reference_bytes = pareto_json(&reference.report).expect("render");
    let outcomes = coordinated_pair(&spec, |config, archive| {
        let out = pareto_campaign(&spec, &pareto, config, Some(archive)).expect("pareto");
        (pareto_json(&out.report).expect("render"), out.stats)
    });
    let mut executed = 0;
    for (bytes, stats) in &outcomes {
        assert_eq!(bytes, &reference_bytes, "coordinated pareto diverged");
        executed += stats.executed_cells;
    }
    assert_eq!(executed, reference.stats.executed_cells);
}

/// The portfolio under `--coordinate`: byte-identical reports from both
/// searchers, with summed work equal to the single-process run.
#[test]
fn portfolio_is_byte_identical_under_coordination() {
    let spec = grid64();
    let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 16)
        .with_strategy(StrategyKind::Portfolio);
    let reference = search_campaign(&spec, &search, &config(1), None).expect("reference");
    let reference_bytes = search_json(&reference.report).expect("render");
    let outcomes = coordinated_pair(&spec, |config, archive| {
        let out = search_campaign(&spec, &search, config, Some(archive)).expect("portfolio");
        (search_json(&out.report).expect("render"), out.stats)
    });
    let mut executed = 0;
    for (bytes, stats) in &outcomes {
        assert_eq!(bytes, &reference_bytes, "coordinated portfolio diverged");
        executed += stats.executed_cells;
    }
    assert_eq!(
        executed, reference.stats.executed_cells,
        "coordinated portfolios must split the work, not duplicate it"
    );
}

/// Re-searching a populated directory performs zero fresh simulations
/// for the new strategies too (the archive is a full result cache).
#[test]
fn archived_anneal_and_pareto_simulate_nothing_on_resume() {
    let spec = grid64();
    let dir = scratch_dir();

    let anneal = anneal_spec(Objective::for_metric(Metric::EnergySavingPct), 12);
    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    let first = search_campaign(&spec, &anneal, &config(2), Some(&archive)).unwrap();
    assert!(first.stats.simulations > 0);
    let second = search_campaign(&spec, &anneal, &config(1), Some(&archive)).unwrap();
    assert_eq!(second.stats.simulations, 0, "anneal resume must be free");
    assert_eq!(
        search_json(&second.report).unwrap(),
        search_json(&first.report).unwrap(),
    );

    let pareto = ParetoSpec::new(multi(), 12);
    let first = pareto_campaign(&spec, &pareto, &config(2), Some(&archive)).unwrap();
    let second = pareto_campaign(&spec, &pareto, &config(1), Some(&archive)).unwrap();
    assert_eq!(second.stats.simulations, 0, "pareto resume must be free");
    assert_eq!(
        pareto_json(&second.report).unwrap(),
        pareto_json(&first.report).unwrap(),
    );

    let portfolio = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 12)
        .with_strategy(StrategyKind::Portfolio);
    let first = search_campaign(&spec, &portfolio, &config(2), Some(&archive)).unwrap();
    let second = search_campaign(&spec, &portfolio, &config(1), Some(&archive)).unwrap();
    assert_eq!(second.stats.simulations, 0, "portfolio resume must be free");
    assert_eq!(
        search_json(&second.report).unwrap(),
        search_json(&first.report).unwrap(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- speculative prefetch -------------------------------------------

/// ISSUE 10 acceptance: with prefetch on, every strategy's report is
/// byte-identical to the prefetch-free run, speculative work lands in
/// the `speculative_*` stats (never in `executed_cells`, never against
/// the budget), and the accounting identity `archived + executed ==
/// evaluated` holds for the strategy's own cells.
#[test]
fn prefetch_is_byte_identical_and_never_charged_to_the_budget() {
    let spec = grid64();
    let budget = 16;
    let mut total_speculative = 0;

    for kind in [
        StrategyKind::Climb,
        StrategyKind::Anneal,
        StrategyKind::Portfolio,
    ] {
        let plain = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), budget)
            .with_strategy(kind);
        let reference = search_campaign(&spec, &plain, &config(8), None).expect("reference");
        let reference_bytes = search_json(&reference.report).expect("render");

        let dir = scratch_dir();
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let speculative = plain.clone().with_prefetch(true);
        let outcome =
            search_campaign(&spec, &speculative, &config(8), Some(&archive)).expect("prefetch");
        assert_eq!(
            search_json(&outcome.report).unwrap(),
            reference_bytes,
            "{kind:?}: prefetch changed the report bytes"
        );
        assert_eq!(outcome.report.evaluated, budget, "{kind:?}");
        assert_eq!(
            outcome.stats.archived_cells + outcome.stats.executed_cells,
            budget,
            "{kind:?}: speculative cells leaked into the strategy accounting"
        );
        total_speculative += outcome.stats.speculative_cells;
        if outcome.stats.speculative_cells > 0 {
            assert!(
                outcome.stats.speculative_simulations + outcome.stats.speculative_coarse > 0,
                "{kind:?}: speculative cells executed without speculative evals"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // pareto prefetches through its own spec knob
    let plain = ParetoSpec::new(multi(), budget);
    let reference = pareto_campaign(&spec, &plain, &config(8), None).expect("reference");
    let reference_bytes = pareto_json(&reference.report).expect("render");
    let dir = scratch_dir();
    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    let speculative = ParetoSpec::new(multi(), budget).with_prefetch(true);
    let outcome =
        pareto_campaign(&spec, &speculative, &config(8), Some(&archive)).expect("prefetch");
    assert_eq!(
        pareto_json(&outcome.report).unwrap(),
        reference_bytes,
        "pareto: prefetch changed the report bytes"
    );
    assert_eq!(
        outcome.stats.archived_cells + outcome.stats.executed_cells,
        outcome.report.evaluated,
        "pareto: speculative cells leaked into the strategy accounting"
    );
    total_speculative += outcome.stats.speculative_cells;
    let _ = std::fs::remove_dir_all(&dir);

    // the knob must actually engage somewhere on this grid — a prefetch
    // that never speculates would pass every assertion above vacuously
    assert!(
        total_speculative > 0,
        "no strategy speculated on the 64-cell grid at 8 threads"
    );
}

/// Prefetch composes with multi-fidelity: the coarse screen speculates
/// into the coarse store, the report stays byte-identical, and coarse
/// speculation is accounted in `speculative_coarse`.
#[test]
fn prefetch_is_byte_identical_at_multi_fidelity() {
    let spec = grid64();
    let plain = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 16)
        .with_fidelity(SearchFidelity::Multi);
    let reference = search_campaign(&spec, &plain, &config(8), None).expect("reference");
    let reference_bytes = search_json(&reference.report).expect("render");

    let dir = scratch_dir();
    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    let speculative = plain.clone().with_prefetch(true);
    let outcome =
        search_campaign(&spec, &speculative, &config(8), Some(&archive)).expect("prefetch");
    assert_eq!(
        search_json(&outcome.report).unwrap(),
        reference_bytes,
        "multi-fidelity prefetch changed the report bytes"
    );
    assert_eq!(
        outcome.stats.speculative_simulations, 0,
        "the multi-fidelity screen speculates at coarse fidelity only"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- multi-fidelity -------------------------------------------------

/// ISSUE 9 acceptance: on the 64-cell grid, a full-budget
/// multi-fidelity search reaches the same winner as the fine-only
/// search while spending **strictly fewer** fine simulations
/// (`RunStats.simulations`), and its report is byte-identical across
/// 1/2/8 threads.
#[test]
fn multi_fidelity_reaches_fine_winner_with_fewer_fine_simulations() {
    let spec = grid64();
    let budget = spec.scenario_count();
    let obj = || Objective::for_metric(Metric::EnergySavingPct);

    let fine = search_campaign(&spec, &SearchSpec::new(obj(), budget), &config(1), None)
        .expect("fine search");
    let multi_spec = SearchSpec::new(obj(), budget).with_fidelity(SearchFidelity::Multi);
    let multi = search_campaign(&spec, &multi_spec, &config(1), None).expect("multi search");

    let fine_best = fine.report.best.as_ref().expect("fine winner");
    let multi_best = multi.report.best.as_ref().expect("multi winner");
    assert_eq!(multi_best.index, fine_best.index, "winners must agree");
    assert_eq!(multi_best.metrics, fine_best.metrics, "fine numbers only");
    assert!(
        multi.stats.simulations < fine.stats.simulations,
        "multi must spend strictly fewer fine simulations ({} vs {})",
        multi.stats.simulations,
        fine.stats.simulations,
    );
    assert!(multi.stats.coarse_simulations > 0, "the screen ran coarse");
    assert_eq!(multi.report.fidelity, "multi");
    assert_eq!(multi.report.screened, spec.scenario_count());

    let reference = search_json(&multi.report).expect("render");
    for threads in [2, 8] {
        let again =
            search_campaign(&spec, &multi_spec, &config(threads), None).expect("multi search");
        assert_eq!(
            search_json(&again.report).unwrap(),
            reference,
            "threads={threads} diverged",
        );
    }
}

/// A resumed multi-fidelity search is entirely archive-served: zero
/// fine simulations, zero coarse evaluations, byte-identical report —
/// the coarse screen and the fine promotions each hit their own store.
#[test]
fn multi_fidelity_resume_simulates_nothing() {
    let spec = grid64();
    let dir = scratch_dir();
    let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 16)
        .with_fidelity(SearchFidelity::Multi);

    let archive = CampaignArchive::open(&dir, &spec).unwrap();
    let first = search_campaign(&spec, &search, &config(2), Some(&archive)).unwrap();
    assert!(first.stats.simulations > 0);
    assert!(first.stats.coarse_simulations > 0);

    let second = search_campaign(&spec, &search, &config(1), Some(&archive)).unwrap();
    assert_eq!(second.stats.simulations, 0, "fine resume must be free");
    assert_eq!(
        second.stats.coarse_simulations, 0,
        "the coarse screen resumes from its own store"
    );
    assert_eq!(
        search_json(&second.report).unwrap(),
        search_json(&first.report).unwrap(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- the differential proptests -------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Full-budget Pareto search == the brute-force non-dominated set,
    // for random grids, objective pairs and budget surpluses.
    #[test]
    fn full_budget_pareto_equals_brute_force_front(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 1..4),
        two_controllers in prop::sample::select(vec![false, true]),
        pair in prop::sample::select(vec![
            "energy_saving,min:delay",
            "min:energy_j,latency",
            "energy_saving,min:delay,max:low_power",
        ]),
        extra_budget in 0usize..3,
    ) {
        let spec = small_spec(master, seeds, two_controllers);
        let objectives = MultiObjective::parse(pair).unwrap();
        let exhaustive = run_campaign_with(&spec, &config(1), None).unwrap();
        let reference: Vec<usize> = objectives
            .front(&exhaustive.result.results)
            .iter()
            .map(|r| r.scenario.index)
            .collect();

        let pareto = ParetoSpec::new(objectives, spec.scenario_count() + extra_budget);
        let outcome = pareto_campaign(&spec, &pareto, &config(1), None).unwrap();
        prop_assert_eq!(outcome.report.evaluated, spec.scenario_count());
        let front: Vec<usize> = outcome.report.front.iter().map(|p| p.index).collect();
        prop_assert_eq!(front, reference);
    }

    // Full-budget anneal == the exhaustive argmax, for random grids,
    // metrics and schedules (any seed, any temperature, any cooling).
    #[test]
    fn full_budget_anneal_equals_exhaustive_argmax(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 1..4),
        two_controllers in prop::sample::select(vec![false, true]),
        metric in prop::sample::select(vec![
            Metric::EnergySavingPct,
            Metric::EnergyJ,
            Metric::MeanLatencyUs,
            Metric::LowPowerFrac,
        ]),
        anneal_seed in 0u64..u64::MAX / 2,
        initial_temp in prop::sample::select(vec![0.1, 1.0, 10.0]),
        cooling in prop::sample::select(vec![0.5, 0.9, 0.99]),
    ) {
        let spec = small_spec(master, seeds, two_controllers);
        let objective = Objective::for_metric(metric);
        let exhaustive = run_campaign_with(&spec, &config(1), None).unwrap();
        let reference = objective.argbest(&exhaustive.result.results).unwrap();

        let mut search = anneal_spec(objective, spec.scenario_count());
        search.anneal.seed = anneal_seed;
        search.anneal.initial_temp = initial_temp;
        search.anneal.cooling = cooling;
        let outcome = search_campaign(&spec, &search, &config(1), None).unwrap();
        prop_assert_eq!(outcome.report.evaluated, spec.scenario_count());
        let best = outcome.report.best.as_ref().unwrap();
        prop_assert_eq!(best.index, reference.scenario.index);
        prop_assert_eq!(&best.metrics, reference.metrics.as_ref().unwrap());
    }

    // Full-budget portfolio == the exhaustive argmax, for random grids,
    // metrics and annealer schedules: the race is complete no matter
    // which sub-strategy holds the turn when the grid runs dry.
    #[test]
    fn full_budget_portfolio_equals_exhaustive_argmax(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 1..4),
        two_controllers in prop::sample::select(vec![false, true]),
        metric in prop::sample::select(vec![
            Metric::EnergySavingPct,
            Metric::EnergyJ,
            Metric::MeanLatencyUs,
        ]),
        anneal_seed in 0u64..u64::MAX / 2,
        initial_temp in prop::sample::select(vec![0.1, 1.0, 10.0]),
        cooling in prop::sample::select(vec![0.5, 0.9, 0.99]),
    ) {
        let spec = small_spec(master, seeds, two_controllers);
        let objective = Objective::for_metric(metric);
        let exhaustive = run_campaign_with(&spec, &config(1), None).unwrap();
        let reference = objective.argbest(&exhaustive.result.results).unwrap();

        let mut search = SearchSpec::new(objective, spec.scenario_count())
            .with_strategy(StrategyKind::Portfolio);
        search.anneal.seed = anneal_seed;
        search.anneal.initial_temp = initial_temp;
        search.anneal.cooling = cooling;
        let outcome = search_campaign(&spec, &search, &config(1), None).unwrap();
        prop_assert_eq!(outcome.report.evaluated, spec.scenario_count());
        let best = outcome.report.best.as_ref().unwrap();
        prop_assert_eq!(best.index, reference.scenario.index);
        prop_assert_eq!(&best.metrics, reference.metrics.as_ref().unwrap());
    }

    // Full-budget multi-fidelity search == the fine-only winner, for
    // random grids and energy objectives (the screen ranks with the
    // coarse evaluator, whose energy ordering tracks the kernel's).
    #[test]
    fn full_budget_multi_fidelity_equals_fine_winner(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 1..4),
        two_controllers in prop::sample::select(vec![false, true]),
        metric in prop::sample::select(vec![
            Metric::EnergySavingPct,
            Metric::EnergyJ,
        ]),
    ) {
        let spec = small_spec(master, seeds, two_controllers);
        let budget = spec.scenario_count();
        let fine = search_campaign(
            &spec,
            &SearchSpec::new(Objective::for_metric(metric), budget),
            &config(1),
            None,
        )
        .unwrap();
        let multi = search_campaign(
            &spec,
            &SearchSpec::new(Objective::for_metric(metric), budget)
                .with_fidelity(SearchFidelity::Multi),
            &config(1),
            None,
        )
        .unwrap();
        let fine_best = fine.report.best.as_ref().unwrap();
        let multi_best = multi.report.best.as_ref().unwrap();
        prop_assert_eq!(multi_best.index, fine_best.index);
        prop_assert_eq!(&multi_best.metrics, &fine_best.metrics);
        prop_assert!(multi.stats.simulations <= fine.stats.simulations);
    }

    // Every strategy's report is byte-identical across 1/2/8 threads
    // and for any archived/fresh mix of cells.
    #[test]
    fn every_strategy_is_byte_deterministic_across_threads_and_archives(
        master in 0u64..u64::MAX / 2,
        seeds in prop::collection::vec(0u64..1000, 2..4),
        budget in 1usize..9,
        keep_mask in prop::bits::u8::masked(0b1111_1111),
        strategy in prop::sample::select(vec![
            StrategyKind::Climb,
            StrategyKind::Anneal,
            StrategyKind::Pareto,
            StrategyKind::Portfolio,
        ]),
    ) {
        let spec = small_spec(master, seeds, true);
        // one closure per strategy kind: render the report bytes under
        // a given config/archive
        let render = |config: &RunnerConfig, archive: Option<&CampaignArchive>| match strategy {
            StrategyKind::Pareto => {
                let pareto = ParetoSpec::new(multi(), budget);
                pareto_json(&pareto_campaign(&spec, &pareto, config, archive).unwrap().report)
                    .unwrap()
            }
            kind => {
                let search = SearchSpec::new(
                    Objective::for_metric(Metric::EnergySavingPct),
                    budget,
                )
                .with_strategy(kind);
                search_json(&search_campaign(&spec, &search, config, archive).unwrap().report)
                    .unwrap()
            }
        };

        let reference = render(&config(1), None);
        for threads in [2, 8] {
            prop_assert_eq!(
                &render(&config(threads), None),
                &reference,
                "threads={} diverged for {:?}", threads, strategy
            );
        }

        // pre-archive an arbitrary subset of the exhaustive results and
        // re-search: identical bytes again
        let exhaustive = run_campaign_with(&spec, &config(1), None).unwrap();
        let dir = scratch_dir();
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        for (i, r) in exhaustive.result.results.iter().enumerate() {
            if keep_mask & (1 << (i % 8)) != 0 {
                archive.store(&spec, r).unwrap();
            }
        }
        prop_assert_eq!(
            &render(&config(2), Some(&archive)),
            &reference,
            "archived/fresh mix diverged for {:?}", strategy
        );

        // ... and a lease-coordinated run over the same directory also
        // reports the identical bytes
        let coordinated = config(1).with_lease(LeaseConfig::for_process().with_poll_ms(1));
        prop_assert_eq!(
            &render(&coordinated, Some(&archive)),
            &reference,
            "coordinated run diverged for {:?}", strategy
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
