//! End-to-end contract of the `dpm serve` daemon: submit over HTTP,
//! follow the event stream to completion, and read back the **exact**
//! report bytes `dpm campaign run` would print — plus the edges: idempotent
//! concurrent submission, JSON errors for malformed specs and unknown
//! routes, and the 409 completeness gate that guarantees a `GET` never
//! simulates.
//!
//! The suite speaks raw HTTP/1.1 over `TcpStream` — the same protocol
//! surface `curl` sees in the CI `serve-smoke` job — including chunked
//! transfer decoding for the NDJSON event stream.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dpm_campaign::{
    campaign_json, completed_run, run_campaign_with, spawn_server, summarize, CampaignStore,
    LeaseConfig, RunnerConfig, ServeOptions,
};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory under the cargo-managed tmp dir.
fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "serve-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A four-cell grid quick enough for an in-test daemon run.
const SPEC_TOML: &str = r#"
name = "serve-e2e"
horizon_ms = 5
master_seed = 42
initial_soc = 0.9

[axes]
controllers = ["dpm", "always_on"]
tunings = ["paper"]
workloads = ["low"]
seeds = [1, 2]
batteries = ["linear"]
thermals = ["cool"]
ip_counts = [1]
"#;

fn serve_options(job_slots: usize) -> ServeOptions {
    ServeOptions {
        job_slots,
        threads: 1,
        poll_ms: 1,
        ..ServeOptions::default()
    }
}

/// One parsed HTTP response (chunked bodies already decoded).
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the response to EOF (the server speaks
/// `Connection: close`), decoding chunked transfer when announced.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line '{status_line}'"));
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
        .collect();
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
    let body = if chunked {
        decode_chunked(payload)
    } else {
        payload.to_string()
    };
    Response {
        status,
        headers,
        body,
    }
}

/// Decodes a chunked transfer body: `{hex-size}\r\n{data}\r\n` frames
/// until the zero-length terminator.
fn decode_chunked(payload: &str) -> String {
    let mut rest = payload;
    let mut out = String::new();
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size '{size_line}'"));
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        rest = tail[size..].strip_prefix("\r\n").expect("chunk terminator");
    }
}

/// Pulls `"key": "value"` or `"key":"value"` out of a JSON response —
/// enough for assertions without a parser dependency in the test.
fn json_str<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split_once('"').map(|(v, _)| v)
}

/// The tentpole contract end to end: POST a spec, watch the NDJSON
/// event stream to the terminal `complete` event, then read the report
/// back byte-identical to `dpm campaign run --format json` — and verify
/// via the store that serving it performed **zero** simulations.
#[test]
fn submit_stream_and_report_match_the_cli_byte_for_byte() {
    let root = scratch_dir();
    let server = spawn_server(&root, serve_options(1)).expect("spawn daemon");
    let addr = server.addr();

    // submit: a fresh spec is 201 Created and queued for the executor
    let created = http(addr, "POST", "/campaigns", Some(SPEC_TOML));
    assert_eq!(created.status, 201, "{}", created.body);
    assert_eq!(created.header("content-type"), Some("application/json"));
    let id = json_str(&created.body, "id")
        .expect("submission has an id")
        .to_string();
    assert!(id.starts_with("c-"), "fingerprint-keyed id, got '{id}'");
    assert!(
        created.body.contains("\"existed\": false"),
        "{}",
        created.body
    );

    // events: the chunked NDJSON long-poll replays one `cell` line per
    // archived cell in seq order and closes with the terminal line
    let events = http(
        addr,
        "GET",
        &format!("/campaigns/{id}/events?wait_ms=60000"),
        None,
    );
    assert_eq!(events.status, 200, "{}", events.body);
    assert_eq!(events.header("content-type"), Some("application/x-ndjson"));
    let lines: Vec<&str> = events.body.lines().collect();
    assert_eq!(lines.len(), 5, "4 cells + terminal: {:?}", lines);
    for (seq, line) in lines.iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"seq\":{seq},")), "{line}");
    }
    assert!(lines[4].contains("\"event\":\"complete\""), "{}", lines[4]);
    assert!(lines[4].contains("\"cells\":4"), "{}", lines[4]);

    // replay: a cursor past the archived prefix returns only the tail
    let tail = http(
        addr,
        "GET",
        &format!("/campaigns/{id}/events?since=4&wait_ms=60000"),
        None,
    );
    assert_eq!(tail.body.lines().count(), 1, "{}", tail.body);

    // report: byte-identical to the CLI on the same spec, both shapes
    let (spec, _) = dpm_campaign::parse_campaign_toml(SPEC_TOML).expect("parse spec");
    let config = RunnerConfig {
        threads: 1,
        ..RunnerConfig::default()
    };
    let cli = run_campaign_with(&spec, &config, None).expect("reference run");
    let summary = summarize(&cli.result);
    let report = http(addr, "GET", &format!("/campaigns/{id}/report"), None);
    assert_eq!(report.status, 200);
    assert_eq!(report.body, campaign_json(&summary, None).expect("render"));
    let full = http(
        addr,
        "GET",
        &format!("/campaigns/{id}/report?per_scenario=1"),
        None,
    );
    assert_eq!(
        full.body,
        campaign_json(&summary, Some(&cli.result)).expect("render")
    );

    // the zero-simulation guarantee, asserted at the serving layer: the
    // complete campaign loads entirely from the archive
    let store = CampaignStore::open(&root).expect("open store");
    let (archive, stored_spec) = store.open_campaign(&id).expect("open campaign");
    let (_, stats) = completed_run(&archive, &stored_spec).expect("campaign is complete");
    assert_eq!(stats.simulations, 0);
    assert_eq!(stats.archived_cells, spec.scenario_count());

    // best and pareto answer from the same archive
    let best = http(addr, "GET", &format!("/campaigns/{id}/best"), None);
    assert_eq!(best.status, 200, "{}", best.body);
    assert!(best.body.contains("\"objective\""), "{}", best.body);
    assert!(best.body.contains("\"best\""), "{}", best.body);
    let pareto = http(
        addr,
        "GET",
        &format!("/campaigns/{id}/pareto?objectives=energy_saving,min:delay"),
        None,
    );
    assert_eq!(pareto.status, 200, "{}", pareto.body);
    assert!(pareto.body.contains("\"front\""), "{}", pareto.body);

    // the store list shows one complete campaign with a complete job
    let list = http(addr, "GET", "/campaigns", None);
    assert!(list.body.contains("\"count\": 1"), "{}", list.body);
    assert!(list.body.contains(&id), "{}", list.body);
    assert!(
        list.body.contains("\"state\": \"complete\""),
        "{}",
        list.body
    );

    // resubmission dedups: 200 (not 201), existed, nothing re-queued
    let again = http(addr, "POST", "/campaigns", Some(SPEC_TOML));
    assert_eq!(again.status, 200, "{}", again.body);
    assert_eq!(json_str(&again.body, "id"), Some(id.as_str()));
    assert!(again.body.contains("\"existed\": true"), "{}", again.body);
    assert_eq!(json_str(&again.body, "job"), Some("complete"));

    // compaction over the API rewrites the archive into one segment —
    // and the report the daemon serves afterwards is byte-identical
    let compacted = http(addr, "POST", &format!("/campaigns/{id}/compact"), None);
    assert_eq!(compacted.status, 200, "{}", compacted.body);
    assert!(
        compacted.body.contains("\"records\": 4"),
        "{}",
        compacted.body
    );
    let after = http(addr, "GET", &format!("/campaigns/{id}/report"), None);
    assert_eq!(after.body, report.body, "compaction changed the report");

    // graceful shutdown over the API; join() returns once drained
    let bye = http(addr, "POST", "/shutdown", None);
    assert_eq!(bye.status, 200);
    server.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// Submission is idempotent under concurrency: N clients racing the
/// same new spec all land on one campaign id, exactly one directory is
/// created, and exactly one response is `201 Created`.
#[test]
fn concurrent_submissions_dedup_into_one_campaign() {
    let root = scratch_dir();
    // coordination-only daemon: no executor, so nothing simulates here
    let server = spawn_server(&root, serve_options(0)).expect("spawn daemon");
    let addr = server.addr();

    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(move || http(addr, "POST", "/campaigns", Some(SPEC_TOML))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let ids: Vec<&str> = responses
        .iter()
        .map(|r| json_str(&r.body, "id").expect("id"))
        .collect();
    assert!(
        ids.windows(2).all(|w| w[0] == w[1]),
        "ids diverged: {ids:?}"
    );
    let created = responses.iter().filter(|r| r.status == 201).count();
    assert_eq!(created, 1, "exactly one submission creates the campaign");
    assert!(responses.iter().all(|r| matches!(r.status, 200 | 201)));
    // with no executor slots the job is the external workers' business
    assert!(responses
        .iter()
        .all(|r| json_str(&r.body, "job") == Some("external")));

    let campaign_dirs = std::fs::read_dir(&root)
        .expect("list root")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().join("campaign.toml").is_file())
        .count();
    assert_eq!(campaign_dirs, 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Every failure mode answers structured JSON: malformed TOML and JSON
/// specs are 400s carrying the parser's message, unknown campaigns are
/// 404s, wrong methods are 405s, and reading an **incomplete** campaign
/// is the 409 completeness gate (the response carries progress, and no
/// simulation ever starts on a `GET`).
#[test]
fn errors_are_structured_json_and_reads_never_simulate() {
    let root = scratch_dir();
    let server = spawn_server(&root, serve_options(0)).expect("spawn daemon");
    let addr = server.addr();

    // malformed TOML spec
    let bad_toml = http(addr, "POST", "/campaigns", Some("horizon_ms = ]["));
    assert_eq!(bad_toml.status, 400, "{}", bad_toml.body);
    assert!(bad_toml.body.contains("\"error\""), "{}", bad_toml.body);
    assert!(
        bad_toml.body.contains("\"status\":400"),
        "{}",
        bad_toml.body
    );

    // malformed JSON spec (a `{` body routes to the JSON parser)
    let bad_json = http(addr, "POST", "/campaigns", Some("{\"name\": 12"));
    assert_eq!(bad_json.status, 400, "{}", bad_json.body);
    assert!(bad_json.body.contains("\"error\""), "{}", bad_json.body);

    // a spec that parses but fails validation is also a 400
    let empty_axis = http(
        addr,
        "POST",
        "/campaigns",
        Some(&SPEC_TOML.replace("controllers = [\"dpm\", \"always_on\"]", "controllers = []")),
    );
    assert_eq!(empty_axis.status, 400, "{}", empty_axis.body);

    // unknown campaign and unknown route are 404s; wrong method is 405
    for path in [
        "/campaigns/c-cafecafecafecafe",
        "/campaigns/nope/report",
        "/nowhere",
    ] {
        let missing = http(addr, "GET", path, None);
        assert_eq!(missing.status, 404, "{path}: {}", missing.body);
        assert!(missing.body.contains("\"error\""), "{}", missing.body);
    }
    let wrong = http(addr, "DELETE", "/campaigns", None);
    assert_eq!(wrong.status, 405, "{}", wrong.body);

    // a hostile id must not escape the store root
    let hostile = http(addr, "GET", "/campaigns/%2e%2e/report", None);
    assert_eq!(hostile.status, 404, "{}", hostile.body);

    // submit a real spec on the no-executor daemon: it stays incomplete,
    // so every result read hits the 409 completeness gate with progress
    let submitted = http(addr, "POST", "/campaigns", Some(SPEC_TOML));
    assert_eq!(submitted.status, 201, "{}", submitted.body);
    let id = json_str(&submitted.body, "id").expect("id").to_string();
    for endpoint in ["report", "best", "pareto"] {
        let gated = http(addr, "GET", &format!("/campaigns/{id}/{endpoint}"), None);
        assert_eq!(gated.status, 409, "{endpoint}: {}", gated.body);
        assert!(gated.body.contains("\"archived\":0"), "{}", gated.body);
        assert!(gated.body.contains("\"cells\":4"), "{}", gated.body);
    }
    // ... and indeed nothing has simulated: every cell is still pending
    let grid = http(addr, "GET", &format!("/campaigns/{id}"), None);
    assert_eq!(grid.status, 200);
    assert!(
        !grid.body.contains("\"archived\""),
        "no cell may be archived: {}",
        grid.body
    );

    // gc over HTTP on the fresh campaign is a clean no-op report
    let gc = http(addr, "POST", &format!("/campaigns/{id}/gc"), None);
    assert_eq!(gc.status, 200, "{}", gc.body);
    assert!(gc.body.contains("\"records_removed\": 0"), "{}", gc.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// The `?since=` cursor's edges: a non-numeric cursor is a 400 with a
/// structured JSON error (not a silent replay from zero), and a cursor
/// beyond the log tail long-polls cleanly — an empty 200 stream, never
/// an error.
#[test]
fn event_cursor_rejects_garbage_and_longpolls_past_the_tail() {
    let root = scratch_dir();
    let server = spawn_server(&root, serve_options(0)).expect("spawn daemon");
    let addr = server.addr();

    let submitted = http(addr, "POST", "/campaigns", Some(SPEC_TOML));
    assert_eq!(submitted.status, 201, "{}", submitted.body);
    let id = json_str(&submitted.body, "id").expect("id").to_string();

    // non-numeric cursors are client bugs and must fail loudly
    for bad in ["abc", "-1", "1.5", "0x10", ""] {
        let rejected = http(
            addr,
            "GET",
            &format!("/campaigns/{id}/events?since={bad}"),
            None,
        );
        assert_eq!(rejected.status, 400, "since={bad}: {}", rejected.body);
        assert_eq!(rejected.header("content-type"), Some("application/json"));
        assert!(
            rejected.body.contains("\"error\"") && rejected.body.contains("since"),
            "since={bad}: {}",
            rejected.body
        );
    }

    // a cursor past the tail of an incomplete campaign is *not* an
    // error: the stream long-polls for wait_ms and closes empty
    let start = std::time::Instant::now();
    let tail = http(
        addr,
        "GET",
        &format!("/campaigns/{id}/events?since=999&wait_ms=120"),
        None,
    );
    assert_eq!(tail.status, 200, "{}", tail.body);
    assert_eq!(tail.header("content-type"), Some("application/x-ndjson"));
    assert_eq!(tail.body, "", "no events past the tail: {}", tail.body);
    assert!(
        start.elapsed() >= std::time::Duration::from_millis(100),
        "beyond-tail cursor must long-poll, not return instantly"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A parked `/events` long-poll must not hold the daemon open: the wait
/// loop checks the shutdown flag between sleep slices, so `POST
/// /shutdown` drains in milliseconds even with a 60-second poller in
/// flight (before the fix, `join()` blocked for the full `wait_ms`).
#[test]
fn events_longpoll_releases_promptly_on_shutdown() {
    let root = scratch_dir();
    let server = spawn_server(&root, serve_options(0)).expect("spawn daemon");
    let addr = server.addr();

    let submitted = http(addr, "POST", "/campaigns", Some(SPEC_TOML));
    assert_eq!(submitted.status, 201, "{}", submitted.body);
    let id = json_str(&submitted.body, "id").expect("id").to_string();

    // park a poller far past the tail with a long deadline, give it a
    // moment to reach the wait loop, then shut the daemon down
    let poller = std::thread::spawn(move || {
        http(
            addr,
            "GET",
            &format!("/campaigns/{id}/events?since=999&wait_ms=60000"),
            None,
        )
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    let bye = http(addr, "POST", "/shutdown", None);
    assert_eq!(bye.status, 200);

    let start = std::time::Instant::now();
    server.join();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown blocked on the parked long-poll for {:?}",
        start.elapsed()
    );
    // the poller's stream closed cleanly: an empty 200, not an error
    let streamed = poller.join().expect("join poller");
    assert_eq!(streamed.status, 200, "{}", streamed.body);
    assert_eq!(streamed.body, "", "{}", streamed.body);
    let _ = std::fs::remove_dir_all(&root);
}

/// `POST /campaigns/{id}/compact` refuses with `409 Conflict` while a
/// worker holds an unexpired lease on the campaign — the HTTP face of
/// the compaction/append race fix — and proceeds once it is released.
#[test]
fn compact_conflicts_while_a_worker_holds_a_lease() {
    let root = scratch_dir();
    let server = spawn_server(&root, serve_options(0)).expect("spawn daemon");
    let addr = server.addr();

    let submitted = http(addr, "POST", "/campaigns", Some(SPEC_TOML));
    assert_eq!(submitted.status, 201, "{}", submitted.body);
    let id = json_str(&submitted.body, "id").expect("id").to_string();

    // an external worker claims a group, as `dpm campaign worker` would
    let store = CampaignStore::open(&root).expect("open store");
    let (archive, _) = store.open_campaign(&id).expect("open campaign");
    let lease = archive
        .try_claim(0, &LeaseConfig::for_process())
        .expect("claim io")
        .expect("group 0 free");

    let refused = http(addr, "POST", &format!("/campaigns/{id}/compact"), None);
    assert_eq!(refused.status, 409, "{}", refused.body);
    assert!(refused.body.contains("unexpired lease"), "{}", refused.body);

    // released -> the same request compacts cleanly
    archive.release(lease);
    let compacted = http(addr, "POST", &format!("/campaigns/{id}/compact"), None);
    assert_eq!(compacted.status, 200, "{}", compacted.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// `POST /shutdown` drains and actually stops: `join()` returns and the
/// listening socket closes.
#[test]
fn shutdown_drains_and_closes_the_listener() {
    let root = scratch_dir();
    let server = spawn_server(&root, serve_options(0)).expect("spawn daemon");
    let addr = server.addr();

    let bye = http(addr, "POST", "/shutdown", None);
    assert_eq!(bye.status, 200);
    server.join();

    // the socket is gone once the daemon drains
    assert!(TcpStream::connect(addr).is_err(), "daemon still listening");
    let _ = std::fs::remove_dir_all(&root);
}
