//! Baseline-dedup contract: sharing one always-`ON1` baseline across
//! cells that differ only in controller/tuning changes *nothing* about
//! the results — it only removes simulations (counted by the runner's
//! [`RunStats`] hook).

use dpm_campaign::{
    campaign_json, run_campaign_with, summarize, BatteryAxis, CampaignRun, CampaignSpec,
    ControllerAxis, RunnerConfig, ThermalAxis, TuningAxis, WorkloadAxis,
};

/// A controller×tuning-heavy grid: 4 controllers × 2 tunings over a
/// single (workload, seed, battery, thermal, ip-count) pair of groups.
fn controller_grid() -> CampaignSpec {
    CampaignSpec {
        name: "dedup".into(),
        horizon_ms: 6,
        master_seed: 0xDED0_0001,
        initial_soc: 0.9,
        controllers: vec![
            ControllerAxis::Dpm,
            ControllerAxis::AlwaysOn,
            ControllerAxis::Timeout500us,
            ControllerAxis::Oracle,
        ],
        tunings: vec![TuningAxis::Paper, TuningAxis::Eager],
        workloads: vec![WorkloadAxis::Low],
        seeds: vec![1, 2],
        batteries: vec![BatteryAxis::Linear],
        thermals: vec![ThermalAxis::Cool],
        ip_counts: vec![1],
    }
}

fn run(spec: &CampaignSpec, threads: usize, dedup: bool) -> CampaignRun {
    let config = RunnerConfig {
        threads,
        progress: false,
        dedup_baselines: dedup,
        ..RunnerConfig::default()
    };
    run_campaign_with(spec, &config, None).expect("valid spec")
}

#[test]
fn dedup_preserves_results_and_strictly_cuts_simulations() {
    let spec = controller_grid();
    let with = run(&spec, 1, true);
    let without = run(&spec, 1, false);

    // identical ScenarioMetrics, cell for cell
    assert_eq!(with.result, without.result);
    // ... down to the rendered bytes
    assert_eq!(
        campaign_json(&summarize(&with.result), Some(&with.result)).unwrap(),
        campaign_json(&summarize(&without.result), Some(&without.result)).unwrap(),
    );

    // run-counter hook: strictly fewer simulations with dedup
    let cells = spec.scenario_count();
    assert_eq!(without.stats.simulations, 2 * cells);
    assert!(
        with.stats.simulations < without.stats.simulations,
        "dedup must run strictly fewer simulations: {} vs {}",
        with.stats.simulations,
        without.stats.simulations
    );
    // exact accounting: 2 baseline groups (one per seed); per group the
    // 2 always-ON1 cells reuse the baseline, the other 6 cells run one
    // scenario simulation each
    assert_eq!(with.stats.baseline_groups, 2);
    assert_eq!(with.stats.reused_baselines, 4);
    assert_eq!(with.stats.simulations, 2 + 2 * 6);
}

#[test]
fn dedup_is_thread_count_invariant() {
    let spec = controller_grid();
    let serial = run(&spec, 1, true);
    for threads in [2, 4, 8] {
        let parallel = run(&spec, threads, true);
        assert_eq!(parallel.result, serial.result, "threads={threads}");
        assert_eq!(parallel.stats.simulations, serial.stats.simulations);
    }
}

#[test]
fn multi_ip_groups_dedup_too() {
    let mut spec = controller_grid();
    spec.controllers = vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn];
    spec.tunings = vec![TuningAxis::Paper];
    spec.seeds = vec![1];
    spec.ip_counts = vec![1, 4];
    let with = run(&spec, 2, true);
    let without = run(&spec, 2, false);
    assert_eq!(with.result, without.result);
    // two groups (ip_count 1 and 4); each<ip-count group's always-ON1
    // cell reuses, each DPM cell runs once
    assert_eq!(with.stats.baseline_groups, 2);
    assert_eq!(with.stats.simulations, 2 + 2);
    assert_eq!(without.stats.simulations, 8);
}
