//! The declarative campaign specification: named axes and their
//! cartesian expansion into concrete scenarios.
//!
//! A [`CampaignSpec`] is a grid over six axes — controller kind, LEM
//! tuning, workload shape, workload seed, battery model, thermal
//! scenario, IP count — expanded in a **fixed axis order** so scenario
//! indices (and therefore per-scenario seeds and aggregation order) are
//! identical no matter where or on how many threads the campaign runs.

use core::fmt;

use dpm_core::predictor::PredictorKind;
use dpm_core::SleepSelection;
use dpm_power::PowerState;
use dpm_soc::experiment::{
    busy_generator, experiment_tuning, quiet_generator, scenario_a_generator,
};
use dpm_soc::{BatteryKind, ControllerKind, IpConfig, LemTuning, SocConfig, ThermalScenario};
use dpm_units::{Power, SimDuration, SimTime};
use dpm_workload::{ActivityLevel, BurstyGenerator, PriorityWeights, SeedSequence, TraceGenerator};

/// Controller axis values (the policy families of the paper plus the
/// classic baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ControllerAxis {
    /// The paper's LEM (plus GEM on multi-IP scenarios).
    Dpm,
    /// Always `ON1` — the Table 2 reference.
    AlwaysOn,
    /// Fixed 500 µs timeout into `SL2`.
    Timeout500us,
    /// Fixed 2 ms timeout into `SL3`.
    Timeout2ms,
    /// Clairvoyant sleeping — the energy lower bound.
    Oracle,
}

impl ControllerAxis {
    /// Every controller axis value.
    pub const ALL: [ControllerAxis; 5] = [
        ControllerAxis::Dpm,
        ControllerAxis::AlwaysOn,
        ControllerAxis::Timeout500us,
        ControllerAxis::Timeout2ms,
        ControllerAxis::Oracle,
    ];

    /// The spec-file name of this value.
    pub fn label(self) -> &'static str {
        match self {
            ControllerAxis::Dpm => "dpm",
            ControllerAxis::AlwaysOn => "always_on",
            ControllerAxis::Timeout500us => "timeout_500us",
            ControllerAxis::Timeout2ms => "timeout_2ms",
            ControllerAxis::Oracle => "oracle",
        }
    }

    /// Parses a spec-file name.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|c| c.label() == s)
            .ok_or_else(|| unknown("controller", s, &Self::ALL.map(Self::label)))
    }

    /// The concrete controller configuration.
    pub fn to_controller(self) -> ControllerKind {
        match self {
            ControllerAxis::Dpm => ControllerKind::Dpm,
            ControllerAxis::AlwaysOn => ControllerKind::AlwaysOn,
            ControllerAxis::Timeout500us => ControllerKind::Timeout {
                timeout: SimDuration::from_micros(500),
                state: PowerState::Sl2,
            },
            ControllerAxis::Timeout2ms => ControllerKind::Timeout {
                timeout: SimDuration::from_millis(2),
                state: PowerState::Sl3,
            },
            ControllerAxis::Oracle => ControllerKind::Oracle,
        }
    }
}

/// LEM tuning axis values (the paper's stated flexibility point: *"whose
/// parameters can be adapted"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TuningAxis {
    /// The Table 2 experiment tuning (wake-latency cap, 2.5 ms grace).
    Paper,
    /// Library defaults.
    Default,
    /// Sleeps as soon as possible, deepest state allowed.
    Eager,
    /// Energy-optimal sleep-state selection with a window predictor.
    EnergyOptimal,
    /// Sleeping disabled (state holds, no transitions).
    NoSleep,
}

impl TuningAxis {
    /// Every tuning axis value.
    pub const ALL: [TuningAxis; 5] = [
        TuningAxis::Paper,
        TuningAxis::Default,
        TuningAxis::Eager,
        TuningAxis::EnergyOptimal,
        TuningAxis::NoSleep,
    ];

    /// The spec-file name of this value.
    pub fn label(self) -> &'static str {
        match self {
            TuningAxis::Paper => "paper",
            TuningAxis::Default => "default",
            TuningAxis::Eager => "eager",
            TuningAxis::EnergyOptimal => "energy_optimal",
            TuningAxis::NoSleep => "no_sleep",
        }
    }

    /// Parses a spec-file name.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|c| c.label() == s)
            .ok_or_else(|| unknown("tuning", s, &Self::ALL.map(Self::label)))
    }

    /// The concrete LEM tuning.
    pub fn to_tuning(self) -> LemTuning {
        match self {
            TuningAxis::Paper => experiment_tuning(),
            TuningAxis::Default => LemTuning::default(),
            // the grace period must be non-zero: a zero-delay sleep
            // decision re-triggers in the same delta cycle and trips the
            // kernel's combinational-loop guard
            TuningAxis::Eager => LemTuning {
                sleep_delay: SimDuration::from_micros(1),
                initial_prediction: SimDuration::from_millis(5),
                ..LemTuning::default()
            },
            TuningAxis::EnergyOptimal => LemTuning {
                predictor: PredictorKind::Window { k: 8 },
                sleep_selection: SleepSelection::CheapestEnergy,
                ..experiment_tuning()
            },
            TuningAxis::NoSleep => LemTuning {
                sleep_enabled: false,
                ..LemTuning::default()
            },
        }
    }
}

/// Workload-shape axis values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WorkloadAxis {
    /// `ActivityLevel::Low` bursty preset (~15 % duty).
    Low,
    /// `ActivityLevel::High` bursty preset (~75 % duty).
    High,
    /// The paper's scenario-A trace shape (~11 % duty).
    PaperA,
    /// The paper's B/C busy-IP shape.
    PaperBusy,
    /// The paper's B/C quiet-IP shape.
    PaperQuiet,
}

impl WorkloadAxis {
    /// Every workload axis value.
    pub const ALL: [WorkloadAxis; 5] = [
        WorkloadAxis::Low,
        WorkloadAxis::High,
        WorkloadAxis::PaperA,
        WorkloadAxis::PaperBusy,
        WorkloadAxis::PaperQuiet,
    ];

    /// The spec-file name of this value.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadAxis::Low => "low",
            WorkloadAxis::High => "high",
            WorkloadAxis::PaperA => "paper_a",
            WorkloadAxis::PaperBusy => "paper_busy",
            WorkloadAxis::PaperQuiet => "paper_quiet",
        }
    }

    /// Parses a spec-file name.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|c| c.label() == s)
            .ok_or_else(|| unknown("workload", s, &Self::ALL.map(Self::label)))
    }

    /// The trace generator for this shape.
    pub fn generator(self) -> BurstyGenerator {
        match self {
            WorkloadAxis::Low => {
                BurstyGenerator::for_activity(ActivityLevel::Low, PriorityWeights::typical_user())
            }
            WorkloadAxis::High => {
                BurstyGenerator::for_activity(ActivityLevel::High, PriorityWeights::typical_user())
            }
            WorkloadAxis::PaperA => scenario_a_generator(),
            WorkloadAxis::PaperBusy => busy_generator(),
            WorkloadAxis::PaperQuiet => quiet_generator(),
        }
    }
}

/// Battery-model axis values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BatteryAxis {
    /// Ideal energy tank.
    Linear,
    /// Peukert-style rate-capacity losses.
    RateCapacity,
    /// Kinetic battery model with charge recovery.
    Kibam,
}

impl BatteryAxis {
    /// Every battery axis value.
    pub const ALL: [BatteryAxis; 3] = [
        BatteryAxis::Linear,
        BatteryAxis::RateCapacity,
        BatteryAxis::Kibam,
    ];

    /// The spec-file name of this value.
    pub fn label(self) -> &'static str {
        match self {
            BatteryAxis::Linear => "linear",
            BatteryAxis::RateCapacity => "rate_capacity",
            BatteryAxis::Kibam => "kibam",
        }
    }

    /// Parses a spec-file name.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|c| c.label() == s)
            .ok_or_else(|| unknown("battery", s, &Self::ALL.map(Self::label)))
    }

    /// The concrete battery model.
    pub fn to_battery(self) -> BatteryKind {
        match self {
            BatteryAxis::Linear => BatteryKind::Linear,
            BatteryAxis::RateCapacity => BatteryKind::RateCapacity {
                p_ref: Power::from_milliwatts(400.0),
                peukert: 1.15,
            },
            BatteryAxis::Kibam => BatteryKind::Kibam,
        }
    }
}

/// Thermal-scenario axis values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ThermalAxis {
    /// Cool start (25 °C ambient, 30 °C die).
    Cool,
    /// The paper's "Temperature High" hot start (71.5 °C die).
    Hot,
}

impl ThermalAxis {
    /// Every thermal axis value.
    pub const ALL: [ThermalAxis; 2] = [ThermalAxis::Cool, ThermalAxis::Hot];

    /// The spec-file name of this value.
    pub fn label(self) -> &'static str {
        match self {
            ThermalAxis::Cool => "cool",
            ThermalAxis::Hot => "hot",
        }
    }

    /// Parses a spec-file name.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|c| c.label() == s)
            .ok_or_else(|| unknown("thermal", s, &Self::ALL.map(Self::label)))
    }

    /// The concrete thermal scenario.
    pub fn to_thermal(self) -> ThermalScenario {
        match self {
            ThermalAxis::Cool => ThermalScenario::cool(),
            ThermalAxis::Hot => ThermalScenario::hot(),
        }
    }
}

fn unknown(axis: &str, got: &str, options: &[&str]) -> String {
    format!(
        "unknown {axis} '{got}' (expected one of: {})",
        options.join(", ")
    )
}

/// A declarative scenario grid.
///
/// `expand` walks the axes in declaration order (controllers outermost,
/// IP counts innermost), so scenario index ↔ axis-tuple mapping is part
/// of the format and stays stable across runs and thread counts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (reports, output files).
    pub name: String,
    /// Simulation horizon in milliseconds.
    pub horizon_ms: u64,
    /// Master seed; all per-scenario seeds derive from it.
    pub master_seed: u64,
    /// Starting state of charge (0–1); the paper's battery-Low regime
    /// starts at 0.22.
    pub initial_soc: f64,
    /// Controller axis.
    pub controllers: Vec<ControllerAxis>,
    /// LEM tuning axis.
    pub tunings: Vec<TuningAxis>,
    /// Workload-shape axis.
    pub workloads: Vec<WorkloadAxis>,
    /// Workload seed axis (logical seeds; the trace seed is derived from
    /// `master_seed`, the logical seed and the IP index).
    pub seeds: Vec<u64>,
    /// Battery-model axis.
    pub batteries: Vec<BatteryAxis>,
    /// Thermal-scenario axis.
    pub thermals: Vec<ThermalAxis>,
    /// IP-count axis (1 = single IP without GEM; >1 = GEM-governed).
    pub ip_counts: Vec<usize>,
}

impl CampaignSpec {
    /// The built-in quick sweep: 2 controllers × 1 tuning × 2 workloads ×
    /// 2 seeds × 1 battery × 2 thermals × 2 IP counts = 32 scenarios.
    pub fn default_sweep() -> Self {
        Self {
            name: "default_sweep".into(),
            horizon_ms: 40,
            master_seed: 0xDA7E_2005,
            initial_soc: 0.95,
            controllers: vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn],
            tunings: vec![TuningAxis::Paper],
            workloads: vec![WorkloadAxis::Low, WorkloadAxis::High],
            seeds: vec![1, 2],
            batteries: vec![BatteryAxis::Linear],
            thermals: vec![ThermalAxis::Cool, ThermalAxis::Hot],
            ip_counts: vec![1, 4],
        }
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_millis(self.horizon_ms)
    }

    /// Scenarios in the grid (the product of the axis sizes).
    pub fn scenario_count(&self) -> usize {
        self.controllers.len()
            * self.tunings.len()
            * self.workloads.len()
            * self.seeds.len()
            * self.batteries.len()
            * self.thermals.len()
            * self.ip_counts.len()
    }

    /// Validates that every axis is non-empty and parameters are sane.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let axes: [(&str, usize); 7] = [
            ("controllers", self.controllers.len()),
            ("tunings", self.tunings.len()),
            ("workloads", self.workloads.len()),
            ("seeds", self.seeds.len()),
            ("batteries", self.batteries.len()),
            ("thermals", self.thermals.len()),
            ("ip_counts", self.ip_counts.len()),
        ];
        for (name, len) in axes {
            if len == 0 {
                return Err(format!("axis '{name}' is empty"));
            }
        }
        if self.horizon_ms == 0 {
            return Err("horizon_ms must be positive".into());
        }
        // the TOML writer quotes the name verbatim, so characters the
        // parser cannot re-read would break the to_toml round-trip
        if self.name.contains(['"', '\n', '\r']) {
            return Err("name must not contain quotes or newlines".into());
        }
        if !(0.0..=1.0).contains(&self.initial_soc) {
            return Err("initial_soc must lie in [0, 1]".into());
        }
        if self.ip_counts.iter().any(|&n| n == 0 || n > 64) {
            return Err("ip_counts entries must lie in 1..=64".into());
        }
        Ok(())
    }

    /// Axis lengths in declaration order (controllers outermost,
    /// IP counts innermost) — the mixed radix of the grid indices.
    pub fn axis_sizes(&self) -> [usize; 7] {
        [
            self.controllers.len(),
            self.tunings.len(),
            self.workloads.len(),
            self.seeds.len(),
            self.batteries.len(),
            self.thermals.len(),
            self.ip_counts.len(),
        ]
    }

    /// Decodes a grid index into per-axis coordinates (the inverse of the
    /// `expand` ordering).
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside the grid.
    pub fn coords_of(&self, index: usize) -> [usize; 7] {
        assert!(index < self.scenario_count(), "index outside the grid");
        let sizes = self.axis_sizes();
        let mut coords = [0usize; 7];
        let mut rest = index;
        for axis in (0..7).rev() {
            coords[axis] = rest % sizes[axis];
            rest /= sizes[axis];
        }
        coords
    }

    /// Encodes per-axis coordinates back into the grid index.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is outside its axis.
    pub fn index_of(&self, coords: [usize; 7]) -> usize {
        let sizes = self.axis_sizes();
        let mut index = 0;
        for axis in 0..7 {
            assert!(coords[axis] < sizes[axis], "coordinate outside its axis");
            index = index * sizes[axis] + coords[axis];
        }
        index
    }

    /// Builds the single cell at `index` without expanding the whole grid
    /// (identical to `expand()[index]`).
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside the grid.
    pub fn cell_at(&self, index: usize) -> ScenarioSpec {
        let c = self.coords_of(index);
        ScenarioSpec {
            index,
            controller: self.controllers[c[0]],
            tuning: self.tunings[c[1]],
            workload: self.workloads[c[2]],
            seed: self.seeds[c[3]],
            battery: self.batteries[c[4]],
            thermal: self.thermals[c[5]],
            ip_count: self.ip_counts[c[6]],
        }
    }

    /// Number of **baseline groups** in the grid: cells of one group share
    /// every inner axis (workload, seed, battery, thermal, IP count) and
    /// differ only in controller/tuning — exactly the axes an always-`ON1`
    /// baseline run does not depend on. Because controllers and tunings
    /// are the two outermost `expand` axes, a group is one block of inner
    /// coordinates and its id is `index % group_count()`.
    pub fn group_count(&self) -> usize {
        self.workloads.len()
            * self.seeds.len()
            * self.batteries.len()
            * self.thermals.len()
            * self.ip_counts.len()
    }

    /// The baseline-group id of a grid index (see [`Self::group_count`]).
    /// Work leases claim whole groups so that a group's shared baseline is
    /// simulated by exactly one worker process.
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside the grid.
    pub fn group_of(&self, index: usize) -> usize {
        assert!(index < self.scenario_count(), "index outside the grid");
        index % self.group_count()
    }

    /// Grid indices one step away from `index` along a **single axis**
    /// (the hill-climbing neighborhood), in ascending index order.
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside the grid.
    pub fn neighbors_of(&self, index: usize) -> Vec<usize> {
        let sizes = self.axis_sizes();
        let coords = self.coords_of(index);
        let mut out = Vec::new();
        for axis in 0..7 {
            for step in [-1isize, 1] {
                let pos = coords[axis] as isize + step;
                if pos < 0 || pos as usize >= sizes[axis] {
                    continue;
                }
                let mut c = coords;
                c[axis] = pos as usize;
                out.push(self.index_of(c));
            }
        }
        out.sort_unstable();
        out
    }

    /// Expands the grid into concrete scenarios, indices in axis order.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::with_capacity(self.scenario_count());
        for &controller in &self.controllers {
            for &tuning in &self.tunings {
                for &workload in &self.workloads {
                    for &seed in &self.seeds {
                        for &battery in &self.batteries {
                            for &thermal in &self.thermals {
                                for &ip_count in &self.ip_counts {
                                    out.push(ScenarioSpec {
                                        index: out.len(),
                                        controller,
                                        tuning,
                                        workload,
                                        seed,
                                        battery,
                                        thermal,
                                        ip_count,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One cell of the expanded grid.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Position in the expansion (stable across runs and thread counts).
    pub index: usize,
    /// Controller axis value.
    pub controller: ControllerAxis,
    /// Tuning axis value.
    pub tuning: TuningAxis,
    /// Workload axis value.
    pub workload: WorkloadAxis,
    /// Logical workload seed.
    pub seed: u64,
    /// Battery axis value.
    pub battery: BatteryAxis,
    /// Thermal axis value.
    pub thermal: ThermalAxis,
    /// Number of IPs.
    pub ip_count: usize,
}

impl ScenarioSpec {
    /// Human-readable `axis=value` label, unique within a campaign.
    pub fn label(&self) -> String {
        format!(
            "ctrl={}/tune={}/wl={}/seed={}/batt={}/therm={}/ips={}",
            self.controller.label(),
            self.tuning.label(),
            self.workload.label(),
            self.seed,
            self.battery.label(),
            self.thermal.label(),
            self.ip_count,
        )
    }

    /// Builds the concrete [`SocConfig`] for this cell.
    ///
    /// Trace seeds derive from `(master_seed, logical seed, ip index)`
    /// through [`SeedSequence`], so the same cell always replays the same
    /// arrivals no matter which thread builds it.
    pub fn build_config(&self, spec: &CampaignSpec) -> SocConfig {
        let horizon = spec.horizon();
        let generator = self.workload.generator();
        let seeds = SeedSequence::new(spec.master_seed).derive(self.seed);
        let mut cfg = if self.ip_count == 1 {
            SocConfig::single_ip(generator.generate(horizon, seeds.stream(0)))
        } else {
            let ips = (0..self.ip_count)
                .map(|i| {
                    IpConfig::new(
                        format!("ip{i}"),
                        generator.generate(horizon, seeds.stream(i as u64)),
                        i as u8 + 1,
                    )
                })
                .collect();
            SocConfig::multi_ip(ips)
        };
        cfg.controller = self.controller.to_controller();
        cfg.lem = self.tuning.to_tuning();
        cfg.battery = self.battery.to_battery();
        cfg.thermal = self.thermal.to_thermal();
        cfg.initial_soc = dpm_units::Ratio::new(spec.initial_soc);
        cfg
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:04} {}", self.index, self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_validates_and_multiplies() {
        let spec = CampaignSpec::default_sweep();
        spec.validate().unwrap();
        assert_eq!(spec.scenario_count(), 2 * 2 * 2 * 2 * 2);
        assert_eq!(spec.expand().len(), spec.scenario_count());
    }

    #[test]
    fn labels_are_unique_and_indices_sequential() {
        let spec = CampaignSpec::default_sweep();
        let cells = spec.expand();
        let mut labels: Vec<String> = cells.iter().map(ScenarioSpec::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cells.len());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn axis_names_parse_back() {
        for c in ControllerAxis::ALL {
            assert_eq!(ControllerAxis::parse(c.label()).unwrap(), c);
        }
        for t in TuningAxis::ALL {
            assert_eq!(TuningAxis::parse(t.label()).unwrap(), t);
        }
        for w in WorkloadAxis::ALL {
            assert_eq!(WorkloadAxis::parse(w.label()).unwrap(), w);
        }
        for b in BatteryAxis::ALL {
            assert_eq!(BatteryAxis::parse(b.label()).unwrap(), b);
        }
        for t in ThermalAxis::ALL {
            assert_eq!(ThermalAxis::parse(t.label()).unwrap(), t);
        }
        assert!(ControllerAxis::parse("nope").is_err());
    }

    #[test]
    fn configs_are_deterministic_and_validate() {
        let spec = CampaignSpec::default_sweep();
        for cell in spec.expand().iter().take(6) {
            let a = cell.build_config(&spec);
            let b = cell.build_config(&spec);
            a.validate();
            assert_eq!(a, b, "config construction must be pure");
        }
    }

    #[test]
    fn cell_at_agrees_with_expand_and_coords_round_trip() {
        let spec = CampaignSpec::default_sweep();
        for (i, cell) in spec.expand().into_iter().enumerate() {
            assert_eq!(spec.cell_at(i), cell);
            assert_eq!(spec.index_of(spec.coords_of(i)), i);
        }
    }

    #[test]
    fn neighbors_differ_on_exactly_one_axis() {
        let spec = CampaignSpec::default_sweep();
        let n = spec.scenario_count();
        for i in 0..n {
            let here = spec.coords_of(i);
            let neighbors = spec.neighbors_of(i);
            assert!(!neighbors.is_empty());
            assert!(neighbors.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for &j in &neighbors {
                assert_ne!(j, i);
                assert!(j < n);
                let there = spec.coords_of(j);
                let moved: Vec<usize> = (0..7).filter(|&a| here[a] != there[a]).collect();
                assert_eq!(moved.len(), 1, "single-axis move");
                let a = moved[0];
                assert_eq!(here[a].abs_diff(there[a]), 1, "one step along axis {a}");
            }
        }
    }

    #[test]
    fn groups_partition_the_grid_along_the_inner_axes() {
        let spec = CampaignSpec::default_sweep();
        let cells = spec.expand();
        // workloads × seeds × batteries × thermals × ip_counts
        assert_eq!(spec.group_count(), 16);
        for cell in &cells {
            let g = spec.group_of(cell.index);
            assert!(g < spec.group_count());
            // every cell of the group shares the baseline-relevant axes
            for other in cells.iter().filter(|c| spec.group_of(c.index) == g) {
                assert_eq!(cell.workload, other.workload);
                assert_eq!(cell.seed, other.seed);
                assert_eq!(cell.battery, other.battery);
                assert_eq!(cell.thermal, other.thermal);
                assert_eq!(cell.ip_count, other.ip_count);
            }
        }
        // each group holds one cell per (controller, tuning) pair
        let per_group = cells.len() / spec.group_count();
        assert_eq!(per_group, spec.controllers.len() * spec.tunings.len());
    }

    #[test]
    fn multi_ip_cells_get_gem_and_distinct_traces() {
        let spec = CampaignSpec::default_sweep();
        let cell = spec
            .expand()
            .into_iter()
            .find(|c| c.ip_count == 4)
            .expect("sweep has 4-IP cells");
        let cfg = cell.build_config(&spec);
        assert!(cfg.with_gem);
        assert_eq!(cfg.ips.len(), 4);
        assert_ne!(
            cfg.ips[0].trace, cfg.ips[1].trace,
            "per-IP seed streams differ"
        );
    }
}
