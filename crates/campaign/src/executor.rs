//! Pluggable campaign execution backends.
//!
//! The runner no longer owns a thread loop; it dispatches independent
//! **work units** through an [`Executor`]. Two backends exist:
//!
//! * [`ThreadPool`] — the in-process scoped-thread pool (self-scheduling
//!   over an atomic counter, exactly the loop that used to live inside
//!   `runner::parallel_map`).
//! * [`WorkerPool`] — a multi-process pool: N independently spawned
//!   `dpm worker` child processes coordinate **purely through the
//!   campaign archive directory** (atomic lease records, see
//!   [`crate::archive`]); no pipes, sockets or shared memory.
//!
//! The two meet at different granularities on purpose. A thread pool
//! schedules single simulations inside one address space; a worker pool
//! schedules whole grid cells across address spaces, using the archive as
//! the only shared medium — which is what lets workers run on different
//! hosts over a shared filesystem. [`CampaignExecutor`] is the
//! backend-agnostic entry point the CLI dispatches through: results are
//! byte-identical across backends because every result is keyed by grid
//! index and every simulation is deterministic.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::archive::CampaignArchive;
use crate::runner::{run_campaign_with, CampaignRun, RunnerConfig};
use crate::spec::CampaignSpec;
use crate::worker::WorkerSummary;

/// An execution backend for independent, index-addressed work units.
///
/// Implementations may run units in any order and interleaving; callers
/// key results by unit index, so scheduling never changes observable
/// results.
pub trait Executor: Sync {
    /// Executes `unit(i)` for every `i in 0..units`, returning when all
    /// units have run.
    fn execute(&self, units: usize, unit: &(dyn Fn(usize) + Sync));

    /// The backend's parallelism (used for progress lines and to cap
    /// fan-out messages; purely informational).
    fn parallelism(&self) -> usize;
}

/// The in-process backend: scoped OS threads pulling unit indices from a
/// shared atomic counter (work stealing degenerates to self-scheduling
/// because every unit is independent).
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    /// Worker threads; `0` selects the machine's available parallelism.
    pub threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers (`0` = auto).
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }
}

impl Executor for ThreadPool {
    fn execute(&self, units: usize, unit: &(dyn Fn(usize) + Sync)) {
        if units == 0 {
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.parallelism().min(units) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units {
                        break;
                    }
                    unit(i);
                });
            }
        });
    }

    fn parallelism(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Index-ordered parallel map over any [`Executor`]: `job(i)` for `i in
/// 0..n`, results in index order regardless of execution interleaving.
pub fn map_units<T: Send + Sync>(
    executor: &dyn Executor,
    n: usize,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    executor.execute(n, &|i| {
        // each index is scheduled exactly once, so the slot is empty
        let _ = slots[i].set(job(i));
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every unit ran"))
        .collect()
}

/// The multi-process backend: spawns `workers` child `dpm worker`
/// processes over a campaign directory and waits for the grid to drain.
///
/// Children coordinate through the archive's lease records only; any of
/// them can be killed and the survivors reclaim its cells. The pool
/// itself never moves result data — the archive directory is the one
/// shared medium, which is also why additional workers can be launched
/// by hand (even from other hosts over a shared filesystem) while the
/// pool runs.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    /// Child processes to spawn (must be ≥ 1).
    pub workers: usize,
    /// The `dpm` binary to spawn; `None` uses the current executable.
    pub program: Option<PathBuf>,
    /// `--threads` handed to each child (`0` = auto: the machine's
    /// parallelism divided across the children).
    pub threads_per_worker: usize,
    /// Lease time-to-live handed to each child (milliseconds).
    pub ttl_ms: u64,
    /// Disable baseline dedup in the children.
    pub no_dedup: bool,
}

impl WorkerPool {
    /// A pool of `workers` children with default lease parameters.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            program: None,
            threads_per_worker: 0,
            ttl_ms: crate::archive::DEFAULT_LEASE_TTL_MS,
            no_dedup: false,
        }
    }

    /// The per-child thread count: explicit, or the machine's
    /// parallelism split evenly across children (at least 1 each).
    pub fn effective_child_threads(&self) -> usize {
        if self.threads_per_worker > 0 {
            return self.threads_per_worker;
        }
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        (avail / self.workers.max(1)).max(1)
    }

    /// Spawns the children over `dir` and waits for all of them.
    ///
    /// Each child prints a [`WorkerSummary`] as JSON on stdout; the
    /// summaries of the children that exited cleanly are returned along
    /// with a description of each child that did not (a crashed child is
    /// *not* an error for the pool — the survivors, or the caller's
    /// aggregation pass, complete its cells).
    ///
    /// # Errors
    ///
    /// Returns a description when no child can be spawned at all (bad
    /// program path, zero workers).
    pub fn run(&self, dir: &Path) -> Result<(Vec<WorkerSummary>, Vec<String>), String> {
        let threads = self.effective_child_threads();
        let mut argv: Vec<std::ffi::OsString> = vec![
            "worker".into(),
            dir.into(),
            "--threads".into(),
            threads.to_string().into(),
            "--ttl-ms".into(),
            self.ttl_ms.to_string().into(),
        ];
        if self.no_dedup {
            argv.push("--no-dedup".into());
        }
        self.run_command(&argv)
    }

    /// Spawns `workers` children running `dpm <argv...>` and waits for
    /// all of them, collecting one [`WorkerSummary`] JSON line from each
    /// clean child's stdout — the generalized core behind [`Self::run`].
    ///
    /// `dpm search --workers` reuses this to spawn coordinated *search*
    /// children (`dpm search ... --coordinate --worker-summary`) instead
    /// of plain grid-draining workers: a plain worker evaluates the full
    /// grid at fine fidelity, which is exactly wrong for a budgeted or
    /// multi-fidelity search. Every child gets the identical argv; the
    /// children distinguish themselves through their process-unique
    /// lease holder ids.
    ///
    /// # Errors
    ///
    /// Returns a description when no child can be spawned at all (bad
    /// program path, zero workers).
    pub fn run_command(
        &self,
        argv: &[std::ffi::OsString],
    ) -> Result<(Vec<WorkerSummary>, Vec<String>), String> {
        if self.workers == 0 {
            return Err("worker pool needs at least one worker".into());
        }
        let program = match &self.program {
            Some(p) => p.clone(),
            None => std::env::current_exe()
                .map_err(|e| format!("cannot locate the dpm binary to spawn workers: {e}"))?,
        };
        let mut children = Vec::new();
        for k in 0..self.workers {
            let mut cmd = Command::new(&program);
            cmd.args(argv)
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            match cmd.spawn() {
                Ok(child) => children.push((k, child)),
                Err(e) => {
                    // reap whatever was already spawned before reporting
                    for (_, mut c) in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    return Err(format!(
                        "cannot spawn worker {k} ({}): {e}",
                        program.display()
                    ));
                }
            }
        }
        let mut summaries = Vec::new();
        let mut failures = Vec::new();
        for (k, child) in children {
            match child.wait_with_output() {
                Ok(out) if out.status.success() => {
                    let text = String::from_utf8_lossy(&out.stdout);
                    match serde_json::from_str::<WorkerSummary>(text.trim()) {
                        Ok(summary) => summaries.push(summary),
                        Err(e) => failures.push(format!("worker {k}: unreadable summary: {e}")),
                    }
                }
                Ok(out) => failures.push(format!("worker {k} exited with {}", out.status)),
                Err(e) => failures.push(format!("worker {k} could not be awaited: {e}")),
            }
        }
        Ok((summaries, failures))
    }
}

/// A campaign executed through [`CampaignExecutor`]: the (backend-
/// invariant) run plus the per-worker accounting when the multi-process
/// backend was used.
#[derive(Debug)]
pub struct ExecutedCampaign {
    /// The results and this run's local work accounting.
    pub run: CampaignRun,
    /// One summary per worker child that exited cleanly (empty for the
    /// in-process backend).
    pub workers: Vec<WorkerSummary>,
    /// Children that crashed or returned garbage; their cells were
    /// completed by the survivors or the final aggregation pass.
    pub worker_failures: Vec<String>,
}

/// The pluggable execution layer: one entry point, two backends.
#[derive(Debug)]
pub enum CampaignExecutor {
    /// Run every cell in this process on a [`ThreadPool`] (its width
    /// overrides `RunnerConfig::threads`).
    Threads(ThreadPool),
    /// Spawn a [`WorkerPool`] of `dpm worker` children over the campaign
    /// directory, then aggregate from the archive when the grid drains.
    Workers(WorkerPool),
}

impl CampaignExecutor {
    /// Runs `spec` on this backend. The report aggregated from the
    /// returned results is **byte-identical** across backends, thread
    /// counts and worker counts.
    ///
    /// The multi-process backend requires an archive (the coordination
    /// medium). After the children drain the grid, a local aggregation
    /// pass loads every cell from the archive — and executes any cell a
    /// crashed child left behind, so the returned run is always complete.
    ///
    /// # Errors
    ///
    /// Returns a description when the spec is invalid, the worker backend
    /// is used without an archive, or no worker child could be spawned.
    pub fn run(
        &self,
        spec: &CampaignSpec,
        config: &RunnerConfig,
        archive: Option<&CampaignArchive>,
    ) -> Result<ExecutedCampaign, String> {
        match self {
            CampaignExecutor::Threads(pool) => {
                let mut cfg = config.clone();
                cfg.threads = pool.threads;
                let run = run_campaign_with(spec, &cfg, archive)?;
                Ok(ExecutedCampaign {
                    run,
                    workers: Vec::new(),
                    worker_failures: Vec::new(),
                })
            }
            CampaignExecutor::Workers(pool) => {
                let archive = archive.ok_or(
                    "the multi-process backend needs a campaign directory \
                     (the archive is the work-sharing medium)",
                )?;
                let (workers, worker_failures) = pool.run(archive.dir())?;
                // aggregation pass: loads the drained grid (0 simulations
                // when every worker finished) and back-fills any cell a
                // crashed child never completed
                let mut cfg = config.clone();
                cfg.lease = None;
                let run = run_campaign_with(spec, &cfg, Some(archive))?;
                Ok(ExecutedCampaign {
                    run,
                    workers,
                    worker_failures,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn thread_pool_runs_every_unit_exactly_once() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
            pool.execute(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn map_units_keeps_index_order_on_any_width() {
        for threads in [1, 3, 16] {
            let pool = ThreadPool::new(threads);
            let out = map_units(&pool, 33, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_units_is_a_no_op() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = map_units(&pool, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn auto_width_resolves_to_at_least_one() {
        assert!(ThreadPool::new(0).parallelism() >= 1);
        assert_eq!(ThreadPool::new(3).parallelism(), 3);
    }

    #[test]
    fn empty_worker_pool_is_an_error() {
        let err = WorkerPool::new(0)
            .run(Path::new("/nonexistent"))
            .unwrap_err();
        assert!(err.contains("at least one worker"), "{err}");
    }

    #[test]
    fn child_threads_split_the_machine() {
        let mut pool = WorkerPool::new(2);
        pool.threads_per_worker = 3;
        assert_eq!(pool.effective_child_threads(), 3);
        pool.threads_per_worker = 0;
        assert!(pool.effective_child_threads() >= 1);
    }
}
