//! Adaptive campaign search: pluggable, budgeted, deterministic
//! exploration strategies over a [`CampaignSpec`] grid.
//!
//! The search layer is split into two halves:
//!
//! * a **[`Strategy`]** decides *which cells to look at next*: it
//!   proposes batches of unevaluated grid indices, observes each
//!   evaluated cell's result, and may rank likely *next* proposals
//!   through [`Strategy::prefetch_hint`] (the driver's speculative
//!   prefetch). Four strategies ship in-tree — [`ClimbStrategy`] (the
//!   original neighborhood climber), [`AnnealStrategy`] (seeded
//!   simulated annealing over the same single-axis neighbor primitive),
//!   [`ParetoStrategy`] (multi-objective non-dominated front
//!   expansion), and [`PortfolioStrategy`] (a restart portfolio racing
//!   the other three under one shared budget);
//! * the **driver** ([`drive_strategy`]) owns everything else: budget
//!   accounting, batch execution through
//!   [`crate::runner::run_cells_with`], the cross-batch
//!   [`BaselineCache`], archive resume/store, and [`RunStats`]
//!   aggregation. Strategies never touch the executor, so every
//!   guarantee of the runner carries over to every strategy: results
//!   are thread-count invariant, a campaign archive acts as a **result
//!   cache** (re-searching a directory never re-simulates an archived
//!   cell), and with [`RunnerConfig::lease`] set any number of
//!   coordinated processes share one exploration through the archive's
//!   work leases.
//!
//! Every strategy is **complete**: when its local move pool is
//! exhausted it restarts from the lowest-index unevaluated cell, so
//! with `budget >= grid size` the exploration degenerates to an
//! exhaustive sweep. The scalar strategies then provably return the
//! campaign argmax (same comparator, same grid-index tie-break), and
//! the Pareto strategy returns exactly the brute-force non-dominated
//! set ([`MultiObjective::front`]).
//!
//! Every strategy is also **byte-deterministic**: the climber and the
//! Pareto expansion are deterministic by construction, and the annealer
//! draws from a [`SplitMix64`](https://prng.di.unimi.it/splitmix64.c)
//! stream seeded from its [`AnnealSchedule`] — so reports are
//! byte-identical across thread counts, archived/fresh mixes, and
//! coordinated multi-process runs; only [`SearchOutcome::stats`] (work
//! actually done) differs, which is why it is not part of any report.

use crate::archive::CampaignArchive;
use crate::objective::{CellScore, MultiObjective, MultiScore, Objective};
use crate::runner::{
    run_cells_with, BaselineCache, Fidelity, RunStats, RunnerConfig, ScenarioMetrics,
    ScenarioResult,
};
use crate::spec::{CampaignSpec, ScenarioSpec};

/// Default number of start-frontier cells.
pub const DEFAULT_START_POINTS: usize = 4;

/// Fine-equivalent cost ratio of the coarse evaluator: one fine
/// simulation buys [`COARSE_FACTOR`] coarse evaluations. The coarse
/// path is benchmarked at well over 10× the fine throughput (the
/// `simspeed` bench guards the floor), so budgeting coarse work at a
/// flat 1/10 never makes a multi-fidelity search spend more wall clock
/// than the fine-only search it replaces.
pub const COARSE_FACTOR: usize = 10;

/// How a search spends its budget across evaluation fidelities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchFidelity {
    /// Every evaluation runs the full kernel (the default; reports are
    /// byte-identical to pre-multi-fidelity builds).
    #[default]
    Fine,
    /// Every evaluation uses the coarse dwell-time path: an
    /// order-of-magnitude faster *approximate* search — the winner is a
    /// screening result, not a report-grade number.
    Coarse,
    /// Screen broadly at coarse fidelity, then promote only the
    /// top-ranked candidates to full-kernel runs, all within the same
    /// fine-equivalent budget (coarse evaluations cost
    /// 1/[`COARSE_FACTOR`] each). The reported winner and trajectory
    /// come from the *fine* evaluations only.
    Multi,
}

impl SearchFidelity {
    /// Every fidelity mode.
    pub const ALL: [SearchFidelity; 3] = [
        SearchFidelity::Fine,
        SearchFidelity::Coarse,
        SearchFidelity::Multi,
    ];

    /// The CLI/spec-file name of this mode.
    pub fn label(self) -> &'static str {
        match self {
            SearchFidelity::Fine => "fine",
            SearchFidelity::Coarse => "coarse",
            SearchFidelity::Multi => "multi",
        }
    }

    /// Parses a CLI/spec-file name.
    ///
    /// # Errors
    ///
    /// Returns a description listing the accepted names.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|f| f.label() == s)
            .ok_or_else(|| {
                format!(
                    "unknown fidelity '{s}' (expected one of: {})",
                    Self::ALL.map(Self::label).join(", ")
                )
            })
    }
}

/// Which exploration strategy drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StrategyKind {
    /// Deterministic best-first neighborhood climbing (the default).
    Climb,
    /// Seeded simulated annealing over the same neighbor primitive.
    Anneal,
    /// Multi-objective non-dominated front expansion.
    Pareto,
    /// A restart portfolio racing climb, anneal and single-objective
    /// front expansion round-robin under one shared budget.
    Portfolio,
}

impl StrategyKind {
    /// Every strategy kind.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Climb,
        StrategyKind::Anneal,
        StrategyKind::Pareto,
        StrategyKind::Portfolio,
    ];

    /// The CLI/spec-file name of this strategy.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Climb => "climb",
            StrategyKind::Anneal => "anneal",
            StrategyKind::Pareto => "pareto",
            StrategyKind::Portfolio => "portfolio",
        }
    }

    /// Parses a CLI/spec-file name.
    ///
    /// # Errors
    ///
    /// Returns a description listing the accepted names.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|k| k.label() == s)
            .ok_or_else(|| {
                format!(
                    "unknown strategy '{s}' (expected one of: {})",
                    Self::ALL.map(Self::label).join(", ")
                )
            })
    }
}

/// The annealer's temperature schedule and random stream.
///
/// Temperature is in **objective units**: a move that worsens the
/// objective by `d` is accepted with probability `exp(-d / temp)`,
/// after which `temp` is multiplied by `cooling`. The stream is a
/// SplitMix64 generator seeded with `seed`, so the whole walk is a pure
/// function of the schedule and the (deterministic) cell metrics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnnealSchedule {
    /// Starting temperature (objective units, > 0).
    pub initial_temp: f64,
    /// Geometric cooling factor applied after every annealing step
    /// (0 < cooling < 1).
    pub cooling: f64,
    /// Seed of the proposal/acceptance stream.
    pub seed: u64,
}

impl Default for AnnealSchedule {
    fn default() -> Self {
        Self {
            initial_temp: 5.0,
            cooling: 0.9,
            seed: 0x5EED_DA7E,
        }
    }
}

impl AnnealSchedule {
    /// Validates the schedule parameters.
    ///
    /// # Errors
    ///
    /// Returns a description when the temperature is not positive and
    /// finite or the cooling factor lies outside `(0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.initial_temp > 0.0 && self.initial_temp.is_finite()) {
            return Err("anneal initial_temp must be positive and finite".into());
        }
        if !(self.cooling > 0.0 && self.cooling < 1.0) {
            return Err("anneal cooling must lie strictly between 0 and 1".into());
        }
        Ok(())
    }
}

/// What to search for and how hard: the objective plus the evaluation
/// budget (distinct cells scored, archived hits included — a cache hit
/// spends budget but no simulation) and the scalar strategy driving the
/// exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// What "best" means.
    pub objective: Objective,
    /// Maximum distinct cells to evaluate (clamped to the grid size).
    pub budget: usize,
    /// Start-frontier size (clamped to the budget and the grid).
    pub start_points: usize,
    /// The exploration strategy ([`StrategyKind::Pareto`] is rejected
    /// here — a front is not a scalar winner; use [`pareto_campaign`]).
    pub strategy: StrategyKind,
    /// The annealing schedule (read only by [`StrategyKind::Anneal`]).
    pub anneal: AnnealSchedule,
    /// How the budget is spent across fidelities (see
    /// [`SearchFidelity`]; the budget is always in fine-equivalents).
    pub fidelity: SearchFidelity,
    /// Speculative neighbor prefetch: while a proposed batch is in
    /// flight, idle executor capacity evaluates the strategy's
    /// [`Strategy::prefetch_hint`] cells into the archive. Reports stay
    /// byte-identical with prefetch on or off (results are keyed by
    /// grid index and the strategy only ever observes its own
    /// proposals); the extra work is accounted in the `speculative_*`
    /// [`RunStats`] fields and never charged against `budget`. Needs an
    /// archive (the prefetched results must land somewhere). Off by
    /// default.
    pub prefetch: bool,
}

impl SearchSpec {
    /// A climbing fine-fidelity search with the default start frontier.
    pub fn new(objective: Objective, budget: usize) -> Self {
        Self {
            objective,
            budget,
            start_points: DEFAULT_START_POINTS,
            strategy: StrategyKind::Climb,
            anneal: AnnealSchedule::default(),
            fidelity: SearchFidelity::Fine,
            prefetch: false,
        }
    }

    /// This search with a different scalar strategy.
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// This search with a different fidelity mode.
    pub fn with_fidelity(mut self, fidelity: SearchFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// This search with speculative neighbor prefetch enabled.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }
}

/// What a Pareto search explores: the joint objectives plus the same
/// budget semantics as [`SearchSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoSpec {
    /// The jointly optimized objectives.
    pub objectives: MultiObjective,
    /// Maximum distinct cells to evaluate (clamped to the grid size).
    pub budget: usize,
    /// Start-frontier size (clamped to the budget and the grid).
    pub start_points: usize,
    /// Speculative neighbor prefetch (see [`SearchSpec::prefetch`]).
    pub prefetch: bool,
}

impl ParetoSpec {
    /// A Pareto search with the default start frontier.
    pub fn new(objectives: MultiObjective, budget: usize) -> Self {
        Self {
            objectives,
            budget,
            start_points: DEFAULT_START_POINTS,
            prefetch: false,
        }
    }

    /// This search with speculative neighbor prefetch enabled.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }
}

/// One scored cell in evaluation order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Evaluation {
    /// Search round (0 = start frontier).
    pub round: usize,
    /// Grid index of the cell.
    pub index: usize,
    /// Human-readable cell label.
    pub label: String,
    /// Objective value; `None` when the cell failed (panicked).
    pub value: Option<f64>,
    /// Whether the constraint held (vacuously `true` without one,
    /// `false` for failed cells).
    pub feasible: bool,
    /// `true` when this evaluation became the best cell so far.
    pub improved: bool,
}

/// The winning cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchBest {
    /// Grid index.
    pub index: usize,
    /// Human-readable cell label.
    pub label: String,
    /// Objective value.
    pub value: f64,
    /// Whether the constraint held (`false` means *no* evaluated cell
    /// was feasible; the least-bad infeasible cell is reported).
    pub feasible: bool,
    /// The cell's full metrics.
    pub metrics: ScenarioMetrics,
}

/// The deterministic search result: byte-identical for any thread count
/// and any archived/fresh mix (work accounting deliberately lives in
/// [`SearchOutcome::stats`] instead).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchReport {
    /// Campaign name.
    pub name: String,
    /// The strategy that drove the exploration ([`StrategyKind::label`]).
    pub strategy: String,
    /// Human-readable objective ([`Objective::describe`]).
    pub objective: String,
    /// Cells in the full grid.
    pub grid_cells: usize,
    /// The requested evaluation budget.
    pub budget: usize,
    /// Distinct cells actually evaluated.
    pub evaluated: usize,
    /// Search rounds executed.
    pub rounds: usize,
    /// The winner; `None` only when every evaluated cell failed.
    pub best: Option<SearchBest>,
    /// Every evaluation, in order.
    pub trajectory: Vec<Evaluation>,
    /// The fidelity mode that produced this report
    /// ([`SearchFidelity::label`]).
    pub fidelity: String,
    /// Coarse evaluations spent screening (zero outside multi mode).
    /// In a multi report, `evaluated`/`best`/`trajectory` cover the
    /// *fine* promotions exclusively.
    pub screened: usize,
}

/// A finished search: the deterministic report plus this run's work
/// accounting.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The (run-invariant) search report.
    pub report: SearchReport,
    /// Work done by this particular run, summed over all batches;
    /// `total_cells` is the grid size, so `simulations` vs
    /// `2 * total_cells` is the saving over a dedup-free exhaustive
    /// sweep.
    pub stats: RunStats,
    /// Archive-write failures, as in [`crate::runner::CampaignRun`].
    pub archive_errors: Vec<String>,
}

/// One cell of a Pareto front.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParetoPoint {
    /// Grid index.
    pub index: usize,
    /// Human-readable cell label.
    pub label: String,
    /// Objective values, in [`MultiObjective::objectives`] order.
    pub values: Vec<f64>,
    /// Whether every constraint held.
    pub feasible: bool,
    /// The cell's full metrics.
    pub metrics: ScenarioMetrics,
}

/// One round of a Pareto search: how the front grew while cells
/// accumulated (the dominated-count trajectory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParetoRound {
    /// Search round (0 = start frontier).
    pub round: usize,
    /// Distinct cells evaluated so far.
    pub evaluated: usize,
    /// Non-dominated cells after this round.
    pub front: usize,
    /// Evaluated (non-failed) cells dominated by some other cell.
    pub dominated: usize,
}

/// The deterministic Pareto search result: byte-identical for any
/// thread count, archived/fresh mix and worker count, like
/// [`SearchReport`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParetoReport {
    /// Campaign name.
    pub name: String,
    /// Always `"pareto"` (so reports self-identify like [`SearchReport`]).
    pub strategy: String,
    /// Human-readable objectives ([`MultiObjective::describe`]).
    pub objectives: String,
    /// Per-objective metric labels, in [`ParetoPoint::values`] order.
    pub objective_labels: Vec<String>,
    /// Cells in the full grid.
    pub grid_cells: usize,
    /// The requested evaluation budget.
    pub budget: usize,
    /// Distinct cells actually evaluated.
    pub evaluated: usize,
    /// Search rounds executed.
    pub rounds: usize,
    /// The non-dominated front over every evaluated cell, sorted by
    /// grid index. With `budget >= grid_cells` this is exactly the
    /// brute-force non-dominated set of the whole campaign.
    pub front: Vec<ParetoPoint>,
    /// Front growth and dominated counts, round by round.
    pub trajectory: Vec<ParetoRound>,
}

/// A finished Pareto search: the deterministic report plus this run's
/// work accounting.
#[derive(Debug)]
pub struct ParetoOutcome {
    /// The (run-invariant) Pareto report.
    pub report: ParetoReport,
    /// Work done by this particular run (see [`SearchOutcome::stats`]).
    pub stats: RunStats,
    /// Archive-write failures, as in [`crate::runner::CampaignRun`].
    pub archive_errors: Vec<String>,
}

// ---- the strategy abstraction ---------------------------------------

/// A pluggable exploration strategy: proposes batches of unevaluated
/// cells and observes their results.
///
/// The contract with [`drive_strategy`]:
///
/// * `propose` returns grid indices the strategy has **not yet been
///   shown** (the driver filters and `debug_assert`s duplicates); an
///   empty batch ends the search;
/// * every proposed cell that fits the remaining budget is executed and
///   fed back through `observe`, in ascending-index batch order, before
///   the next `propose`;
/// * strategies never execute anything themselves — budget, caching,
///   archives and leases belong to the driver, which is how every
///   strategy inherits the runner's determinism and distribution
///   guarantees.
pub trait Strategy {
    /// The next cells to evaluate; empty ends the search.
    fn propose(&mut self, spec: &CampaignSpec) -> Vec<usize>;

    /// One evaluated cell's outcome.
    fn observe(&mut self, index: usize, result: &ScenarioResult);

    /// A deterministic ranking of the cells this strategy is *likely*
    /// to propose next (best guesses first), for the driver's
    /// speculative prefetch. Called after `propose`, before the batch's
    /// results are observed — so hints predict the round after the one
    /// in flight. Hints are advisory: the driver filters out evaluated
    /// and in-flight cells, caps the rest to idle executor capacity,
    /// and never feeds speculative results back through `observe`. The
    /// default hints nothing (no speculation).
    fn prefetch_hint(&self, _spec: &CampaignSpec) -> Vec<usize> {
        Vec::new()
    }
}

/// Evenly-spread start frontier: `count` cells at indices `k * n /
/// count` — deterministic and strictly increasing for `count <= n`.
fn start_frontier(n: usize, count: usize) -> Vec<usize> {
    (0..count).map(|k| k * n / count).collect()
}

/// Per-cell scalar search state shared by the scalar strategies.
/// Best-so-far tracking deliberately does **not** live here: the report
/// derives it in [`assemble_scalar`] through [`Objective::wins`], the
/// one comparator shared with [`Objective::argbest`].
struct Scoreboard {
    objective: Objective,
    /// `None` = unevaluated; `Some(None)` = evaluated but failed.
    scores: Vec<Option<Option<CellScore>>>,
    expanded: Vec<bool>,
}

impl Scoreboard {
    fn new(objective: Objective, n: usize) -> Self {
        Self {
            objective,
            scores: vec![None; n],
            expanded: vec![false; n],
        }
    }

    /// Records a cell's score.
    fn record(&mut self, index: usize, score: Option<CellScore>) {
        debug_assert!(self.scores[index].is_none(), "cell evaluated twice");
        self.scores[index] = Some(score);
    }

    fn is_evaluated(&self, index: usize) -> bool {
        self.scores[index].is_some()
    }

    /// The best evaluated, not-yet-expanded, non-failed cell (ties to
    /// the lowest index), or `None` when the whole evaluated set has
    /// been expanded.
    fn best_unexpanded(&self) -> Option<usize> {
        let mut best: Option<(usize, CellScore)> = None;
        for (i, slot) in self.scores.iter().enumerate() {
            if self.expanded[i] {
                continue;
            }
            let Some(Some(score)) = slot else { continue };
            let wins = match best {
                None => true,
                Some((_, bs)) => self.objective.better(*score, bs),
            };
            if wins {
                best = Some((i, *score));
            }
        }
        best.map(|(i, _)| i)
    }

    /// The lowest-index unevaluated cell (the restart point).
    fn first_unevaluated(&self) -> Option<usize> {
        self.scores.iter().position(Option::is_none)
    }
}

/// The original deterministic neighborhood climber: evaluate an
/// evenly-spread start frontier, then repeatedly expand the best
/// evaluated-but-unexpanded cell's single-axis neighbors
/// ([`CampaignSpec::neighbors_of`]), restarting from the lowest-index
/// unevaluated cell when every neighborhood is exhausted.
pub struct ClimbStrategy {
    board: Scoreboard,
    start_points: usize,
    started: bool,
}

impl ClimbStrategy {
    /// A climber over `spec`'s grid.
    pub fn new(spec: &CampaignSpec, objective: Objective, start_points: usize) -> Self {
        Self {
            board: Scoreboard::new(objective, spec.scenario_count()),
            start_points,
            started: false,
        }
    }
}

impl Strategy for ClimbStrategy {
    fn propose(&mut self, spec: &CampaignSpec) -> Vec<usize> {
        let n = spec.scenario_count();
        if !self.started {
            self.started = true;
            return start_frontier(n, self.start_points.clamp(1, n));
        }
        while let Some(center) = self.board.best_unexpanded() {
            self.board.expanded[center] = true;
            let fresh: Vec<usize> = spec
                .neighbors_of(center)
                .into_iter()
                .filter(|&j| !self.board.is_evaluated(j))
                .collect();
            if !fresh.is_empty() {
                return fresh;
            }
        }
        self.board.first_unevaluated().into_iter().collect()
    }

    fn observe(&mut self, index: usize, result: &ScenarioResult) {
        let score = self.board.objective.score(result);
        self.board.record(index, score);
    }

    /// The climber's likely next proposal: the unevaluated neighbors of
    /// the best evaluated-but-unexpanded cell — exactly the batch the
    /// next `propose` returns if the in-flight batch beats nothing —
    /// falling back to the restart cell.
    fn prefetch_hint(&self, spec: &CampaignSpec) -> Vec<usize> {
        if !self.started {
            return Vec::new();
        }
        match self.board.best_unexpanded() {
            Some(center) => spec
                .neighbors_of(center)
                .into_iter()
                .filter(|&j| !self.board.is_evaluated(j))
                .collect(),
            None => self.board.first_unevaluated().into_iter().collect(),
        }
    }
}

/// A tiny deterministic SplitMix64 stream (the annealer's only source
/// of randomness — no platform or thread dependence anywhere).
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` (53 mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n` (modulo bias is irrelevant at neighborhood
    /// sizes of at most 14).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Seeded simulated annealing over the single-axis neighbor primitive:
/// after the start frontier, each round proposes one random unevaluated
/// neighbor of the walker's current cell and moves there when it is
/// better — or, with probability `exp(-worsening / temp)`, even when it
/// is worse — cooling the temperature geometrically after every step.
/// When the current neighborhood is exhausted the walker jumps to the
/// lowest-index unevaluated cell (which keeps the strategy complete:
/// full budget ⇒ exhaustive sweep ⇒ the argmax, because the **best**
/// cell is tracked globally over everything evaluated, independent of
/// where the walker wanders).
///
/// Walker policy details (documented because they are part of the
/// byte-deterministic behavior): failed cells are never moved to;
/// moves from a feasible cell to an infeasible one are always rejected
/// (the walk never leaves the feasible region voluntarily); restart
/// jumps are unconditional.
pub struct AnnealStrategy {
    board: Scoreboard,
    start_points: usize,
    rng: SplitMix64,
    temp: f64,
    cooling: f64,
    current: Option<(usize, CellScore)>,
    /// The cell proposed as an annealing step (None for frontier or
    /// restart batches).
    pending: Option<usize>,
    /// The cell proposed as a restart jump.
    jump: Option<usize>,
    started: bool,
}

impl AnnealStrategy {
    /// An annealer over `spec`'s grid.
    pub fn new(
        spec: &CampaignSpec,
        objective: Objective,
        start_points: usize,
        schedule: &AnnealSchedule,
    ) -> Self {
        Self {
            board: Scoreboard::new(objective, spec.scenario_count()),
            start_points,
            rng: SplitMix64(schedule.seed),
            temp: schedule.initial_temp,
            cooling: schedule.cooling,
            current: None,
            pending: None,
            jump: None,
            started: false,
        }
    }
}

impl Strategy for AnnealStrategy {
    fn propose(&mut self, spec: &CampaignSpec) -> Vec<usize> {
        let n = spec.scenario_count();
        if !self.started {
            self.started = true;
            return start_frontier(n, self.start_points.clamp(1, n));
        }
        let fresh: Vec<usize> = match self.current {
            Some((cur, _)) => spec
                .neighbors_of(cur)
                .into_iter()
                .filter(|&j| !self.board.is_evaluated(j))
                .collect(),
            // every cell so far failed: no position to walk from
            None => Vec::new(),
        };
        if fresh.is_empty() {
            // neighborhood exhausted (or no walker yet): restart from
            // the lowest-index unevaluated cell
            let Some(j) = self.board.first_unevaluated() else {
                return Vec::new();
            };
            self.jump = Some(j);
            return vec![j];
        }
        let j = fresh[self.rng.below(fresh.len())];
        self.pending = Some(j);
        vec![j]
    }

    fn observe(&mut self, index: usize, result: &ScenarioResult) {
        let score = self.board.objective.score(result);
        self.board.record(index, score);
        let step = self.pending.take() == Some(index);
        let jumped = self.jump.take() == Some(index);
        let accept = match (self.current, score) {
            (_, None) => false, // failed cells are never moved to
            (None, Some(_)) => true,
            (Some(_), Some(_)) if jumped => true, // restarts always move
            (Some((_, cs)), Some(s)) if step => {
                if self.board.objective.better(s, cs) {
                    true
                } else if cs.feasible && !s.feasible {
                    false // never voluntarily leave the feasible region
                } else {
                    let worsening = (s.value - cs.value).abs();
                    self.rng.next_f64() < (-worsening / self.temp.max(1e-300)).exp()
                }
            }
            // frontier (batch) observations move greedily and spend no
            // randomness — the walk depends only on annealing steps
            (Some((_, cs)), Some(s)) => self.board.objective.better(s, cs),
        };
        if accept {
            self.current = Some((index, score.expect("accepted cells are scored")));
        }
        if step {
            self.temp *= self.cooling;
        }
    }

    /// The annealer's candidate pool for its next draw: the unevaluated
    /// neighbors of the current cell (the pool if the in-flight step is
    /// rejected) and of the pending step (the pool if it is accepted),
    /// falling back to the restart cell. Reads no randomness, so
    /// hinting never perturbs the walk.
    fn prefetch_hint(&self, spec: &CampaignSpec) -> Vec<usize> {
        if !self.started {
            return Vec::new();
        }
        let mut hint: Vec<usize> = Vec::new();
        if let Some((cur, _)) = self.current {
            hint.extend(spec.neighbors_of(cur));
        }
        if let Some(pending) = self.pending {
            hint.extend(spec.neighbors_of(pending));
        }
        hint.retain(|&j| !self.board.is_evaluated(j));
        hint.sort_unstable();
        hint.dedup();
        if hint.is_empty() {
            return self.board.first_unevaluated().into_iter().collect();
        }
        hint
    }
}

/// Multi-objective front expansion: evaluate the start frontier, then
/// each round expand the unevaluated single-axis neighbors of every
/// not-yet-expanded cell of the current **non-dominated front**,
/// restarting from the lowest-index unevaluated cell when the whole
/// front is expanded. Complete by the same argument as the scalar
/// strategies, so full budget ⇒ the front over every evaluated cell is
/// the brute-force non-dominated set of the campaign.
pub struct ParetoStrategy {
    objectives: MultiObjective,
    /// `None` = unevaluated; `Some(None)` = evaluated but failed.
    scores: Vec<Option<Option<MultiScore>>>,
    expanded: Vec<bool>,
    start_points: usize,
    started: bool,
    /// The most recent proposal (prefetch hints rank its neighborhood:
    /// cells the next round expands if the in-flight batch joins the
    /// front).
    last_batch: Vec<usize>,
}

impl ParetoStrategy {
    /// A front expander over `spec`'s grid.
    pub fn new(spec: &CampaignSpec, objectives: MultiObjective, start_points: usize) -> Self {
        let n = spec.scenario_count();
        Self {
            objectives,
            scores: vec![None; n],
            expanded: vec![false; n],
            start_points,
            started: false,
            last_batch: Vec::new(),
        }
    }

    /// Indices of the current non-dominated front (non-failed evaluated
    /// cells no other evaluated cell dominates), ascending — through
    /// the one shared filter, [`MultiObjective::dominated_flags`].
    fn front_indices(&self) -> Vec<usize> {
        let scored: Vec<(usize, &MultiScore)> = self
            .scores
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some(Some(score)) => Some((i, score)),
                _ => None,
            })
            .collect();
        let flags = self
            .objectives
            .dominated_flags(&scored.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        scored
            .iter()
            .zip(&flags)
            .filter(|(_, dominated)| !**dominated)
            .map(|((i, _), _)| *i)
            .collect()
    }
}

impl Strategy for ParetoStrategy {
    fn propose(&mut self, spec: &CampaignSpec) -> Vec<usize> {
        let n = spec.scenario_count();
        if !self.started {
            self.started = true;
            self.last_batch = start_frontier(n, self.start_points.clamp(1, n));
            return self.last_batch.clone();
        }
        loop {
            let unexpanded: Vec<usize> = self
                .front_indices()
                .into_iter()
                .filter(|&i| !self.expanded[i])
                .collect();
            if unexpanded.is_empty() {
                // the whole front is expanded: restart (or finish)
                self.last_batch = self
                    .scores
                    .iter()
                    .position(Option::is_none)
                    .into_iter()
                    .collect();
                return self.last_batch.clone();
            }
            let mut batch: Vec<usize> = Vec::new();
            for center in unexpanded {
                self.expanded[center] = true;
                batch.extend(
                    spec.neighbors_of(center)
                        .into_iter()
                        .filter(|&j| self.scores[j].is_none()),
                );
            }
            batch.sort_unstable();
            batch.dedup();
            if !batch.is_empty() {
                self.last_batch = batch.clone();
                return batch;
            }
            // every neighbor was already evaluated; the next iteration
            // either finds newly unexpanded front cells (none — we just
            // expanded them all) or restarts
        }
    }

    fn observe(&mut self, index: usize, result: &ScenarioResult) {
        debug_assert!(self.scores[index].is_none(), "cell evaluated twice");
        self.scores[index] = Some(self.objectives.score(result));
    }

    /// The front expander's likely next proposal: the unevaluated
    /// neighbors of the in-flight batch (the cells the next round
    /// expands when batch cells join the front), falling back to the
    /// restart cell.
    fn prefetch_hint(&self, spec: &CampaignSpec) -> Vec<usize> {
        let mut hint: Vec<usize> = self
            .last_batch
            .iter()
            .flat_map(|&c| spec.neighbors_of(c))
            .filter(|&j| self.scores[j].is_none())
            .collect();
        hint.sort_unstable();
        hint.dedup();
        if hint.is_empty() {
            return self
                .scores
                .iter()
                .position(Option::is_none)
                .into_iter()
                .collect();
        }
        hint
    }
}

/// A restart portfolio racing every scalar approach under one shared
/// budget: a climber, an annealer and a *single-objective* front
/// expander take turns proposing round-robin, while every result fans
/// out to all three — each sub-strategy always sees the complete
/// evaluation history, exactly as if it had proposed everything itself.
///
/// Guarantees, inherited from the subs:
///
/// * **byte-deterministic** — the rotation is fixed, the subs are
///   deterministic, and the annealer spends randomness only on its own
///   annealing steps (fan-out observations are greedy frontier moves);
/// * **complete** — whichever sub holds the turn restarts from the
///   lowest-index unevaluated cell when its move pool is empty, so the
///   portfolio never stalls while cells remain and full budget still
///   degenerates to an exhaustive sweep (⇒ the provable argmax).
///
/// The front-expander sub runs the Pareto expansion over the one scalar
/// objective — a deliberately greedy "expand every cell tied for best"
/// racer, not a multi-objective front (scalar searches report a single
/// winner either way; [`StrategyKind::Pareto`] proper stays the
/// multi-objective entry point).
pub struct PortfolioStrategy {
    subs: Vec<Box<dyn Strategy>>,
    evaluated: Vec<bool>,
    /// Which sub proposes next (rotates every successful turn).
    cursor: usize,
}

impl PortfolioStrategy {
    /// A portfolio over `spec`'s grid.
    pub fn new(
        spec: &CampaignSpec,
        objective: Objective,
        start_points: usize,
        schedule: &AnnealSchedule,
    ) -> Self {
        // a single-objective "front": dominance degenerates to the
        // objective's comparator, so the front is the set of cells tied
        // for best — built directly (MultiObjective::new insists on two
        // objectives because *users* asking for one scalar want a
        // search, but the portfolio wants exactly this degenerate racer)
        let single = MultiObjective {
            objectives: vec![objective],
            constraint: None,
        };
        let subs: Vec<Box<dyn Strategy>> = vec![
            Box::new(ClimbStrategy::new(spec, objective, start_points)),
            Box::new(AnnealStrategy::new(spec, objective, start_points, schedule)),
            Box::new(ParetoStrategy::new(spec, single, start_points)),
        ];
        Self {
            subs,
            evaluated: vec![false; spec.scenario_count()],
            cursor: 0,
        }
    }
}

impl Strategy for PortfolioStrategy {
    fn propose(&mut self, spec: &CampaignSpec) -> Vec<usize> {
        // ask each sub in rotation; the first non-empty (filtered)
        // batch wins the turn. The filter is load-bearing exactly once
        // per sub — its unconditional start frontier may repeat cells
        // another sub already proposed — and defensive afterwards: subs
        // observe every result, so their later proposals are always
        // fresh. All subs empty ⇒ the grid is exhausted.
        for _ in 0..self.subs.len() {
            let turn = self.cursor;
            self.cursor = (self.cursor + 1) % self.subs.len();
            let mut batch = self.subs[turn].propose(spec);
            batch.retain(|&i| !self.evaluated[i]);
            batch.sort_unstable();
            batch.dedup();
            if !batch.is_empty() {
                return batch;
            }
        }
        Vec::new()
    }

    fn observe(&mut self, index: usize, result: &ScenarioResult) {
        self.evaluated[index] = true;
        for sub in &mut self.subs {
            sub.observe(index, result);
        }
    }

    /// Delegates to the sub holding the next turn.
    fn prefetch_hint(&self, spec: &CampaignSpec) -> Vec<usize> {
        let mut hint = self.subs[self.cursor].prefetch_hint(spec);
        hint.retain(|&i| !self.evaluated[i]);
        hint
    }
}

// ---- the driver ------------------------------------------------------

/// What [`drive_strategy`] hands back: every evaluated cell (tagged
/// with its round) plus the run's work accounting.
pub struct Exploration {
    /// `(round, result)` for every evaluated cell, in evaluation order.
    pub evaluations: Vec<(usize, ScenarioResult)>,
    /// Batches executed.
    pub rounds: usize,
    /// Work done by this run (`total_cells` set to the grid size).
    pub stats: RunStats,
    /// Archive-write failures, as in [`crate::runner::CampaignRun`].
    pub archive_errors: Vec<String>,
}

/// Runs `strategy` over `spec`'s grid until the budget is spent or the
/// strategy stops proposing, executing each batch through
/// [`run_cells_with`] (archive resume/store, baseline dedup, lease
/// coordination — everything the campaign runner guarantees).
///
/// With `prefetch` set (and an archive to land results in), each round
/// also executes the strategy's [`Strategy::prefetch_hint`] cells —
/// capped to the executor capacity the batch leaves idle and to the
/// budget the search can still spend — *in the same runner call as the
/// batch*, so speculation rides the pool's free threads. Speculative
/// results are stored in the archive and otherwise discarded: the
/// strategy never observes them, the budget never pays for them (their
/// work lands in the `speculative_*` [`RunStats`] fields), and a later
/// round proposing a prefetched cell is served a free archive hit. The
/// exploration — and therefore every report — is byte-identical with
/// prefetch on or off.
///
/// # Errors
///
/// Returns a description when the spec is invalid or the budget is
/// zero. Scenario panics are not errors; failed cells are handed to the
/// strategy like any other result.
pub fn drive_strategy(
    spec: &CampaignSpec,
    strategy: &mut dyn Strategy,
    budget: usize,
    config: &RunnerConfig,
    archive: Option<&CampaignArchive>,
    prefetch: bool,
) -> Result<Exploration, String> {
    spec.validate()?;
    if budget == 0 {
        return Err("search budget must be positive".into());
    }
    let n = spec.scenario_count();
    let budget = budget.min(n);

    let mut evaluated = vec![false; n];
    let mut evaluations: Vec<(usize, ScenarioResult)> = Vec::new();
    let mut stats = RunStats::default();
    let mut archive_errors = Vec::new();
    let mut baselines = BaselineCache::new();
    let mut rounds = 0;

    while evaluations.len() < budget {
        let mut batch = strategy.propose(spec);
        debug_assert!(
            batch.iter().all(|&i| !evaluated[i]),
            "strategies must propose unevaluated cells"
        );
        batch.retain(|&i| !evaluated[i]);
        if batch.is_empty() {
            break;
        }
        batch.truncate(budget - evaluations.len());

        // speculative prefetch: fill the executor slots this batch
        // leaves idle with the strategy's best guesses at the *next*
        // proposal, but never beyond what the remaining budget could
        // still ask for
        let mut speculative: Vec<usize> = Vec::new();
        if prefetch && archive.is_some() {
            let idle = config.effective_threads().saturating_sub(batch.len());
            let lookahead = budget - evaluations.len() - batch.len();
            let cap = idle.min(lookahead);
            if cap > 0 {
                speculative = strategy.prefetch_hint(spec);
                let mut picked = vec![false; n];
                speculative.retain(|&i| {
                    !evaluated[i] && !batch.contains(&i) && !std::mem::replace(&mut picked[i], true)
                });
                speculative.truncate(cap);
            }
        }

        let mut indices = batch.clone();
        indices.extend(speculative.iter().copied());
        let cells: Vec<ScenarioSpec> = indices.iter().map(|&i| spec.cell_at(i)).collect();
        let speculative_config;
        let run_config = if speculative.is_empty() {
            config
        } else {
            speculative_config = config.clone().with_speculative(speculative.clone());
            &speculative_config
        };
        let run = run_cells_with(spec, &cells, run_config, archive, Some(&mut baselines))?;
        stats.absorb(&run.stats);
        archive_errors.extend(run.archive_errors);
        for result in run.result.results.into_iter().take(batch.len()) {
            // results come back in `cells` order: the batch first, then
            // the speculative tail (archived only, never observed)
            let index = result.scenario.index;
            evaluated[index] = true;
            strategy.observe(index, &result);
            evaluations.push((rounds, result));
        }
        rounds += 1;
    }

    stats.total_cells = n;
    Ok(Exploration {
        evaluations,
        rounds,
        stats,
        archive_errors,
    })
}

// ---- report assembly -------------------------------------------------

/// Replays an exploration under a scalar objective into the
/// trajectory/best shape of a [`SearchReport`].
fn assemble_scalar(
    spec: &CampaignSpec,
    search: &SearchSpec,
    exploration: Exploration,
) -> SearchOutcome {
    let objective = &search.objective;
    let mut best: Option<SearchBest> = None;
    let mut best_score: Option<(usize, CellScore)> = None;
    let mut trajectory = Vec::with_capacity(exploration.evaluations.len());
    for (round, result) in &exploration.evaluations {
        let index = result.scenario.index;
        let score = objective.score(result);
        let improved = match (score, best_score) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(s), Some((bi, bs))) => objective.wins(s, index, bs, bi),
        };
        if improved {
            let score = score.expect("winning cells are scored");
            best_score = Some((index, score));
            best = Some(SearchBest {
                index,
                label: result.scenario.label(),
                value: score.value,
                feasible: score.feasible,
                metrics: result.metrics.clone().expect("winning cells have metrics"),
            });
        }
        trajectory.push(Evaluation {
            round: *round,
            index,
            label: result.scenario.label(),
            value: score.map(|s| s.value),
            feasible: score.is_some_and(|s| s.feasible),
            improved,
        });
    }
    SearchOutcome {
        report: SearchReport {
            name: spec.name.clone(),
            strategy: search.strategy.label().to_string(),
            objective: objective.describe(),
            grid_cells: spec.scenario_count(),
            budget: search.budget,
            evaluated: trajectory.len(),
            rounds: exploration.rounds,
            best,
            trajectory,
            fidelity: search.fidelity.label().to_string(),
            screened: 0,
        },
        stats: exploration.stats,
        archive_errors: exploration.archive_errors,
    }
}

/// Builds the scalar strategy a [`SearchSpec`] asks for, with the start
/// frontier clamped to `budget` *before* the strategy spreads it, so a
/// small budget still gets evenly-spaced start cells.
fn build_scalar_strategy(
    spec: &CampaignSpec,
    search: &SearchSpec,
    budget: usize,
) -> Result<Box<dyn Strategy>, String> {
    let start_points = search.start_points.clamp(1, budget.max(1));
    Ok(match search.strategy {
        StrategyKind::Climb => Box::new(ClimbStrategy::new(spec, search.objective, start_points)),
        StrategyKind::Anneal => {
            search.anneal.validate()?;
            Box::new(AnnealStrategy::new(
                spec,
                search.objective,
                start_points,
                &search.anneal,
            ))
        }
        StrategyKind::Pareto => {
            return Err(
                "strategy 'pareto' optimizes multiple objectives and returns a \
                 front, not a single winner; use pareto_campaign (CLI: \
                 --strategy pareto with comma-separated --objective values)"
                    .into(),
            )
        }
        StrategyKind::Portfolio => {
            search.anneal.validate()?;
            Box::new(PortfolioStrategy::new(
                spec,
                search.objective,
                start_points,
                &search.anneal,
            ))
        }
    })
}

/// Runs a scalar (climb or anneal) search over `spec`'s grid.
///
/// With an archive, evaluated cells are read from (and written back to)
/// the campaign directory exactly like a resumed campaign — re-running a
/// search against a populated directory performs **zero** simulations
/// and returns the byte-identical report. This holds at every
/// [`SearchFidelity`]: records are fidelity-tagged, so a multi search
/// resumes its coarse screen and its fine promotions independently and
/// the re-run report is byte-identical with zero *fine* simulations.
///
/// # Errors
///
/// Returns a description when the spec is invalid, the budget is zero,
/// the annealing schedule is out of range, or the strategy is
/// [`StrategyKind::Pareto`] (fronts come from [`pareto_campaign`]).
/// Scenario panics are not errors; failed cells simply score as failed.
pub fn search_campaign(
    spec: &CampaignSpec,
    search: &SearchSpec,
    config: &RunnerConfig,
    archive: Option<&CampaignArchive>,
) -> Result<SearchOutcome, String> {
    match search.fidelity {
        // single-fidelity searches are the original exploration loop,
        // with every batch pinned to the requested fidelity
        SearchFidelity::Fine | SearchFidelity::Coarse => {
            let fidelity = match search.fidelity {
                SearchFidelity::Coarse => Fidelity::Coarse,
                _ => Fidelity::Fine,
            };
            let config = config.clone().with_fidelity(fidelity);
            let mut strategy = build_scalar_strategy(spec, search, search.budget)?;
            let exploration = drive_strategy(
                spec,
                &mut *strategy,
                search.budget,
                &config,
                archive,
                search.prefetch,
            )?;
            Ok(assemble_scalar(spec, search, exploration))
        }
        SearchFidelity::Multi => multi_fidelity_campaign(spec, search, config, archive),
    }
}

/// The multi-fidelity path: screen with the configured strategy at
/// coarse fidelity (budgeted at `budget * COARSE_FACTOR` coarse
/// evaluations — the same fine-equivalent spend an exhaustive coarse
/// sweep of that budget would cost), rank every screened cell with the
/// one shared argmax comparator ([`Objective::wins`]), then promote the
/// top candidates — whatever fine-equivalent budget the screen left,
/// and always at least one — to a single full-kernel batch. The report
/// is assembled from the fine evaluations **only**: coarse numbers
/// steer the exploration but never appear in a report.
fn multi_fidelity_campaign(
    spec: &CampaignSpec,
    search: &SearchSpec,
    config: &RunnerConfig,
    archive: Option<&CampaignArchive>,
) -> Result<SearchOutcome, String> {
    spec.validate()?;
    if search.budget == 0 {
        return Err("search budget must be positive".into());
    }
    let n = spec.scenario_count();
    let budget = search.budget.min(n);

    // phase 1: the coarse screen (the strategy explores exactly as it
    // would at fine fidelity, just wider and cheaper)
    let coarse_budget = n.min(budget.saturating_mul(COARSE_FACTOR));
    let mut strategy = build_scalar_strategy(spec, search, coarse_budget)?;
    let coarse_config = config.clone().with_fidelity(Fidelity::Coarse);
    let screen = drive_strategy(
        spec,
        &mut *strategy,
        coarse_budget,
        &coarse_config,
        archive,
        search.prefetch,
    )?;
    let mut stats = screen.stats;
    let mut archive_errors = screen.archive_errors;
    let screened = screen.evaluations.len();

    // rank the screened cells; failed cells sort last (they are only
    // promoted when nothing else is left to spend the budget on)
    let objective = &search.objective;
    let mut ranked: Vec<(usize, Option<CellScore>)> = screen
        .evaluations
        .iter()
        .map(|(_, r)| (r.scenario.index, objective.score(r)))
        .collect();
    ranked.sort_unstable_by(|a, b| {
        use std::cmp::Ordering;
        match (a.1, b.1) {
            (Some(sa), Some(sb)) => {
                if objective.wins(sa, a.0, sb, b.0) {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => a.0.cmp(&b.0),
        }
    });

    // phase 2: promote into the fine-equivalent budget the screen left
    // (each coarse evaluation cost 1/COARSE_FACTOR of a fine run)
    let screen_cost = screened.div_ceil(COARSE_FACTOR);
    let promote = budget
        .saturating_sub(screen_cost)
        .clamp(1, ranked.len().max(1));
    let mut chosen: Vec<usize> = ranked.iter().take(promote).map(|(i, _)| *i).collect();
    chosen.sort_unstable();
    let cells: Vec<ScenarioSpec> = chosen.iter().map(|&i| spec.cell_at(i)).collect();
    let fine_config = config.clone().with_fidelity(Fidelity::Fine);
    let run = run_cells_with(spec, &cells, &fine_config, archive, None)?;
    stats.absorb(&run.stats);
    archive_errors.extend(run.archive_errors);
    stats.total_cells = n;

    // the report replays the fine batch only (one extra round after the
    // screen's); everything coarse is reduced to the `screened` count
    let promote_round = screen.rounds;
    let evaluations: Vec<(usize, ScenarioResult)> = run
        .result
        .results
        .into_iter()
        .map(|r| (promote_round, r))
        .collect();
    let fine_exploration = Exploration {
        evaluations,
        rounds: promote_round + 1,
        stats,
        archive_errors,
    };
    let mut outcome = assemble_scalar(spec, search, fine_exploration);
    outcome.report.screened = screened;
    Ok(outcome)
}

/// Runs a multi-objective Pareto search over `spec`'s grid, sharing the
/// archive/lease machinery (and therefore all determinism guarantees)
/// with [`search_campaign`].
///
/// # Errors
///
/// Returns a description when the spec is invalid or the budget is
/// zero. Scenario panics are not errors; failed cells never join the
/// front.
pub fn pareto_campaign(
    spec: &CampaignSpec,
    pareto: &ParetoSpec,
    config: &RunnerConfig,
    archive: Option<&CampaignArchive>,
) -> Result<ParetoOutcome, String> {
    let start_points = pareto.start_points.clamp(1, pareto.budget.max(1));
    let mut strategy = ParetoStrategy::new(spec, pareto.objectives.clone(), start_points);
    let exploration = drive_strategy(
        spec,
        &mut strategy,
        pareto.budget,
        config,
        archive,
        pareto.prefetch,
    )?;

    // replay the evaluation sequence to reconstruct the round-by-round
    // dominated-count trajectory (scores only; one dominance pass per
    // round keeps this O(rounds * evaluated^2), fine at search scales)
    let objectives = &pareto.objectives;
    let mut seen: Vec<(usize, &ScenarioResult, Option<MultiScore>)> = Vec::new();
    let mut trajectory: Vec<ParetoRound> = Vec::new();
    let mut at = 0;
    for round in 0..exploration.rounds {
        while at < exploration.evaluations.len() && exploration.evaluations[at].0 == round {
            let result = &exploration.evaluations[at].1;
            seen.push((result.scenario.index, result, objectives.score(result)));
            at += 1;
        }
        let scored: Vec<&MultiScore> = seen.iter().filter_map(|(_, _, s)| s.as_ref()).collect();
        let front = objectives
            .dominated_flags(&scored)
            .iter()
            .filter(|dominated| !**dominated)
            .count();
        trajectory.push(ParetoRound {
            round,
            evaluated: seen.len(),
            front,
            dominated: scored.len() - front,
        });
    }

    // the final front, through the same shared filter the trajectory
    // (and the brute-force reference) use
    let scored: Vec<(usize, &ScenarioResult, &MultiScore)> = seen
        .iter()
        .filter_map(|(i, r, s)| s.as_ref().map(|s| (*i, *r, s)))
        .collect();
    let flags = objectives.dominated_flags(&scored.iter().map(|(_, _, s)| *s).collect::<Vec<_>>());
    let mut front: Vec<ParetoPoint> = scored
        .iter()
        .zip(&flags)
        .filter(|(_, dominated)| !**dominated)
        .map(|((index, result, score), _)| ParetoPoint {
            index: *index,
            label: result.scenario.label(),
            values: score.values.clone(),
            feasible: score.feasible,
            metrics: result.metrics.clone().expect("scored cells have metrics"),
        })
        .collect();
    front.sort_by_key(|p| p.index);

    Ok(ParetoOutcome {
        report: ParetoReport {
            name: spec.name.clone(),
            strategy: StrategyKind::Pareto.label().to_string(),
            objectives: objectives.describe(),
            objective_labels: objectives
                .objectives
                .iter()
                .map(|o| o.metric.label().to_string())
                .collect(),
            grid_cells: spec.scenario_count(),
            budget: pareto.budget,
            evaluated: exploration.evaluations.len(),
            rounds: exploration.rounds,
            front,
            trajectory,
        },
        stats: exploration.stats,
        archive_errors: exploration.archive_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Metric;
    use crate::spec::{BatteryAxis, ControllerAxis, ThermalAxis, TuningAxis, WorkloadAxis};

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "search_tiny".into(),
            horizon_ms: 5,
            master_seed: 13,
            initial_soc: 0.9,
            controllers: vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn],
            tunings: vec![TuningAxis::Paper],
            workloads: vec![WorkloadAxis::Low],
            seeds: vec![1, 2],
            batteries: vec![BatteryAxis::Linear],
            thermals: vec![ThermalAxis::Cool],
            ip_counts: vec![1],
        }
    }

    fn multi() -> MultiObjective {
        MultiObjective::parse("energy_saving,min:delay").unwrap()
    }

    #[test]
    fn start_frontier_is_spread_and_strictly_increasing() {
        assert_eq!(start_frontier(8, 4), vec![0, 2, 4, 6]);
        assert_eq!(start_frontier(5, 1), vec![0]);
        let f = start_frontier(7, 3);
        assert!(f.windows(2).all(|w| w[0] < w[1]));
        assert!(f.iter().all(|&i| i < 7));
    }

    #[test]
    fn strategy_kinds_parse_and_label() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(kind.label()).unwrap(), kind);
        }
        assert!(StrategyKind::parse("warp")
            .unwrap_err()
            .contains("unknown strategy"));
    }

    #[test]
    fn anneal_schedule_validates_its_ranges() {
        AnnealSchedule::default().validate().unwrap();
        for (temp, cooling) in [(0.0, 0.9), (-1.0, 0.9), (f64::NAN, 0.9)] {
            let schedule = AnnealSchedule {
                initial_temp: temp,
                cooling,
                seed: 1,
            };
            assert!(schedule.validate().unwrap_err().contains("initial_temp"));
        }
        for cooling in [0.0, 1.0, 1.5, -0.1] {
            let schedule = AnnealSchedule {
                cooling,
                ..AnnealSchedule::default()
            };
            assert!(schedule.validate().unwrap_err().contains("cooling"));
        }
    }

    #[test]
    fn zero_budget_is_an_error() {
        let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 0);
        let err =
            search_campaign(&tiny_spec(), &search, &RunnerConfig::serial(), None).unwrap_err();
        assert!(err.contains("budget"), "{err}");
        let err = pareto_campaign(
            &tiny_spec(),
            &ParetoSpec::new(multi(), 0),
            &RunnerConfig::serial(),
            None,
        )
        .unwrap_err();
        assert!(err.contains("budget"), "{err}");
    }

    #[test]
    fn pareto_kind_is_rejected_by_the_scalar_entry_point() {
        let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 2)
            .with_strategy(StrategyKind::Pareto);
        let err =
            search_campaign(&tiny_spec(), &search, &RunnerConfig::serial(), None).unwrap_err();
        assert!(err.contains("pareto_campaign"), "{err}");
    }

    #[test]
    fn budget_one_evaluates_exactly_one_cell() {
        let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 1);
        let out = search_campaign(&tiny_spec(), &search, &RunnerConfig::serial(), None).unwrap();
        assert_eq!(out.report.evaluated, 1);
        assert_eq!(out.report.trajectory.len(), 1);
        assert_eq!(out.report.best.as_ref().unwrap().index, 0);
        assert_eq!(out.report.strategy, "climb");
        assert!(out.stats.simulations >= 1);
    }

    #[test]
    fn budget_is_never_exceeded_and_oversized_budget_sweeps_the_grid() {
        let spec = tiny_spec();
        for strategy in [StrategyKind::Climb, StrategyKind::Anneal] {
            for budget in [2, 3, 100] {
                let search =
                    SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), budget)
                        .with_strategy(strategy);
                let out = search_campaign(&spec, &search, &RunnerConfig::serial(), None).unwrap();
                assert!(out.report.evaluated <= budget.min(spec.scenario_count()));
                if budget >= spec.scenario_count() {
                    assert_eq!(out.report.evaluated, spec.scenario_count());
                }
                // every evaluation is a distinct cell
                let mut seen: Vec<usize> = out.report.trajectory.iter().map(|e| e.index).collect();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), out.report.evaluated);
            }
        }
    }

    #[test]
    fn pareto_budget_respected_and_front_is_non_dominated() {
        let spec = tiny_spec();
        for budget in [1, 3, 100] {
            let out = pareto_campaign(
                &spec,
                &ParetoSpec::new(multi(), budget),
                &RunnerConfig::serial(),
                None,
            )
            .unwrap();
            assert!(out.report.evaluated <= budget.min(spec.scenario_count()));
            if budget >= spec.scenario_count() {
                assert_eq!(out.report.evaluated, spec.scenario_count());
            }
            assert!(!out.report.front.is_empty());
            assert!(out.report.front.windows(2).all(|w| w[0].index < w[1].index));
            // the trajectory's last round accounts for every evaluation
            let last = out.report.trajectory.last().unwrap();
            assert_eq!(last.evaluated, out.report.evaluated);
            assert_eq!(last.front, out.report.front.len());
        }
    }

    #[test]
    fn anneal_is_seed_deterministic_and_seed_sensitive() {
        let spec = tiny_spec();
        let base = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 3)
            .with_strategy(StrategyKind::Anneal);
        let a = search_campaign(&spec, &base, &RunnerConfig::serial(), None).unwrap();
        let b = search_campaign(&spec, &base, &RunnerConfig::serial(), None).unwrap();
        assert_eq!(a.report, b.report, "same seed, same walk");
    }
}
