//! Adaptive campaign search: a budgeted, deterministic neighborhood
//! climber over a [`CampaignSpec`] grid.
//!
//! Instead of simulating the full cartesian product, the search
//!
//! 1. evaluates a **start frontier** of cells spread evenly across the
//!    grid (even spacing beats corner-seeding on monotone axes and costs
//!    nothing in determinism),
//! 2. repeatedly expands the best evaluated-but-unexpanded cell's
//!    **single-axis neighbors** ([`CampaignSpec::neighbors_of`]),
//! 3. **restarts** from the lowest-index unevaluated cell when every
//!    evaluated cell's neighborhood is exhausted (a local optimum), and
//! 4. stops when the evaluation **budget** is spent or the grid is
//!    fully evaluated.
//!
//! The restart rule makes the search *complete*: with `budget >= grid
//! size` it degenerates to an exhaustive sweep and returns exactly the
//! campaign argmax (same comparator, same grid-index tie-break).
//!
//! Batches run through [`run_cells_with`], so everything the campaign
//! runner guarantees carries over: results are thread-count invariant, a
//! campaign archive acts as a **result cache** (re-searching a directory
//! never re-simulates an archived cell), and a [`BaselineCache`] shares
//! always-`ON1` baselines across rounds the way one exhaustive sweep
//! would. The [`SearchReport`] is therefore byte-identical across thread
//! counts and archived/fresh mixes; only [`SearchOutcome::stats`] (work
//! actually done) differs, which is why it is not part of the report.
//!
//! **Distributed search**: with [`RunnerConfig::lease`] set and an
//! archive attached, each batch claims its cells' baseline groups
//! through the archive's work leases before simulating — so any number
//! of `dpm search --resume DIR` processes can climb the same grid
//! concurrently without duplicating a simulation. The search trajectory
//! is deterministic, so concurrent searchers request the same batches:
//! whoever claims a batch's groups first simulates them, the others
//! absorb the stored records and move on in lockstep, and every
//! searcher finishes with the byte-identical report.

use crate::archive::CampaignArchive;
use crate::objective::{CellScore, Objective};
use crate::runner::{run_cells_with, BaselineCache, RunStats, RunnerConfig, ScenarioMetrics};
use crate::spec::{CampaignSpec, ScenarioSpec};

/// Default number of start-frontier cells.
pub const DEFAULT_START_POINTS: usize = 4;

/// What to search for and how hard: the objective plus the evaluation
/// budget (distinct cells scored, archived hits included — a cache hit
/// spends budget but no simulation).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// What "best" means.
    pub objective: Objective,
    /// Maximum distinct cells to evaluate (clamped to the grid size).
    pub budget: usize,
    /// Start-frontier size (clamped to the budget and the grid).
    pub start_points: usize,
}

impl SearchSpec {
    /// A search with the default start frontier.
    pub fn new(objective: Objective, budget: usize) -> Self {
        Self {
            objective,
            budget,
            start_points: DEFAULT_START_POINTS,
        }
    }
}

/// One scored cell in evaluation order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Evaluation {
    /// Search round (0 = start frontier).
    pub round: usize,
    /// Grid index of the cell.
    pub index: usize,
    /// Human-readable cell label.
    pub label: String,
    /// Objective value; `None` when the cell failed (panicked).
    pub value: Option<f64>,
    /// Whether the constraint held (vacuously `true` without one,
    /// `false` for failed cells).
    pub feasible: bool,
    /// `true` when this evaluation became the best cell so far.
    pub improved: bool,
}

/// The winning cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchBest {
    /// Grid index.
    pub index: usize,
    /// Human-readable cell label.
    pub label: String,
    /// Objective value.
    pub value: f64,
    /// Whether the constraint held (`false` means *no* evaluated cell
    /// was feasible; the least-bad infeasible cell is reported).
    pub feasible: bool,
    /// The cell's full metrics.
    pub metrics: ScenarioMetrics,
}

/// The deterministic search result: byte-identical for any thread count
/// and any archived/fresh mix (work accounting deliberately lives in
/// [`SearchOutcome::stats`] instead).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchReport {
    /// Campaign name.
    pub name: String,
    /// Human-readable objective ([`Objective::describe`]).
    pub objective: String,
    /// Cells in the full grid.
    pub grid_cells: usize,
    /// The requested evaluation budget.
    pub budget: usize,
    /// Distinct cells actually evaluated.
    pub evaluated: usize,
    /// Search rounds executed.
    pub rounds: usize,
    /// The winner; `None` only when every evaluated cell failed.
    pub best: Option<SearchBest>,
    /// Every evaluation, in order.
    pub trajectory: Vec<Evaluation>,
}

/// A finished search: the deterministic report plus this run's work
/// accounting.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The (run-invariant) search report.
    pub report: SearchReport,
    /// Work done by this particular run, summed over all batches;
    /// `total_cells` is the grid size, so `simulations` vs
    /// `2 * total_cells` is the saving over a dedup-free exhaustive
    /// sweep.
    pub stats: RunStats,
    /// Archive-write failures, as in [`crate::runner::CampaignRun`].
    pub archive_errors: Vec<String>,
}

/// Per-cell search state.
struct Scoreboard<'a> {
    objective: &'a Objective,
    /// `None` = unevaluated; `Some(None)` = evaluated but failed.
    scores: Vec<Option<Option<CellScore>>>,
    expanded: Vec<bool>,
    best: Option<(usize, CellScore)>,
    evaluated: usize,
}

impl<'a> Scoreboard<'a> {
    fn new(objective: &'a Objective, n: usize) -> Self {
        Self {
            objective,
            scores: vec![None; n],
            expanded: vec![false; n],
            best: None,
            evaluated: 0,
        }
    }

    /// Records a score; returns `true` when the cell became the new best
    /// (strictly better, or equal with a lower grid index).
    fn record(&mut self, index: usize, score: Option<CellScore>) -> bool {
        debug_assert!(self.scores[index].is_none(), "cell evaluated twice");
        self.scores[index] = Some(score);
        self.evaluated += 1;
        let Some(score) = score else { return false };
        let wins = match self.best {
            None => true,
            Some((bi, bs)) => {
                self.objective.better(score, bs)
                    || (!self.objective.better(bs, score) && index < bi)
            }
        };
        if wins {
            self.best = Some((index, score));
        }
        wins
    }

    fn is_evaluated(&self, index: usize) -> bool {
        self.scores[index].is_some()
    }

    /// The best evaluated, not-yet-expanded, non-failed cell (ties to
    /// the lowest index), or `None` when the whole evaluated set has
    /// been expanded.
    fn best_unexpanded(&self) -> Option<usize> {
        let mut best: Option<(usize, CellScore)> = None;
        for (i, slot) in self.scores.iter().enumerate() {
            if self.expanded[i] {
                continue;
            }
            let Some(Some(score)) = slot else { continue };
            let wins = match best {
                None => true,
                Some((_, bs)) => self.objective.better(*score, bs),
            };
            if wins {
                best = Some((i, *score));
            }
        }
        best.map(|(i, _)| i)
    }

    /// The lowest-index unevaluated cell (the restart point).
    fn first_unevaluated(&self) -> Option<usize> {
        self.scores.iter().position(Option::is_none)
    }
}

/// Evenly-spread start frontier: `count` cells at indices `k * n /
/// count` — deterministic and strictly increasing for `count <= n`.
fn start_frontier(n: usize, count: usize) -> Vec<usize> {
    (0..count).map(|k| k * n / count).collect()
}

/// The next batch of unevaluated cells: the best unexpanded cell's
/// unevaluated single-axis neighbors, falling back through
/// progressively worse unexpanded cells, then to a restart from the
/// lowest-index unevaluated cell. Empty only when the grid is fully
/// evaluated.
fn next_batch(spec: &CampaignSpec, board: &mut Scoreboard<'_>) -> Vec<usize> {
    while let Some(center) = board.best_unexpanded() {
        board.expanded[center] = true;
        let fresh: Vec<usize> = spec
            .neighbors_of(center)
            .into_iter()
            .filter(|&j| !board.is_evaluated(j))
            .collect();
        if !fresh.is_empty() {
            return fresh;
        }
    }
    board.first_unevaluated().into_iter().collect()
}

/// Runs an adaptive search over `spec`'s grid.
///
/// With an archive, evaluated cells are read from (and written back to)
/// the campaign directory exactly like a resumed campaign — re-running a
/// search against a populated directory performs **zero** simulations
/// and returns the byte-identical report.
///
/// # Errors
///
/// Returns a description when the spec is invalid or the budget is zero.
/// Scenario panics are not errors; failed cells simply score as failed.
pub fn search_campaign(
    spec: &CampaignSpec,
    search: &SearchSpec,
    config: &RunnerConfig,
    archive: Option<&CampaignArchive>,
) -> Result<SearchOutcome, String> {
    spec.validate()?;
    if search.budget == 0 {
        return Err("search budget must be positive".into());
    }
    let n = spec.scenario_count();
    let budget = search.budget.min(n);

    let mut board = Scoreboard::new(&search.objective, n);
    let mut trajectory: Vec<Evaluation> = Vec::new();
    let mut stats = RunStats::default();
    let mut archive_errors = Vec::new();
    let mut baselines = BaselineCache::new();
    let mut rounds = 0;

    let mut best: Option<SearchBest> = None;

    let mut batch = start_frontier(n, search.start_points.clamp(1, budget));
    while !batch.is_empty() {
        batch.truncate(budget - board.evaluated);
        let cells: Vec<ScenarioSpec> = batch.iter().map(|&i| spec.cell_at(i)).collect();
        let run = run_cells_with(spec, &cells, config, archive, Some(&mut baselines))?;
        stats.absorb(&run.stats);
        archive_errors.extend(run.archive_errors);
        for result in &run.result.results {
            let index = result.scenario.index;
            let score = search.objective.score(result);
            let improved = board.record(index, score);
            if improved {
                // record() only declares a winner when score (and thus
                // metrics) exist
                let score = score.expect("winning cells are scored");
                best = Some(SearchBest {
                    index,
                    label: result.scenario.label(),
                    value: score.value,
                    feasible: score.feasible,
                    metrics: result.metrics.clone().expect("winning cells have metrics"),
                });
            }
            trajectory.push(Evaluation {
                round: rounds,
                index,
                label: result.scenario.label(),
                value: score.map(|s| s.value),
                feasible: score.is_some_and(|s| s.feasible),
                improved,
            });
        }
        rounds += 1;
        if board.evaluated >= budget {
            break;
        }
        batch = next_batch(spec, &mut board);
    }

    stats.total_cells = n;
    Ok(SearchOutcome {
        report: SearchReport {
            name: spec.name.clone(),
            objective: search.objective.describe(),
            grid_cells: n,
            budget: search.budget,
            evaluated: board.evaluated,
            rounds,
            best,
            trajectory,
        },
        stats,
        archive_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Metric;
    use crate::spec::{BatteryAxis, ControllerAxis, ThermalAxis, TuningAxis, WorkloadAxis};

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "search_tiny".into(),
            horizon_ms: 5,
            master_seed: 13,
            initial_soc: 0.9,
            controllers: vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn],
            tunings: vec![TuningAxis::Paper],
            workloads: vec![WorkloadAxis::Low],
            seeds: vec![1, 2],
            batteries: vec![BatteryAxis::Linear],
            thermals: vec![ThermalAxis::Cool],
            ip_counts: vec![1],
        }
    }

    #[test]
    fn start_frontier_is_spread_and_strictly_increasing() {
        assert_eq!(start_frontier(8, 4), vec![0, 2, 4, 6]);
        assert_eq!(start_frontier(5, 1), vec![0]);
        let f = start_frontier(7, 3);
        assert!(f.windows(2).all(|w| w[0] < w[1]));
        assert!(f.iter().all(|&i| i < 7));
    }

    #[test]
    fn zero_budget_is_an_error() {
        let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 0);
        let err =
            search_campaign(&tiny_spec(), &search, &RunnerConfig::serial(), None).unwrap_err();
        assert!(err.contains("budget"), "{err}");
    }

    #[test]
    fn budget_one_evaluates_exactly_one_cell() {
        let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 1);
        let out = search_campaign(&tiny_spec(), &search, &RunnerConfig::serial(), None).unwrap();
        assert_eq!(out.report.evaluated, 1);
        assert_eq!(out.report.trajectory.len(), 1);
        assert_eq!(out.report.best.as_ref().unwrap().index, 0);
        assert!(out.stats.simulations >= 1);
    }

    #[test]
    fn budget_is_never_exceeded_and_oversized_budget_sweeps_the_grid() {
        let spec = tiny_spec();
        for budget in [2, 3, 100] {
            let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), budget);
            let out = search_campaign(&spec, &search, &RunnerConfig::serial(), None).unwrap();
            assert!(out.report.evaluated <= budget.min(spec.scenario_count()));
            if budget >= spec.scenario_count() {
                assert_eq!(out.report.evaluated, spec.scenario_count());
            }
            // every evaluation is a distinct cell
            let mut seen: Vec<usize> = out.report.trajectory.iter().map(|e| e.index).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), out.report.evaluated);
        }
    }
}
