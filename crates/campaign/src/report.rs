//! Campaign report rendering: ASCII, Markdown and JSON, in the style of
//! `dpm-soc::report`'s Table 2 renderers.

use crate::aggregate::CampaignSummary;
use crate::runner::{CampaignResult, RunStats};
use crate::search::{ParetoReport, SearchReport};

/// One-line human summary of a run's work accounting (resume hits,
/// dedup savings). Printed to stderr by the CLI — deliberately kept out
/// of the report files, whose bytes must not depend on how much work a
/// particular run skipped.
pub fn run_stats_line(stats: &RunStats) -> String {
    // the coarse clause appears only when coarse work was done, so
    // fine-only runs keep the exact historical line (CI greps it)
    let coarse = match stats.coarse_simulations {
        0 => String::new(),
        n => format!(", {n} coarse evaluations"),
    };
    // the speculative clause deliberately avoids the word "simulations":
    // CI greps resumed runs for " 0 simulations" to prove zero fresh
    // strategy work, and speculative evals must not defeat that check
    let speculative = match (
        stats.speculative_cells,
        stats.speculative_simulations,
        stats.speculative_coarse,
    ) {
        (0, 0, 0) => String::new(),
        (cells, fine, coarse) => {
            format!(", {cells} speculative cells ({fine} fine, {coarse} coarse evals)")
        }
    };
    format!(
        "{} cells: {} archived, {} executed; {} simulations \
         ({} shared baselines, {} always-on reuses){coarse}{speculative}",
        stats.total_cells,
        stats.archived_cells,
        stats.executed_cells,
        stats.simulations,
        stats.baseline_groups,
        stats.reused_baselines,
    )
}

/// Renders the summary as an ASCII report.
pub fn campaign_ascii(summary: &CampaignSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "campaign '{}': {} scenarios ({} failed)\n\n",
        summary.name, summary.scenarios, summary.failed
    ));
    out.push_str(
        "+--------------------+-----------+-----------+-----------+-----------+-----------+\n\
         | metric             |      mean |       min |       p50 |       p90 |       max |\n\
         +--------------------+-----------+-----------+-----------+-----------+-----------+\n",
    );
    for (metric, s) in &summary.metrics {
        out.push_str(&format!(
            "| {:<18} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} |\n",
            metric.label(),
            s.mean,
            s.min,
            s.p50,
            s.p90,
            s.max,
        ));
    }
    out.push_str(
        "+--------------------+-----------+-----------+-----------+-----------+-----------+\n",
    );

    out.push_str("\nwinners (best scenario per metric):\n");
    for w in &summary.winners {
        out.push_str(&format!(
            "  {:<18} = {:>10.3}  #{:04} {}\n",
            w.metric.label(),
            w.value,
            w.index,
            w.label
        ));
    }

    for (title, groups) in [
        ("by controller", &summary.by_controller),
        ("by tuning", &summary.by_tuning),
        ("by workload", &summary.by_workload),
    ] {
        out.push_str(&format!(
            "\n{title}:\n\
             +--------------------+------+------------+------------+------------+----------+\n\
             | group              |    n | saving %   | delay %    | energy J   | low-pwr  |\n\
             +--------------------+------+------------+------------+------------+----------+\n"
        ));
        for g in groups.iter() {
            out.push_str(&format!(
                "| {:<18} | {:>4} | {:>10.2} | {:>10.2} | {:>10.4} | {:>8.3} |\n",
                g.key,
                g.scenarios,
                g.mean_energy_saving_pct,
                g.mean_delay_overhead_pct,
                g.mean_energy_j,
                g.mean_low_power_frac,
            ));
        }
        out.push_str(
            "+--------------------+------+------------+------------+------------+----------+\n",
        );
    }
    out
}

/// Renders the summary as a Markdown report.
pub fn campaign_markdown(summary: &CampaignSummary) -> String {
    let mut out = format!(
        "## Campaign `{}` — {} scenarios ({} failed)\n\n\
         | metric | mean | min | p50 | p90 | max |\n\
         |--------|------|-----|-----|-----|-----|\n",
        summary.name, summary.scenarios, summary.failed
    );
    for (metric, s) in &summary.metrics {
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
            metric.label(),
            s.mean,
            s.min,
            s.p50,
            s.p90,
            s.max,
        ));
    }
    out.push_str("\n### Winners\n\n| metric | value | scenario |\n|--------|-------|----------|\n");
    for w in &summary.winners {
        out.push_str(&format!(
            "| {} | {:.3} | `{}` |\n",
            w.metric.label(),
            w.value,
            w.label
        ));
    }
    for (title, groups) in [
        ("By controller", &summary.by_controller),
        ("By tuning", &summary.by_tuning),
        ("By workload", &summary.by_workload),
    ] {
        out.push_str(&format!(
            "\n### {title}\n\n| group | n | saving % | delay % | energy J | low-power |\n\
             |-------|---|----------|---------|----------|-----------|\n"
        ));
        for g in groups.iter() {
            out.push_str(&format!(
                "| `{}` | {} | {:.2} | {:.2} | {:.4} | {:.3} |\n",
                g.key,
                g.scenarios,
                g.mean_energy_saving_pct,
                g.mean_delay_overhead_pct,
                g.mean_energy_j,
                g.mean_low_power_frac,
            ));
        }
    }
    out
}

/// Serializes the summary (and optionally every per-scenario result) as
/// pretty JSON — the byte-stable archive format used by the determinism
/// tests.
///
/// # Errors
///
/// Propagates serializer errors (none in the in-tree shim).
pub fn campaign_json(
    summary: &CampaignSummary,
    results: Option<&CampaignResult>,
) -> Result<String, serde_json::Error> {
    // the in-tree serde derive doesn't support generic (lifetime-bearing)
    // types, so assemble the archive object by hand
    let mut archive = vec![("summary".to_string(), serde::Serialize::to_value(summary))];
    archive.push((
        "results".to_string(),
        match results {
            Some(r) => serde::Serialize::to_value(r),
            None => serde_json::Value::Null,
        },
    ));
    serde_json::to_string_pretty(&serde_json::Value::Object(archive))
}

/// Renders a search report as ASCII: objective, budget accounting, the
/// winning cell with its headline metrics, and the improvement
/// trajectory.
pub fn search_ascii(report: &SearchReport) -> String {
    let mut out = format!(
        "search '{}' ({}): {}\n  {} of {} grid cells evaluated in {} rounds (budget {}, {:.1}% of the grid)\n",
        report.name,
        report.strategy,
        report.objective,
        report.evaluated,
        report.grid_cells,
        report.rounds,
        report.budget,
        100.0 * report.evaluated as f64 / report.grid_cells.max(1) as f64,
    );
    // non-fine searches say so up front; fine reports keep the
    // historical shape byte-for-byte
    if report.fidelity != "fine" {
        out.push_str(&format!("  fidelity: {}", report.fidelity));
        if report.screened > 0 {
            out.push_str(&format!(
                " ({} cells coarse-screened before promotion)",
                report.screened
            ));
        }
        out.push('\n');
    }
    match &report.best {
        Some(best) => {
            out.push_str(&format!(
                "\nbest cell: #{:04} {}\n  objective = {:.4}{}\n  saving {:.2}% | delay {:.2}% | energy {:.4} J | temp -{:.2}% | low-power {:.3} | final soc {:.3}\n",
                best.index,
                best.label,
                best.value,
                if best.feasible { "" } else { "  (INFEASIBLE — no evaluated cell met the constraint)" },
                best.metrics.energy_saving_pct,
                best.metrics.delay_overhead_pct,
                best.metrics.energy_j,
                best.metrics.temp_reduction_pct,
                best.metrics.low_power_frac,
                best.metrics.final_soc,
            ));
        }
        None => out.push_str("\nbest cell: none (every evaluated cell failed)\n"),
    }
    out.push_str("\ntrajectory (improvements only):\n");
    for e in report.trajectory.iter().filter(|e| e.improved) {
        out.push_str(&format!(
            "  round {:>3}: #{:04} {} = {:.4}{}\n",
            e.round,
            e.index,
            e.label,
            e.value.unwrap_or(f64::NAN),
            if e.feasible { "" } else { "  (infeasible)" },
        ));
    }
    out
}

/// Renders a search report as Markdown, mirroring [`search_ascii`]'s
/// content: budget accounting, the winning cell, and the improvement
/// trajectory.
pub fn search_markdown(report: &SearchReport) -> String {
    let mut out = format!(
        "## Search `{}` ({}) — {}\n\n{} of {} grid cells evaluated in {} rounds \
         (budget {}, {:.1}% of the grid)\n",
        report.name,
        report.strategy,
        report.objective,
        report.evaluated,
        report.grid_cells,
        report.rounds,
        report.budget,
        100.0 * report.evaluated as f64 / report.grid_cells.max(1) as f64,
    );
    match &report.best {
        Some(best) => {
            out.push_str(&format!(
                "\n### Best cell\n\n`#{:04} {}`{}\n\n\
                 | objective | saving % | delay % | energy J | temp red % | low-power | final soc |\n\
                 |-----------|----------|---------|----------|------------|-----------|----------|\n\
                 | {:.4} | {:.2} | {:.2} | {:.4} | {:.2} | {:.3} | {:.3} |\n",
                best.index,
                best.label,
                if best.feasible {
                    ""
                } else {
                    " — **INFEASIBLE** (no evaluated cell met the constraint)"
                },
                best.value,
                best.metrics.energy_saving_pct,
                best.metrics.delay_overhead_pct,
                best.metrics.energy_j,
                best.metrics.temp_reduction_pct,
                best.metrics.low_power_frac,
                best.metrics.final_soc,
            ));
        }
        None => out.push_str("\n### Best cell\n\nnone (every evaluated cell failed)\n"),
    }
    out.push_str(
        "\n### Trajectory (improvements only)\n\n\
         | round | cell | value |\n|-------|------|-------|\n",
    );
    for e in report.trajectory.iter().filter(|e| e.improved) {
        out.push_str(&format!(
            "| {} | `#{:04} {}` | {:.4}{} |\n",
            e.round,
            e.index,
            e.label,
            e.value.unwrap_or(f64::NAN),
            if e.feasible { "" } else { " (infeasible)" },
        ));
    }
    out
}

/// Serializes a search report as pretty JSON. Byte-identical across
/// thread counts and archived/fresh mixes (work accounting is kept out
/// of the report for exactly this reason).
///
/// # Errors
///
/// Propagates serializer errors (none in the in-tree shim).
pub fn search_json(report: &SearchReport) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(report)
}

/// Renders a Pareto report as ASCII: the joint objectives, budget
/// accounting, every front cell with its objective values, and the
/// round-by-round dominated-count trajectory.
pub fn pareto_ascii(report: &ParetoReport) -> String {
    let mut out = format!(
        "pareto search '{}': {}\n  {} of {} grid cells evaluated in {} rounds (budget {}, {:.1}% of the grid)\n",
        report.name,
        report.objectives,
        report.evaluated,
        report.grid_cells,
        report.rounds,
        report.budget,
        100.0 * report.evaluated as f64 / report.grid_cells.max(1) as f64,
    );
    if report.front.is_empty() {
        out.push_str("\nfront: empty (every evaluated cell failed)\n");
    } else {
        out.push_str(&format!(
            "\nfront ({} non-dominated cells):\n",
            report.front.len()
        ));
        for p in &report.front {
            let values: Vec<String> = report
                .objective_labels
                .iter()
                .zip(&p.values)
                .map(|(label, v)| format!("{label} = {v:.4}"))
                .collect();
            out.push_str(&format!(
                "  #{:04} {}\n        {}{}\n",
                p.index,
                p.label,
                values.join(" | "),
                if p.feasible { "" } else { "  (infeasible)" },
            ));
        }
    }
    out.push_str("\ntrajectory (evaluated / front / dominated):\n");
    for r in &report.trajectory {
        out.push_str(&format!(
            "  round {:>3}: {:>4} evaluated, {:>4} on the front, {:>4} dominated\n",
            r.round, r.evaluated, r.front, r.dominated,
        ));
    }
    out
}

/// Renders a Pareto report as Markdown, mirroring [`pareto_ascii`]'s
/// content: budget accounting, the front table, and the dominated-count
/// trajectory.
pub fn pareto_markdown(report: &ParetoReport) -> String {
    let mut out = format!(
        "## Pareto search `{}` — {}\n\n{} of {} grid cells evaluated in {} rounds \
         (budget {}, {:.1}% of the grid)\n",
        report.name,
        report.objectives,
        report.evaluated,
        report.grid_cells,
        report.rounds,
        report.budget,
        100.0 * report.evaluated as f64 / report.grid_cells.max(1) as f64,
    );
    if report.front.is_empty() {
        out.push_str("\n### Front\n\nempty (every evaluated cell failed)\n");
    } else {
        out.push_str(&format!(
            "\n### Front ({} non-dominated cells)\n\n| cell | {} | feasible |\n|------|{}----------|\n",
            report.front.len(),
            report.objective_labels.join(" | "),
            "------|".repeat(report.objective_labels.len()),
        ));
        for p in &report.front {
            let values: Vec<String> = p.values.iter().map(|v| format!("{v:.4}")).collect();
            out.push_str(&format!(
                "| `#{:04} {}` | {} | {} |\n",
                p.index,
                p.label,
                values.join(" | "),
                if p.feasible { "yes" } else { "no" },
            ));
        }
    }
    out.push_str(
        "\n### Trajectory\n\n| round | evaluated | front | dominated |\n\
         |-------|-----------|-------|-----------|\n",
    );
    for r in &report.trajectory {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            r.round, r.evaluated, r.front, r.dominated,
        ));
    }
    out
}

/// Serializes a Pareto report as pretty JSON — byte-identical across
/// thread counts, archived/fresh mixes and worker counts, like
/// [`search_json`].
///
/// # Errors
///
/// Propagates serializer errors (none in the in-tree shim).
pub fn pareto_json(report: &ParetoReport) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::summarize;
    use crate::runner::{run_campaign, RunnerConfig};
    use crate::spec::CampaignSpec;

    fn small_result() -> CampaignResult {
        let mut spec = CampaignSpec::default_sweep();
        spec.horizon_ms = 5;
        spec.seeds = vec![1];
        spec.ip_counts = vec![1];
        run_campaign(&spec, &RunnerConfig::default())
    }

    #[test]
    fn renders_all_formats() {
        let result = small_result();
        let summary = summarize(&result);
        let ascii = campaign_ascii(&summary);
        assert!(ascii.contains("energy_saving_pct"));
        assert!(ascii.contains("winners"));
        assert!(ascii.contains("ctrl=dpm"));
        let md = campaign_markdown(&summary);
        assert!(md.contains("| metric | mean |"));
        assert!(md.contains("`ctrl=dpm`"));
        let json = campaign_json(&summary, Some(&result)).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["summary"]["name"], "default_sweep");
        assert!(v["results"]["results"].get_index(0).is_some());
    }

    #[test]
    fn search_report_renders_and_round_trips() {
        use crate::aggregate::Metric;
        use crate::objective::Objective;
        use crate::search::{search_campaign, SearchSpec};
        use crate::spec::CampaignSpec;

        let mut spec = CampaignSpec::default_sweep();
        spec.horizon_ms = 5;
        spec.seeds = vec![1];
        spec.ip_counts = vec![1];
        let search = SearchSpec::new(Objective::for_metric(Metric::EnergySavingPct), 4);
        let out = search_campaign(&spec, &search, &RunnerConfig::serial(), None).unwrap();
        let ascii = search_ascii(&out.report);
        assert!(ascii.contains("maximize energy_saving_pct"), "{ascii}");
        assert!(ascii.contains("best cell: #"), "{ascii}");
        assert!(ascii.contains("trajectory"), "{ascii}");
        let md = search_markdown(&out.report);
        assert!(md.contains("## Search"), "{md}");
        assert!(md.contains("### Best cell"), "{md}");
        assert!(md.contains("| round | cell | value |"), "{md}");
        let json = search_json(&out.report).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["grid_cells"].as_u64(), Some(8));
        assert!(v["best"]["label"].as_str().is_some());
        assert!(
            v.get("stats").is_none(),
            "work accounting stays out of the report"
        );
    }

    #[test]
    fn pareto_report_renders_and_round_trips() {
        use crate::objective::MultiObjective;
        use crate::search::{pareto_campaign, ParetoSpec};
        use crate::spec::CampaignSpec;

        let mut spec = CampaignSpec::default_sweep();
        spec.horizon_ms = 5;
        spec.seeds = vec![1];
        spec.ip_counts = vec![1];
        let objectives = MultiObjective::parse("energy_saving,min:delay").unwrap();
        let out = pareto_campaign(
            &spec,
            &ParetoSpec::new(objectives, 4),
            &RunnerConfig::serial(),
            None,
        )
        .unwrap();
        let ascii = pareto_ascii(&out.report);
        assert!(ascii.contains("pareto search"), "{ascii}");
        assert!(ascii.contains("non-dominated cells"), "{ascii}");
        assert!(ascii.contains("energy_saving_pct ="), "{ascii}");
        assert!(ascii.contains("dominated"), "{ascii}");
        let md = pareto_markdown(&out.report);
        assert!(md.contains("## Pareto search"), "{md}");
        assert!(md.contains("### Front"), "{md}");
        assert!(
            md.contains("| round | evaluated | front | dominated |"),
            "{md}"
        );
        let json = pareto_json(&out.report).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["strategy"].as_str(), Some("pareto"));
        assert_eq!(v["grid_cells"].as_u64(), Some(8));
        assert!(v["front"].get_index(0).is_some());
        assert!(
            v.get("stats").is_none(),
            "work accounting stays out of the report"
        );
    }

    #[test]
    fn stats_line_counts_everything() {
        let line = run_stats_line(&crate::runner::RunStats {
            total_cells: 32,
            archived_cells: 20,
            executed_cells: 12,
            simulations: 18,
            baseline_groups: 4,
            reused_baselines: 2,
            coarse_simulations: 0,
            speculative_cells: 0,
            speculative_simulations: 0,
            speculative_coarse: 0,
        });
        for needle in ["32 cells", "20 archived", "12 executed", "18 simulations"] {
            assert!(line.contains(needle), "{line}");
        }
        assert!(
            !line.contains("coarse"),
            "fine-only runs keep the historical line: {line}"
        );
        assert!(
            !line.contains("speculative"),
            "prefetch-free runs keep the historical line: {line}"
        );
    }

    #[test]
    fn stats_line_names_speculative_work_without_the_word_simulations() {
        let line = run_stats_line(&crate::runner::RunStats {
            total_cells: 16,
            archived_cells: 4,
            executed_cells: 12,
            simulations: 14,
            baseline_groups: 3,
            reused_baselines: 1,
            coarse_simulations: 0,
            speculative_cells: 5,
            speculative_simulations: 6,
            speculative_coarse: 2,
        });
        assert!(
            line.contains("5 speculative cells (6 fine, 2 coarse evals)"),
            "{line}"
        );
        // CI greps resumed runs for " 0 simulations"; the speculative
        // clause must never be able to satisfy or defeat that grep
        assert_eq!(line.matches("simulations").count(), 1, "{line}");
    }

    #[test]
    fn stats_line_names_coarse_work_when_present() {
        let line = run_stats_line(&crate::runner::RunStats {
            total_cells: 64,
            archived_cells: 0,
            executed_cells: 64,
            simulations: 7,
            baseline_groups: 2,
            reused_baselines: 5,
            coarse_simulations: 70,
            speculative_cells: 0,
            speculative_simulations: 0,
            speculative_coarse: 0,
        });
        assert!(line.contains("70 coarse evaluations"), "{line}");
    }
}
