//! Per-scenario campaign archives: resumable sweeps **and** the
//! coordination medium for multi-process execution.
//!
//! A campaign directory persists one versioned JSON record per completed
//! grid cell, plus the spec that produced it and the work leases of any
//! in-flight workers:
//!
//! ```text
//! <dir>/
//!   campaign.toml          # the spec, as written by CampaignSpec::to_toml
//!   segments/
//!     seg-0000.log         # append-only CellRecord frames (see segment.rs)
//!     seg-0001.log
//!   cells/                 # legacy per-cell records, read-through only
//!     cell-00000.json
//!   leases/
//!     group-00003.lease    # one LeaseRecord per in-flight baseline group
//! ```
//!
//! New records are **appended to segment files** — length-prefixed,
//! checksummed frames in `segments/seg-NNNN.log`, one private segment
//! per writing process — and located through an in-memory index built
//! on open (see [`crate::segment`]). Archives written by older versions
//! store one JSON file per cell under `cells/`; those records are read
//! transparently wherever the segment index misses, so a legacy archive
//! resumes without migration. [`CampaignArchive::compact`] rewrites all
//! live records (segment + legacy) into a single fresh segment via an
//! atomic tmp+rename, dropping torn tails, duplicates and migrated
//! legacy files.
//!
//! Records carry the archive format version, a fingerprint of the spec,
//! and the full seed derivation (`master_seed` + the cell's
//! [`ScenarioSpec`]), so a resume can prove each record belongs to the
//! grid being run: anything stale — different spec, different format
//! version, index out of range, a mismatched cell — is skipped and
//! silently re-run. Failed (panicked) cells are never archived; a resume
//! retries them.
//!
//! Because the JSON layer round-trips `f64` bit-identically (shortest
//! representation, see the serde shim), a campaign resumed from any mix
//! of archived and fresh cells aggregates to the **byte-identical**
//! report a cold run produces.
//!
//! # Work leases
//!
//! Any number of independently launched processes can drain one campaign
//! directory; the only coordination primitive is the **lease record**: a
//! claim file created with `O_EXCL` semantics (`create_new`), carrying
//! the holder id, the spec fingerprint and a heartbeat timestamp. The
//! claim unit is a whole **baseline group** ([`CampaignSpec::group_of`]:
//! the cells sharing every axis an always-`ON1` baseline depends on), so
//! a group's shared baseline simulates in exactly one process and the
//! summed work across workers equals a single-process run.
//!
//! Failure semantics, in order of importance:
//!
//! * **Results are never corrupted.** Cell records are written to a
//!   temporary file and renamed into place; a worker dying mid-cell
//!   leaves a reclaimable lease, never a truncated record.
//! * **Work is never lost.** A lease whose heartbeat is older than the
//!   TTL is *stale*: any worker may take it over (atomic rename to a
//!   per-claimant tombstone, then a fresh `create_new`) and re-run the
//!   group's missing cells.
//! * **Duplication is bounded, not impossible.** Staleness is judged
//!   from a clock, so a pathologically delayed holder and its reclaimer
//!   can overlap; both then store the byte-identical record (simulations
//!   are deterministic), wasting work but changing nothing. Leases are a
//!   work-partitioning mechanism; correctness never depends on them.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::runner::{Fidelity, ScenarioMetrics, ScenarioResult};
use crate::segment::{self, IndexEntry, SegmentIndex, SegmentWriter};
use crate::spec::{CampaignSpec, ScenarioSpec};

/// Archive format version; bump when [`CellRecord`]'s layout changes.
/// Records with any other version are ignored on load (and re-run).
pub const ARCHIVE_VERSION: u32 = 1;

/// Lease record version; bump when [`LeaseRecord`]'s layout changes.
/// Leases with any other version are treated as stale (reclaimable).
pub const LEASE_VERSION: u32 = 1;

/// Default lease time-to-live. Holders refresh their heartbeat as each
/// cell of a claimed group finishes (throttled to a quarter TTL), so
/// the TTL only needs to comfortably exceed one **simulation** — not a
/// whole chunk or group; an expired lease only risks duplicated work,
/// never wrong results.
pub const DEFAULT_LEASE_TTL_MS: u64 = 60_000;

/// Default interval between archive polls while waiting for cells that
/// other workers hold.
pub const DEFAULT_LEASE_POLL_MS: u64 = 20;

/// Milliseconds since the Unix epoch (the lease heartbeat clock).
pub(crate) fn epoch_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Stable fingerprint of a campaign spec (FNV-1a over its canonical TOML
/// form), used to tie archived cells to the grid that produced them.
pub fn spec_fingerprint(spec: &CampaignSpec) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in spec.to_toml().bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One archived cell: enough context to prove it belongs to a spec, plus
/// the metrics themselves.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellRecord {
    /// Archive format version ([`ARCHIVE_VERSION`] at write time).
    pub archive_version: u32,
    /// Fingerprint of the producing spec ([`spec_fingerprint`]).
    pub spec_fingerprint: u64,
    /// The spec's master seed (root of every trace-seed derivation).
    pub master_seed: u64,
    /// The spec's horizon in milliseconds.
    pub horizon_ms: u64,
    /// The grid cell, including its index and logical workload seed.
    pub scenario: ScenarioSpec,
    /// The cell's metrics.
    pub metrics: ScenarioMetrics,
    /// The fidelity the metrics were evaluated at. Absent in records
    /// written before multi-fidelity search existed, which were all
    /// full-kernel runs — so a missing tag deserializes as
    /// [`Fidelity::Fine`] and legacy records read through unchanged.
    /// This is a *tag*, not a layout change: [`ARCHIVE_VERSION`] stays
    /// the same, and a read only accepts records whose tag matches the
    /// requested fidelity (a coarse screen must never be resumed as a
    /// completed fine cell, nor the reverse).
    pub fidelity: Fidelity,
}

/// One shared always-`ON1` baseline result on disk, so *cross-process*
/// runs share baselines the way the in-memory `BaselineCache` shares
/// them across batches inside one process. Written by the group's lease
/// holder after it first simulates the baseline; any later holder of
/// the same group (an adaptive search touches a group across many
/// batches, and which searcher claims it is a race) loads it instead of
/// re-simulating — summed `simulations`/`coarse_simulations` across
/// coordinated workers stay equal to the single-process totals.
/// Deterministic simulation makes the read purely a work saving: served
/// and re-simulated baselines are identical.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct BaselineRecord {
    /// Archive format version ([`ARCHIVE_VERSION`] at write time).
    archive_version: u32,
    /// Fingerprint of the producing spec ([`spec_fingerprint`]).
    spec_fingerprint: u64,
    /// The baseline group ([`CampaignSpec::group_of`]).
    group: usize,
    /// The fidelity the baseline was evaluated at (never served across
    /// the fine/coarse boundary, like cell records).
    fidelity: Fidelity,
    /// The shared always-`ON1` run.
    metrics: dpm_soc::SocMetrics,
}

/// One work lease on disk: a claim on a whole baseline group, created
/// with `create_new` so exactly one claimant wins.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeaseRecord {
    /// Lease format version ([`LEASE_VERSION`] at write time).
    pub lease_version: u32,
    /// Fingerprint of the campaign being worked ([`spec_fingerprint`]).
    pub spec_fingerprint: u64,
    /// The claimed baseline group ([`CampaignSpec::group_of`]).
    pub group: usize,
    /// Unique id of the claiming worker.
    pub holder: String,
    /// Milliseconds since the Unix epoch at claim/refresh time; a lease
    /// older than the TTL is stale and may be taken over.
    pub heartbeat_ms: u64,
}

/// Cross-process coordination parameters (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseConfig {
    /// Unique id of this worker (holder of its leases).
    pub holder: String,
    /// Heartbeats older than this are stale and reclaimable.
    pub ttl_ms: u64,
    /// Interval between archive polls while waiting on foreign cells.
    pub poll_ms: u64,
}

impl LeaseConfig {
    /// A config with a process-unique holder id and default timing.
    pub fn for_process() -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        Self {
            holder: format!(
                "pid{}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed),
                epoch_ms(),
            ),
            ttl_ms: DEFAULT_LEASE_TTL_MS,
            poll_ms: DEFAULT_LEASE_POLL_MS,
        }
    }

    /// This config with a different TTL.
    pub fn with_ttl_ms(mut self, ttl_ms: u64) -> Self {
        self.ttl_ms = ttl_ms;
        self
    }

    /// This config with a different poll interval.
    pub fn with_poll_ms(mut self, poll_ms: u64) -> Self {
        self.poll_ms = poll_ms;
        self
    }
}

/// A held claim on one baseline group. Deliberately **not** released on
/// drop: a worker dying with a lease in hand must leave the file behind
/// for staleness-based reclaim, and tests simulate exactly that.
#[derive(Debug)]
pub struct WorkLease {
    group: usize,
    path: PathBuf,
}

impl WorkLease {
    /// The claimed baseline group.
    pub fn group(&self) -> usize {
        self.group
    }
}

/// Observed state of a group's lease file.
#[derive(Debug, Clone, PartialEq)]
pub enum LeaseState {
    /// No lease file exists.
    Free,
    /// A live claim by `holder`.
    Held {
        /// The claiming worker.
        holder: String,
    },
    /// A claim whose heartbeat exceeded the TTL (or whose record is
    /// foreign/unreadable); reclaimable.
    Stale,
}

/// Lifecycle state of one grid cell, derived from its record and its
/// group's lease (`dpm campaign list --format json` over a directory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// A valid *fine* (full-kernel) record exists.
    Archived,
    /// A valid record exists, but it is a coarse screening result — the
    /// cell still needs a fine run before it can back a report.
    Screened,
    /// No record, but the cell's group is under a live lease.
    Leased,
    /// No record and no live lease.
    Pending,
}

impl CellState {
    /// The JSON/report name of this state.
    pub fn label(self) -> &'static str {
        match self {
            CellState::Archived => "archived",
            CellState::Screened => "screened",
            CellState::Leased => "leased",
            CellState::Pending => "pending",
        }
    }
}

/// What `gc` found and removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct GcReport {
    /// Valid cell records kept.
    pub records_kept: usize,
    /// Stale/foreign/corrupt cell records removed.
    pub records_removed: usize,
    /// Live leases left in place.
    pub leases_active: usize,
    /// Expired, foreign or unreadable leases (and takeover tombstones)
    /// removed.
    pub leases_removed: usize,
    /// Orphaned temporary files removed: interrupted cell-record,
    /// compaction and spec writes (`*.tmp`), empty or recordless
    /// segment files, and heartbeat refresh files (`*.refresh-PID-SEQ`)
    /// left behind by killed workers.
    pub tmp_removed: usize,
}

/// What [`CampaignArchive::compact`] rewrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CompactReport {
    /// Live records written into the fresh segment.
    pub records: usize,
    /// Old segment files removed after the rewrite.
    pub segments_removed: usize,
    /// Legacy `cells/cell-*.json` files migrated into the segment and
    /// removed.
    pub legacy_migrated: usize,
    /// Total segment bytes before compaction.
    pub bytes_before: u64,
    /// Segment bytes after compaction (the fresh segment alone).
    pub bytes_after: u64,
}

/// Outcome of loading an archive against an expanded grid.
#[derive(Debug)]
pub struct ArchiveLoad {
    /// One slot per grid cell; `Some` where a valid record was found.
    pub slots: Vec<Option<ScenarioResult>>,
    /// Records accepted.
    pub loaded: usize,
    /// Record files present but rejected (stale version, foreign spec,
    /// mismatched cell, or unparseable JSON); those cells re-run.
    pub skipped: usize,
}

/// The segment-store half of an archive handle: the in-memory index
/// plus this process's private append handle. Shared across clones so
/// worker threads storing cells and the poll loop reading them see one
/// coherent index.
#[derive(Debug)]
struct SegmentState {
    index: SegmentIndex,
    writer: SegmentWriter,
}

/// A campaign directory opened against a specific spec.
///
/// Fine and coarse records live in **separate segment stores**
/// (`segments/` and `segments-coarse/`): the segment layer's
/// first-frame-wins index is only sound while every frame for a cell
/// is byte-identical, which holds within one fidelity but not across
/// two. Keeping the stores apart preserves that invariant and lets a
/// cell hold a coarse screen *and* a fine result at once — each read
/// fidelity hits its own cache.
#[derive(Debug, Clone)]
pub struct CampaignArchive {
    dir: PathBuf,
    fingerprint: u64,
    segments: Arc<Mutex<SegmentState>>,
    coarse: Arc<Mutex<SegmentState>>,
}

impl CampaignArchive {
    /// Opens (creating if necessary) a campaign directory for `spec`.
    ///
    /// A fresh directory gets `campaign.toml` written; an existing one
    /// must have been created for the *same* spec — resuming a different
    /// grid into it is refused.
    ///
    /// # Errors
    ///
    /// Returns a description when the spec is invalid, the directory
    /// cannot be created or written, or it already holds a different
    /// campaign.
    pub fn open(dir: &Path, spec: &CampaignSpec) -> Result<Self, String> {
        // refuse to create (and fingerprint-lock) a directory for a spec
        // that can never run
        spec.validate()?;
        let cells = dir.join("cells");
        std::fs::create_dir_all(&cells)
            .map_err(|e| format!("cannot create campaign directory {}: {e}", cells.display()))?;
        let spec_path = dir.join("campaign.toml");
        let toml = spec.to_toml();
        match std::fs::read_to_string(&spec_path) {
            Ok(existing) => {
                let archived = CampaignSpec::from_toml(&existing)
                    .map_err(|e| format!("{} is not a campaign spec: {e}", spec_path.display()))?;
                if spec_fingerprint(&archived) != spec_fingerprint(spec) {
                    return Err(format!(
                        "archive {} holds campaign '{}' with a different grid; \
                         refusing to resume '{}' into it",
                        dir.display(),
                        archived.name,
                        spec.name,
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // tmp + rename, like cell records: a kill mid-write must
                // not leave a truncated campaign.toml that blocks resume
                let tmp = dir.join("campaign.toml.tmp");
                std::fs::write(&tmp, &toml)
                    .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
                std::fs::rename(&tmp, &spec_path)
                    .map_err(|e| format!("cannot finalize {}: {e}", spec_path.display()))?;
            }
            Err(e) => return Err(format!("cannot read {}: {e}", spec_path.display())),
        }
        let fingerprint = spec_fingerprint(spec);
        let mut index = SegmentIndex::new(dir.join("segments"), fingerprint, ARCHIVE_VERSION);
        // build the index up front: one sequential scan of the segment
        // files, no JSON parsing — sub-second even at 10^5 cells
        index.refresh()?;
        let mut coarse_index =
            SegmentIndex::new(dir.join("segments-coarse"), fingerprint, ARCHIVE_VERSION);
        coarse_index.refresh()?;
        Ok(Self {
            dir: dir.to_path_buf(),
            fingerprint,
            segments: Arc::new(Mutex::new(SegmentState {
                index,
                writer: SegmentWriter::default(),
            })),
            coarse: Arc::new(Mutex::new(SegmentState {
                index: coarse_index,
                writer: SegmentWriter::default(),
            })),
        })
    }

    /// Opens a campaign directory that already exists, recovering the
    /// spec from its `campaign.toml` — the entry point for worker
    /// processes, which receive only the directory.
    ///
    /// # Errors
    ///
    /// Returns a description when the directory or its `campaign.toml`
    /// cannot be read, or the stored spec does not parse.
    pub fn open_existing(dir: &Path) -> Result<(Self, CampaignSpec), String> {
        let spec_path = dir.join("campaign.toml");
        let text = std::fs::read_to_string(&spec_path).map_err(|e| {
            format!(
                "{} is not a campaign directory (cannot read {}: {e})",
                dir.display(),
                spec_path.display(),
            )
        })?;
        let spec = CampaignSpec::from_toml(&text)
            .map_err(|e| format!("{} is not a campaign spec: {e}", spec_path.display()))?;
        let archive = Self::open(dir, &spec)?;
        Ok((archive, spec))
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fingerprint of the spec this archive was opened for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// This process's segment-store state (poison-recovering: a worker
    /// thread panicking mid-store must not wedge every later archive
    /// access).
    fn seg_lock(&self) -> MutexGuard<'_, SegmentState> {
        self.segments
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The segment-store state for one fidelity. Code touching both
    /// stores must take the fine lock before the coarse one.
    fn lock_for(&self, fidelity: Fidelity) -> MutexGuard<'_, SegmentState> {
        match fidelity {
            Fidelity::Fine => self.seg_lock(),
            Fidelity::Coarse => self
                .coarse
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// The `segments/` directory.
    fn segments_dir(&self) -> PathBuf {
        self.dir.join("segments")
    }

    /// The segment directory of one fidelity's store.
    fn segments_dir_for(&self, fidelity: Fidelity) -> PathBuf {
        match fidelity {
            Fidelity::Fine => self.dir.join("segments"),
            Fidelity::Coarse => self.dir.join("segments-coarse"),
        }
    }

    /// The legacy-format path of one cell record. New legacy-format
    /// writes (tests, migrations) use 8-digit padding so names sort
    /// lexicographically up to 10^8 cells; reads also accept the
    /// historical 5-digit names.
    fn cell_path(&self, index: usize) -> PathBuf {
        self.dir.join("cells").join(format!("cell-{index:08}.json"))
    }

    /// Every legacy cell record present under `cells/`, keyed by its
    /// **numerically parsed** index (so 5- and 8-digit names mix
    /// freely); 8-digit names win when both widths exist.
    fn legacy_map(&self) -> HashMap<usize, PathBuf> {
        let mut map: HashMap<usize, (usize, PathBuf)> = HashMap::new();
        let Ok(entries) = std::fs::read_dir(self.dir.join("cells")) else {
            return HashMap::new();
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(digits) = name
                .strip_prefix("cell-")
                .and_then(|rest| rest.strip_suffix(".json"))
            else {
                continue;
            };
            let Ok(index) = digits.parse::<usize>() else {
                continue;
            };
            match map.get(&index) {
                Some((width, _)) if *width >= digits.len() => {}
                _ => {
                    map.insert(index, (digits.len(), path));
                }
            }
        }
        map.into_iter().map(|(i, (_, p))| (i, p)).collect()
    }

    /// Reads one legacy cell record's text, trying the 8-digit name
    /// first and falling back to the historical 5-digit one.
    fn legacy_cell_text(&self, index: usize) -> Option<String> {
        let cells = self.dir.join("cells");
        for name in [
            format!("cell-{index:08}.json"),
            format!("cell-{index:05}.json"),
        ] {
            if let Ok(text) = std::fs::read_to_string(cells.join(name)) {
                return Some(text);
            }
        }
        None
    }

    /// The lease file guarding one baseline group (public for
    /// inspection and crash-simulation in tests).
    pub fn lease_path(&self, group: usize) -> PathBuf {
        self.dir
            .join("leases")
            .join(format!("group-{group:05}.lease"))
    }

    /// The stored shared-baseline file of one group at one fidelity.
    fn baseline_path(&self, group: usize, fidelity: Fidelity) -> PathBuf {
        let tag = match fidelity {
            Fidelity::Fine => "fine",
            Fidelity::Coarse => "coarse",
        };
        self.dir
            .join("baselines")
            .join(format!("{tag}-group-{group:05}.json"))
    }

    /// Loads `group`'s stored shared baseline at `fidelity`, if a valid
    /// one exists (see [`BaselineRecord`]): a missing, foreign or
    /// corrupt file just means the caller simulates the baseline
    /// itself, exactly as before baselines were persisted.
    pub fn load_baseline(&self, group: usize, fidelity: Fidelity) -> Option<dpm_soc::SocMetrics> {
        let text = std::fs::read_to_string(self.baseline_path(group, fidelity)).ok()?;
        match serde_json::from_str::<BaselineRecord>(&text) {
            Ok(rec)
                if rec.archive_version == ARCHIVE_VERSION
                    && rec.spec_fingerprint == self.fingerprint
                    && rec.group == group
                    && rec.fidelity == fidelity =>
            {
                Some(rec.metrics)
            }
            _ => None,
        }
    }

    /// Stores `group`'s freshly simulated shared baseline (best-effort
    /// for callers: a failure only risks a peer re-simulating the
    /// baseline, never wrong results). Written to a temporary file and
    /// renamed into place, so a reader never sees a torn record; the
    /// caller holds `group`'s lease, so concurrent writers of the same
    /// file do not arise in normal operation — and would write
    /// identical bytes if staleness reclaim ever overlapped them.
    ///
    /// # Errors
    ///
    /// Returns a description when the record cannot be written.
    pub fn store_baseline(
        &self,
        group: usize,
        fidelity: Fidelity,
        metrics: &dpm_soc::SocMetrics,
    ) -> Result<(), String> {
        let record = BaselineRecord {
            archive_version: ARCHIVE_VERSION,
            spec_fingerprint: self.fingerprint,
            group,
            fidelity,
            metrics: metrics.clone(),
        };
        let json = serde_json::to_string(&record)
            .map_err(|e| format!("cannot serialize baseline record: {e}"))?;
        let path = self.baseline_path(group, fidelity);
        let dir = path.parent().expect("baseline path has a parent");
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot rename {} into place: {e}", tmp.display()))
    }

    /// Parses and validates one record's text against the cell it
    /// should hold, returning the full record. With `fidelity` set, a
    /// record of any other fidelity is rejected **in both directions**
    /// — a fine record must not satisfy a coarse read either, or a
    /// resumed coarse screen would silently change its numbers. `None`
    /// accepts any fidelity (hygiene passes: gc, compaction, status).
    fn valid_record(
        &self,
        spec: &CampaignSpec,
        cell: &ScenarioSpec,
        text: &str,
        fidelity: Option<Fidelity>,
    ) -> Option<CellRecord> {
        match serde_json::from_str::<CellRecord>(text) {
            Ok(rec)
                if rec.archive_version == ARCHIVE_VERSION
                    && rec.spec_fingerprint == self.fingerprint
                    && rec.master_seed == spec.master_seed
                    && rec.horizon_ms == spec.horizon_ms
                    && rec.scenario == *cell
                    && fidelity.is_none_or(|f| rec.fidelity == f) =>
            {
                Some(rec)
            }
            _ => None,
        }
    }

    /// Validates one record's text against the cell it should hold.
    fn record_from(
        &self,
        spec: &CampaignSpec,
        cell: &ScenarioSpec,
        text: &str,
        fidelity: Option<Fidelity>,
    ) -> Option<ScenarioResult> {
        self.valid_record(spec, cell, text, fidelity)
            .map(|rec| ScenarioResult {
                scenario: rec.scenario,
                metrics: Some(rec.metrics),
                error: None,
            })
    }

    /// Loads one cell's *fine* record, if a valid one exists: the
    /// segment index first (refreshing on a miss, so a record another
    /// process just appended is found), then the legacy per-cell files.
    pub fn load_cell(&self, spec: &CampaignSpec, cell: &ScenarioSpec) -> Option<ScenarioResult> {
        self.load_cell_as(spec, cell, Fidelity::Fine)
    }

    /// [`load_cell`](Self::load_cell) at an explicit fidelity: reads
    /// that fidelity's segment store; only a record evaluated at
    /// exactly `fidelity` satisfies the read.
    pub fn load_cell_as(
        &self,
        spec: &CampaignSpec,
        cell: &ScenarioSpec,
        fidelity: Fidelity,
    ) -> Option<ScenarioResult> {
        {
            let mut state = self.lock_for(fidelity);
            if let Some(payload) = state.index.read_refreshing(cell.index) {
                if let Some(result) = std::str::from_utf8(&payload)
                    .ok()
                    .and_then(|text| self.record_from(spec, cell, text, Some(fidelity)))
                {
                    return Some(result);
                }
            }
        }
        // legacy per-cell files predate the coarse evaluator entirely,
        // so they can only ever satisfy a fine read
        if fidelity != Fidelity::Fine {
            return None;
        }
        let text = self.legacy_cell_text(cell.index)?;
        self.record_from(spec, cell, &text, Some(fidelity))
    }

    /// Loads every valid archived record against the given cells (the
    /// full expanded grid, or any subset of it — records live under their
    /// **grid** index, so a search evaluating scattered cells hits the
    /// same cache an exhaustive sweep fills). Slot `i` of the result
    /// corresponds to `cells[i]`. Invalid or foreign records count as
    /// `skipped` and their cells run fresh. Loads *fine* records only.
    pub fn load(&self, spec: &CampaignSpec, cells: &[ScenarioSpec]) -> ArchiveLoad {
        self.load_as(spec, cells, Fidelity::Fine)
    }

    /// [`load`](Self::load) at an explicit fidelity: reads that
    /// fidelity's segment store; a record of the wrong fidelity that
    /// somehow ended up there counts as `skipped` (its cell runs fresh
    /// at the requested fidelity — never served across the boundary).
    pub fn load_as(
        &self,
        spec: &CampaignSpec,
        cells: &[ScenarioSpec],
        fidelity: Fidelity,
    ) -> ArchiveLoad {
        let mut slots: Vec<Option<ScenarioResult>> = vec![None; cells.len()];
        let mut loaded = 0;
        let mut skipped = 0;
        {
            // one refresh for the whole batch, then index-served reads
            let mut state = self.lock_for(fidelity);
            let _ = state.index.refresh();
            for (i, cell) in cells.iter().enumerate() {
                if !state.index.contains(cell.index) {
                    continue;
                }
                let Some(payload) = state.index.read_refreshing(cell.index) else {
                    continue; // segment vanished (compaction race): legacy below
                };
                match std::str::from_utf8(&payload)
                    .ok()
                    .and_then(|text| self.record_from(spec, cell, text, Some(fidelity)))
                {
                    Some(result) => {
                        slots[i] = Some(result);
                        loaded += 1;
                    }
                    None => skipped += 1,
                }
            }
        }
        // legacy read-through for whatever the segments didn't cover
        // (legacy files predate the coarse evaluator: fine reads only)
        if fidelity == Fidelity::Fine && slots.iter().any(Option::is_none) {
            let legacy = self.legacy_map();
            if !legacy.is_empty() {
                for (i, cell) in cells.iter().enumerate() {
                    if slots[i].is_some() {
                        continue;
                    }
                    let Some(path) = legacy.get(&cell.index) else {
                        continue;
                    };
                    let Ok(text) = std::fs::read_to_string(path) else {
                        continue;
                    };
                    match self.record_from(spec, cell, &text, Some(fidelity)) {
                        Some(result) => {
                            slots[i] = Some(result);
                            loaded += 1;
                        }
                        None => skipped += 1,
                    }
                }
            }
        }
        ArchiveLoad {
            slots,
            loaded,
            skipped,
        }
    }

    /// Persists one finished cell. Failed cells are not archived (a
    /// resume retries them); storing them is a silent no-op.
    ///
    /// The record is framed (length prefix + checksum) and appended to
    /// this process's segment file; a kill mid-append leaves a torn
    /// tail that every scan detects and skips, never a record that
    /// loads corrupt.
    ///
    /// # Errors
    ///
    /// Returns a description when the record cannot be written.
    pub fn store(&self, spec: &CampaignSpec, result: &ScenarioResult) -> Result<(), String> {
        self.store_as(spec, result, Fidelity::Fine)
    }

    /// [`store`](Self::store) at an explicit fidelity: the record is
    /// appended to that fidelity's segment store. A cell may hold a
    /// coarse screen and a fine result at once — each lives in its own
    /// store, so neither ever shadows the other.
    ///
    /// # Errors
    ///
    /// Returns a description when the record cannot be written.
    pub fn store_as(
        &self,
        spec: &CampaignSpec,
        result: &ScenarioResult,
        fidelity: Fidelity,
    ) -> Result<(), String> {
        let Some(json) = self.encode_record(spec, result, fidelity)? else {
            return Ok(());
        };
        let index = result.scenario.index;
        let dir = self.segments_dir_for(fidelity);
        let mut state = self.lock_for(fidelity);
        let appended = state.writer.append(
            &dir,
            index,
            self.fingerprint,
            ARCHIVE_VERSION,
            json.as_bytes(),
        )?;
        let path = segment::segment_path(&dir, appended.segment);
        state.index.insert_local(
            index,
            IndexEntry {
                segment: appended.segment,
                payload_offset: appended.payload_offset,
                payload_len: appended.payload_len,
            },
            &path,
            appended.end,
        );
        Ok(())
    }

    /// The canonical (compact-JSON) record text of one successful
    /// result; `None` for failed cells.
    fn encode_record(
        &self,
        spec: &CampaignSpec,
        result: &ScenarioResult,
        fidelity: Fidelity,
    ) -> Result<Option<String>, String> {
        let Some(metrics) = result.metrics.as_ref() else {
            return Ok(None);
        };
        let record = CellRecord {
            archive_version: ARCHIVE_VERSION,
            spec_fingerprint: self.fingerprint,
            master_seed: spec.master_seed,
            horizon_ms: spec.horizon_ms,
            scenario: result.scenario,
            metrics: metrics.clone(),
            fidelity,
        };
        serde_json::to_string(&record)
            .map(Some)
            .map_err(|e| e.to_string())
    }

    /// Persists one finished cell in the **legacy** per-cell-JSON-file
    /// format (tmp + rename at `cells/cell-<index>.json`). Only here so
    /// tests and benchmarks can fabricate the archives old binaries
    /// wrote; new code stores through [`store`](Self::store).
    #[doc(hidden)]
    pub fn store_legacy(&self, spec: &CampaignSpec, result: &ScenarioResult) -> Result<(), String> {
        let Some(metrics) = result.metrics.as_ref() else {
            return Ok(());
        };
        let record = CellRecord {
            archive_version: ARCHIVE_VERSION,
            spec_fingerprint: self.fingerprint,
            master_seed: spec.master_seed,
            horizon_ms: spec.horizon_ms,
            scenario: result.scenario,
            metrics: metrics.clone(),
            fidelity: Fidelity::Fine,
        };
        let json = serde_json::to_string_pretty(&record).map_err(|e| e.to_string())?;
        let path = self.cell_path(result.scenario.index);
        std::fs::create_dir_all(self.dir.join("cells"))
            .map_err(|e| format!("cannot create {}: {e}", self.dir.join("cells").display()))?;
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, &json).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("cannot finalize {}: {e}", path.display()))
    }

    /// Rewrites every live record — segment frames and legacy per-cell
    /// files alike — into a single fresh segment file, dropping torn
    /// tails, duplicate frames, foreign/corrupt records and the
    /// migrated legacy files. The new segment is written to a temporary
    /// file and renamed into place, so a kill mid-compaction never
    /// loses a record: the old files are only removed after the rename
    /// lands.
    ///
    /// Refused while any unexpired work lease exists: a live lease means
    /// a worker may append records during the compaction window, and
    /// those appends would be silently discarded with the old segments —
    /// the cells would re-run byte-identically later, but as wasted,
    /// surprising work (and under `dpm serve`, behind the operator's
    /// back). Wait for the leases to expire or be released (or clear
    /// stale ones with `campaign gc`) and retry.
    ///
    /// Both segment stores are compacted: the fine store (which also
    /// absorbs legacy per-cell files) and the coarse store. The report
    /// totals cover the two combined.
    ///
    /// # Errors
    ///
    /// Returns a description when an unexpired lease is held, or when a
    /// directory cannot be listed, scanned or written.
    pub fn compact(&self, spec: &CampaignSpec) -> Result<CompactReport, String> {
        if let Some(holder) = self.held_lease_holder(DEFAULT_LEASE_TTL_MS)? {
            return Err(format!(
                "cannot compact: unexpired lease held by '{holder}' — a worker \
                 may still be appending records (they would be dropped with the \
                 old segments); wait for leases to expire or release, or run \
                 'campaign gc', then retry"
            ));
        }
        let mut report = CompactReport::default();
        {
            let mut state = self.seg_lock();
            self.compact_store(spec, &mut state, &self.segments_dir(), true, &mut report)?;
        }
        {
            let mut state = self.lock_for(Fidelity::Coarse);
            let dir = self.segments_dir_for(Fidelity::Coarse);
            self.compact_store(spec, &mut state, &dir, false, &mut report)?;
        }
        Ok(report)
    }

    /// Compacts one segment store in place; `migrate_legacy` also
    /// folds valid legacy per-cell files into the fresh segment (the
    /// fine store only — legacy records predate the coarse evaluator).
    fn compact_store(
        &self,
        spec: &CampaignSpec,
        state: &mut SegmentState,
        dir: &Path,
        migrate_legacy: bool,
        report: &mut CompactReport,
    ) -> Result<(), String> {
        use std::io::Write as _;
        let n = spec.scenario_count();
        // our own open segment is rewritten like any other
        state.writer.close();
        state.index.reset();
        state.index.refresh()?;
        let old_segments = segment::list_segments(dir)?;
        for path in old_segments.values() {
            report.bytes_before += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        }
        // full-validation pass: canonical record text per live cell
        let mut records: std::collections::BTreeMap<usize, String> =
            std::collections::BTreeMap::new();
        let mut indices: Vec<usize> = state.index.indices().collect();
        indices.sort_unstable();
        for index in indices {
            if index >= n {
                continue;
            }
            let cell = spec.cell_at(index);
            let Some(payload) = state.index.read(index) else {
                continue;
            };
            if let Some(rec) = std::str::from_utf8(&payload)
                .ok()
                .and_then(|text| self.valid_record(spec, &cell, text, None))
            {
                let text = serde_json::to_string(&rec).map_err(|e| e.to_string())?;
                records.insert(index, text);
            }
        }
        // migrate legacy records (valid ones; corrupt files are gc's
        // business, not compaction's)
        let mut migrated: Vec<PathBuf> = Vec::new();
        if migrate_legacy {
            for (index, path) in self.legacy_map() {
                if index >= n {
                    continue;
                }
                if records.contains_key(&index) {
                    migrated.push(path); // duplicate of a segment record
                    continue;
                }
                let cell = spec.cell_at(index);
                let Ok(text) = std::fs::read_to_string(&path) else {
                    continue;
                };
                if let Some(rec) = self.valid_record(spec, &cell, &text, None) {
                    let canonical = serde_json::to_string(&rec).map_err(|e| e.to_string())?;
                    records.insert(index, canonical);
                    migrated.push(path);
                }
            }
        }
        if !records.is_empty() {
            // reserve the target number with create_new (concurrent
            // writers allocate past it), build the segment in a temp
            // file, then atomically rename over the reservation
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let mut number = old_segments.keys().next_back().map_or(0, |l| l + 1);
            let target = loop {
                let path = segment::segment_path(dir, number);
                match std::fs::OpenOptions::new()
                    .write(true)
                    .create_new(true)
                    .open(&path)
                {
                    Ok(_) => break path,
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => number += 1,
                    Err(e) => return Err(format!("cannot reserve {}: {e}", path.display())),
                }
            };
            let tmp = dir.join(format!("seg-{number:04}.log.tmp"));
            let write_all = || -> std::io::Result<()> {
                let file = std::fs::File::create(&tmp)?;
                let mut out = std::io::BufWriter::new(file);
                for (index, text) in &records {
                    out.write_all(&segment::encode_frame(
                        *index as u64,
                        self.fingerprint,
                        ARCHIVE_VERSION,
                        text.as_bytes(),
                    ))?;
                }
                out.flush()
            };
            write_all().map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            std::fs::rename(&tmp, &target)
                .map_err(|e| format!("cannot finalize {}: {e}", target.display()))?;
            report.bytes_after += std::fs::metadata(&target).map(|m| m.len()).unwrap_or(0);
            report.records += records.len();
        }
        // only now drop the old files: every live record is durable in
        // the fresh segment
        for path in old_segments.values() {
            if std::fs::remove_file(path).is_ok() {
                report.segments_removed += 1;
            }
        }
        for path in &migrated {
            if std::fs::remove_file(path).is_ok() {
                report.legacy_migrated += 1;
            }
        }
        state.index.reset();
        state.index.refresh()?;
        Ok(())
    }

    /// The holder of one currently-held (unexpired) work lease, if any —
    /// the compaction guard. Scans the `leases/` directory the way
    /// [`Self::gc`] does; tombstones and refresh temp files are not
    /// leases and never block.
    fn held_lease_holder(&self, ttl_ms: u64) -> Result<Option<String>, String> {
        for entry in read_dir_or_empty(&self.dir.join("leases"))? {
            let path = entry?;
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let group = name
                .strip_prefix("group-")
                .and_then(|rest| rest.strip_suffix(".lease"))
                .and_then(|digits| digits.parse::<usize>().ok());
            if let Some(g) = group {
                if let LeaseState::Held { holder } = self.lease_state(g, ttl_ms) {
                    return Ok(Some(holder));
                }
            }
        }
        Ok(None)
    }

    // ---- work leases -------------------------------------------------

    /// The parsed lease of `group`, judged against `ttl_ms`.
    pub fn lease_state(&self, group: usize, ttl_ms: u64) -> LeaseState {
        let path = self.lease_path(group);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LeaseState::Free,
            // unreadable (permissions, transient I/O): reclaimable — a
            // takeover on a truly broken filesystem fails loudly anyway
            Err(_) => return LeaseState::Stale,
        };
        match serde_json::from_str::<LeaseRecord>(&text) {
            Ok(rec)
                if rec.lease_version == LEASE_VERSION
                    && rec.spec_fingerprint == self.fingerprint =>
            {
                // a heartbeat stamped in the *future* (a worker on a
                // fast clock) is fresh, never reclaimable: staleness is
                // strictly `now - heartbeat > ttl`, so a skewed-but-live
                // holder is never preempted, and a skewed holder that
                // dies becomes reclaimable once real time passes its
                // stamp plus the TTL
                let now = epoch_ms();
                if now.saturating_sub(rec.heartbeat_ms) > ttl_ms {
                    LeaseState::Stale
                } else {
                    LeaseState::Held { holder: rec.holder }
                }
            }
            // a *parseable* lease with a foreign format version or
            // fingerprint can never be completed into this grid by its
            // writer: reclaimable right away (so an old binary's
            // leftovers never wedge a new one)
            Ok(_) => LeaseState::Stale,
            // unparseable (possibly a torn read of a just-created
            // lease): stale only once the *file* is old. A modification
            // time in the future (writer on a fast clock) means age
            // zero — fresh — not stale; `duration_since` erring on a
            // future timestamp must never be read as expiry.
            Err(_) => match std::fs::metadata(&path).and_then(|m| m.modified()).ok() {
                Some(modified) => {
                    let age_ms = SystemTime::now()
                        .duration_since(modified)
                        .map_or(0, |age| age.as_millis() as u64);
                    if age_ms <= ttl_ms {
                        LeaseState::Held {
                            holder: "<unreadable>".into(),
                        }
                    } else {
                        LeaseState::Stale
                    }
                }
                // no readable mtime at all: reclaimable
                None => LeaseState::Stale,
            },
        }
    }

    /// Tries to claim `group`: creates its lease file with `create_new`
    /// (so exactly one claimant wins), taking over a stale lease first if
    /// one is in the way. Returns `None` when another worker holds a
    /// live lease.
    ///
    /// # Errors
    ///
    /// Returns a description when the leases directory cannot be created
    /// or the lease cannot be written.
    pub fn try_claim(
        &self,
        group: usize,
        config: &LeaseConfig,
    ) -> Result<Option<WorkLease>, String> {
        use std::io::Write as _;
        let path = self.lease_path(group);
        let leases = self.dir.join("leases");
        std::fs::create_dir_all(&leases)
            .map_err(|e| format!("cannot create {}: {e}", leases.display()))?;
        // one takeover attempt per call: claim, or remove a stale lease
        // and claim again; a second AlreadyExists means someone else won
        for attempt in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let record = LeaseRecord {
                        lease_version: LEASE_VERSION,
                        spec_fingerprint: self.fingerprint,
                        group,
                        holder: config.holder.clone(),
                        heartbeat_ms: epoch_ms(),
                    };
                    let json = serde_json::to_string(&record).map_err(|e| e.to_string())?;
                    file.write_all(json.as_bytes())
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    return Ok(Some(WorkLease { group, path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if attempt > 0 || self.lease_state(group, config.ttl_ms) != LeaseState::Stale {
                        return Ok(None);
                    }
                    // stale: take it over via an atomic rename to a
                    // per-claimant tombstone — exactly one reclaimer wins
                    // the rename; losers see NotFound and re-race the
                    // create_new above. The holder is sanitized here so
                    // an id containing path separators cannot point the
                    // tombstone outside the leases directory.
                    let safe_holder: String = config
                        .holder
                        .chars()
                        .map(|c| if c == '/' || c == '\\' { '-' } else { c })
                        .collect();
                    let tombstone = path.with_extension(format!("stale-{safe_holder}"));
                    if std::fs::rename(&path, &tombstone).is_err() {
                        continue;
                    }
                    let _ = std::fs::remove_file(&tombstone);
                }
                Err(e) => return Err(format!("cannot claim {}: {e}", path.display())),
            }
        }
        Ok(None)
    }

    /// Refreshes a held lease's heartbeat (temp file + atomic rename, so
    /// readers never see a torn record).
    ///
    /// # Errors
    ///
    /// Returns a description when the refreshed lease cannot be written.
    pub fn refresh(&self, lease: &WorkLease, config: &LeaseConfig) -> Result<(), String> {
        let record = LeaseRecord {
            lease_version: LEASE_VERSION,
            spec_fingerprint: self.fingerprint,
            group: lease.group,
            holder: config.holder.clone(),
            heartbeat_ms: epoch_ms(),
        };
        let json = serde_json::to_string(&record).map_err(|e| e.to_string())?;
        // the temp name carries a per-process sequence number: refreshes
        // can now fire from worker threads as cells finish, and two
        // in-flight refreshes must not share a temp file
        static REFRESH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = lease.path.with_extension(format!(
            "refresh-{}-{}",
            std::process::id(),
            REFRESH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        std::fs::write(&tmp, &json).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &lease.path)
            .map_err(|e| format!("cannot refresh {}: {e}", lease.path.display()))
    }

    /// Releases a held lease. Best-effort: the group's records exist by
    /// now, so a lingering lease file only delays (never blocks) other
    /// workers — they reclaim it after the TTL.
    pub fn release(&self, lease: WorkLease) {
        let _ = std::fs::remove_file(&lease.path);
    }

    /// The lifecycle state of every grid cell: its record, else its
    /// group's lease, else pending.
    ///
    /// Segment-archived cells are judged by index membership plus a
    /// byte scan of the payload for the coarse fidelity tag — every
    /// indexed frame already passed the checksum, fingerprint and
    /// version checks during the scan, so no JSON is parsed here. That
    /// keeps a full-status sweep sub-second at 10^5 cells while still
    /// telling coarse screens ([`CellState::Screened`]) apart from
    /// completed fine cells.
    pub fn cell_states(&self, spec: &CampaignSpec, ttl_ms: u64) -> Vec<CellState> {
        let cells = spec.expand();
        let mut archived: Vec<bool> = vec![false; cells.len()];
        {
            let mut state = self.seg_lock();
            let _ = state.index.refresh();
            for (i, cell) in cells.iter().enumerate() {
                archived[i] = state.index.contains(cell.index);
            }
        }
        if archived.iter().any(|&a| !a) {
            let legacy = self.legacy_map();
            if !legacy.is_empty() {
                for (i, cell) in cells.iter().enumerate() {
                    if archived[i] {
                        continue;
                    }
                    let Some(path) = legacy.get(&cell.index) else {
                        continue;
                    };
                    if std::fs::read_to_string(path)
                        .ok()
                        .and_then(|text| self.record_from(spec, cell, &text, None))
                        .is_some()
                    {
                        archived[i] = true;
                    }
                }
            }
        }
        // a cell with only a coarse record is *screened*: ranked by the
        // fast path, but still pending as far as fine results go
        let mut screened: Vec<bool> = vec![false; cells.len()];
        {
            let mut state = self.lock_for(Fidelity::Coarse);
            let _ = state.index.refresh();
            for (i, cell) in cells.iter().enumerate() {
                screened[i] = !archived[i] && state.index.contains(cell.index);
            }
        }
        let lease_live: Vec<bool> = (0..spec.group_count())
            .map(|g| matches!(self.lease_state(g, ttl_ms), LeaseState::Held { .. }))
            .collect();
        cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                if archived[i] {
                    CellState::Archived
                } else if screened[i] {
                    CellState::Screened
                } else if lease_live[spec.group_of(cell.index)] {
                    CellState::Leased
                } else {
                    CellState::Pending
                }
            })
            .collect()
    }

    /// Archive hygiene: removes cell records that can never be loaded
    /// for `spec` (foreign fingerprint, stale version, corrupt JSON,
    /// out-of-range index), segment files holding no live record,
    /// expired/foreign lease files and takeover tombstones, and
    /// orphaned temporary files. Live leases, valid records and the
    /// segment files holding them are left untouched — invalid frames
    /// *inside* a segment that also holds live records are
    /// [`compact`](Self::compact)'s job, since removing them means
    /// rewriting the file.
    ///
    /// # Errors
    ///
    /// Returns a description when a directory listing or a removal
    /// fails (a missing `segments/`, `cells/` or `leases/` directory is
    /// fine).
    pub fn gc(&self, spec: &CampaignSpec, ttl_ms: u64) -> Result<GcReport, String> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut report = GcReport::default();
        let remove = |path: &Path| -> Result<(), String> {
            std::fs::remove_file(path).map_err(|e| format!("cannot remove {}: {e}", path.display()))
        };
        let n = spec.scenario_count();
        for fidelity in [Fidelity::Fine, Fidelity::Coarse] {
            let segdir = self.segments_dir_for(fidelity);
            for entry in read_dir_or_empty(&segdir)? {
                let path = entry?;
                let name = path.file_name().and_then(|f| f.to_str()).unwrap_or("");
                if name.ends_with(".tmp") {
                    remove(&path)?;
                    report.tmp_removed += 1;
                    continue;
                }
                if segment::parse_segment_name(name).is_none() {
                    continue; // not ours; leave unknown files alone
                }
                let (frames, _) = segment::scan_segment(&path, 0)
                    .map_err(|e| format!("cannot scan {}: {e}", path.display()))?;
                let mut valid = 0;
                let mut invalid = 0;
                if !frames.is_empty() {
                    let mut file = std::fs::File::open(&path)
                        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
                    for frame in &frames {
                        let ok = frame.fingerprint == self.fingerprint
                            && frame.version == ARCHIVE_VERSION
                            && usize::try_from(frame.index).is_ok_and(|index| {
                                index < n && {
                                    let mut payload = vec![0u8; frame.payload_len as usize];
                                    file.seek(SeekFrom::Start(frame.payload_offset)).is_ok()
                                        && file.read_exact(&mut payload).is_ok()
                                        && std::str::from_utf8(&payload).is_ok_and(|text| {
                                            self.record_from(spec, &spec.cell_at(index), text, None)
                                                .is_some()
                                        })
                                }
                            });
                        if ok {
                            valid += 1;
                        } else {
                            invalid += 1;
                        }
                    }
                }
                if valid > 0 {
                    report.records_kept += valid;
                } else if invalid > 0 {
                    remove(&path)?;
                    report.records_removed += invalid;
                } else {
                    // empty or pure-garbage segment (a writer killed
                    // between allocation and its first append)
                    remove(&path)?;
                    report.tmp_removed += 1;
                }
            }
        }
        // removing dead segments invalidates any index entries into
        // them; the next refresh rebuilds
        if report.records_removed > 0 || report.tmp_removed > 0 {
            for fidelity in [Fidelity::Fine, Fidelity::Coarse] {
                let mut state = self.lock_for(fidelity);
                state.index.reset();
                let _ = state.index.refresh();
            }
        }
        for entry in read_dir_or_empty(&self.dir.join("cells"))? {
            let path = entry?;
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".tmp") {
                remove(&path)?;
                report.tmp_removed += 1;
                continue;
            }
            let Some(index) = name
                .strip_prefix("cell-")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<usize>().ok())
            else {
                continue; // not ours; leave unknown files alone
            };
            let valid = index < n
                && std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|text| self.record_from(spec, &spec.cell_at(index), &text, None))
                    .is_some();
            if valid {
                report.records_kept += 1;
            } else {
                remove(&path)?;
                report.records_removed += 1;
            }
        }
        for entry in read_dir_or_empty(&self.dir.join("leases"))? {
            let path = entry?;
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let group = name
                .strip_prefix("group-")
                .and_then(|rest| rest.strip_suffix(".lease"))
                .and_then(|digits| digits.parse::<usize>().ok());
            match group {
                Some(g) if matches!(self.lease_state(g, ttl_ms), LeaseState::Held { .. }) => {
                    report.leases_active += 1;
                }
                Some(_) => {
                    remove(&path)?;
                    report.leases_removed += 1;
                }
                // refresh heartbeat files are temp files (tmp + rename),
                // orphaned when their writer is killed mid-refresh
                None if name.contains(".refresh-") => {
                    remove(&path)?;
                    report.tmp_removed += 1;
                }
                // takeover tombstones
                None if name.contains(".stale-") => {
                    remove(&path)?;
                    report.leases_removed += 1;
                }
                None => {}
            }
        }
        // a kill between `campaign.toml.tmp` write and its rename leaves
        // the temp spec at the directory root
        let spec_tmp = self.dir.join("campaign.toml.tmp");
        if spec_tmp.is_file() {
            remove(&spec_tmp)?;
            report.tmp_removed += 1;
        }
        Ok(report)
    }
}

/// Directory entries as paths; a missing directory yields nothing.
fn read_dir_or_empty(dir: &Path) -> Result<Vec<Result<PathBuf, String>>, String> {
    match std::fs::read_dir(dir) {
        Ok(entries) => Ok(entries
            .map(|e| {
                e.map(|e| e.path())
                    .map_err(|e| format!("cannot list {}: {e}", dir.display()))
            })
            .collect()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("cannot list {}: {e}", dir.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunnerConfig};
    use crate::spec::{BatteryAxis, ControllerAxis, ThermalAxis, TuningAxis, WorkloadAxis};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpm-archive-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "archive_tiny".into(),
            horizon_ms: 5,
            master_seed: 11,
            initial_soc: 0.9,
            controllers: vec![ControllerAxis::Dpm],
            tunings: vec![TuningAxis::Paper],
            workloads: vec![WorkloadAxis::Low],
            seeds: vec![1, 2],
            batteries: vec![BatteryAxis::Linear],
            thermals: vec![ThermalAxis::Cool],
            ip_counts: vec![1],
        }
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let spec = tiny_spec();
        assert_eq!(spec_fingerprint(&spec), spec_fingerprint(&spec.clone()));
        let mut other = spec.clone();
        other.master_seed += 1;
        assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&other));
    }

    #[test]
    fn records_round_trip_through_the_store() {
        let spec = tiny_spec();
        let dir = tmp_dir("roundtrip");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let result = run_campaign(&spec, &RunnerConfig::serial());
        for r in &result.results {
            archive.store(&spec, r).unwrap();
        }
        let load = archive.load(&spec, &spec.expand());
        assert_eq!(load.loaded, spec.scenario_count());
        assert_eq!(load.skipped, 0);
        for (slot, fresh) in load.slots.iter().zip(&result.results) {
            assert_eq!(slot.as_ref().unwrap(), fresh);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_spec_records_are_skipped_and_foreign_dirs_refused() {
        let spec = tiny_spec();
        let dir = tmp_dir("foreign");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let result = run_campaign(&spec, &RunnerConfig::serial());
        archive.store_legacy(&spec, &result.results[0]).unwrap();

        // same directory, different grid: open refuses outright
        let mut other = spec.clone();
        other.seeds = vec![7, 8, 9];
        let err = CampaignArchive::open(&dir, &other).unwrap_err();
        assert!(err.contains("different grid"), "{err}");

        // a legacy record rewritten with a stale version is skipped,
        // not loaded
        let path = archive.cell_path(0);
        let stale = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"archive_version\": 1", "\"archive_version\": 0");
        std::fs::write(&path, stale).unwrap();
        let load = archive.load(&spec, &spec.expand());
        assert_eq!(load.loaded, 0);
        assert_eq!(load.skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_are_skipped() {
        let spec = tiny_spec();
        let dir = tmp_dir("corrupt");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        std::fs::write(archive.cell_path(1), "{ not json").unwrap();
        let load = archive.load(&spec, &spec.expand());
        assert_eq!(load.loaded, 0);
        assert_eq!(load.skipped, 1);
        assert!(load.slots.iter().all(Option::is_none));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn test_lease() -> LeaseConfig {
        LeaseConfig::for_process()
            .with_ttl_ms(60_000)
            .with_poll_ms(1)
    }

    #[test]
    fn open_existing_recovers_the_spec_from_the_directory() {
        let spec = tiny_spec();
        let dir = tmp_dir("open-existing");
        let _ = CampaignArchive::open(&dir, &spec).unwrap();
        let (archive, recovered) = CampaignArchive::open_existing(&dir).unwrap();
        assert_eq!(recovered, spec);
        assert_eq!(archive.fingerprint(), spec_fingerprint(&spec));
        let err = CampaignArchive::open_existing(&dir.join("nope")).unwrap_err();
        assert!(err.contains("not a campaign directory"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claims_are_exclusive_until_released() {
        let spec = tiny_spec();
        let dir = tmp_dir("claims");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let cfg = test_lease();
        let lease = archive
            .try_claim(0, &cfg)
            .unwrap()
            .expect("first claim wins");
        assert_eq!(lease.group(), 0);
        match archive.lease_state(0, cfg.ttl_ms) {
            LeaseState::Held { holder } => assert_eq!(holder, cfg.holder),
            other => panic!("expected a held lease, got {other:?}"),
        }
        // a second claimant is refused while the lease is fresh
        let other = LeaseConfig::for_process();
        assert!(archive.try_claim(0, &other).unwrap().is_none());
        // other groups are independent
        assert!(archive.try_claim(1, &other).unwrap().is_some());
        archive.release(lease);
        assert_eq!(archive.lease_state(0, cfg.ttl_ms), LeaseState::Free);
        assert!(archive.try_claim(0, &other).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_leases_are_taken_over() {
        let spec = tiny_spec();
        let dir = tmp_dir("stale-lease");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let dead = test_lease();
        let lease = archive.try_claim(0, &dead).unwrap().expect("claimed");
        // simulate a killed worker: freeze the heartbeat in the distant past
        let stale = LeaseRecord {
            lease_version: LEASE_VERSION,
            spec_fingerprint: archive.fingerprint(),
            group: 0,
            holder: dead.holder.clone(),
            heartbeat_ms: 0,
        };
        std::fs::write(
            archive.lease_path(0),
            serde_json::to_string(&stale).unwrap(),
        )
        .unwrap();
        drop(lease); // never released
        assert_eq!(archive.lease_state(0, 1_000), LeaseState::Stale);
        let survivor = LeaseConfig::for_process().with_ttl_ms(1_000);
        let reclaimed = archive
            .try_claim(0, &survivor)
            .unwrap()
            .expect("stale lease is reclaimable");
        match archive.lease_state(0, survivor.ttl_ms) {
            LeaseState::Held { holder } => assert_eq!(holder, survivor.holder),
            other => panic!("expected the survivor to hold, got {other:?}"),
        }
        archive.release(reclaimed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_version_leases_are_stale_immediately() {
        let spec = tiny_spec();
        let dir = tmp_dir("foreign-lease");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        // parseable, fresh heartbeat, but written by a future binary:
        // must be reclaimable now, not after a TTL of mtime grace
        let future = LeaseRecord {
            lease_version: LEASE_VERSION + 1,
            spec_fingerprint: archive.fingerprint(),
            group: 0,
            holder: "future".into(),
            heartbeat_ms: u64::MAX / 2,
        };
        std::fs::create_dir_all(dir.join("leases")).unwrap();
        std::fs::write(
            archive.lease_path(0),
            serde_json::to_string(&future).unwrap(),
        )
        .unwrap();
        assert_eq!(archive.lease_state(0, 60_000), LeaseState::Stale);
        // ... and a claimant takes it over despite the fresh file
        let cfg = test_lease();
        let lease = archive.try_claim(0, &cfg).unwrap();
        assert!(lease.is_some(), "foreign-version lease must be reclaimable");
        archive.release(lease.unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn takeover_survives_holders_with_path_separators() {
        let spec = tiny_spec();
        let dir = tmp_dir("hostile-holder");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let dead = LeaseRecord {
            lease_version: LEASE_VERSION,
            spec_fingerprint: archive.fingerprint(),
            group: 0,
            holder: "dead".into(),
            heartbeat_ms: 0,
        };
        std::fs::create_dir_all(dir.join("leases")).unwrap();
        std::fs::write(archive.lease_path(0), serde_json::to_string(&dead).unwrap()).unwrap();
        let hostile = LeaseConfig::for_process().with_ttl_ms(1_000);
        let hostile = LeaseConfig {
            holder: "host/worker\\1".into(),
            ..hostile
        };
        let lease = archive.try_claim(0, &hostile).unwrap();
        assert!(lease.is_some(), "sanitized tombstone must allow takeover");
        archive.release(lease.unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_keeps_a_lease_alive() {
        let spec = tiny_spec();
        let dir = tmp_dir("refresh");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let cfg = test_lease();
        let lease = archive.try_claim(1, &cfg).unwrap().expect("claimed");
        archive.refresh(&lease, &cfg).unwrap();
        assert!(matches!(
            archive.lease_state(1, cfg.ttl_ms),
            LeaseState::Held { .. }
        ));
        archive.release(lease);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_valid_state_and_removes_garbage() {
        let spec = tiny_spec();
        let dir = tmp_dir("gc");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let result = run_campaign(&spec, &RunnerConfig::serial());
        for r in &result.results {
            archive.store(&spec, r).unwrap();
        }
        // garbage: a corrupt record, an orphan tmp, an expired lease
        std::fs::write(archive.cell_path(1), "{ corrupt").unwrap();
        std::fs::write(dir.join("cells").join("cell-00000.json.tmp"), "x").unwrap();
        let cfg = test_lease();
        let live = archive.try_claim(0, &cfg).unwrap().expect("claimed");
        let expired = LeaseRecord {
            lease_version: LEASE_VERSION,
            spec_fingerprint: archive.fingerprint(),
            group: 1,
            holder: "dead".into(),
            heartbeat_ms: 0,
        };
        std::fs::write(
            archive.lease_path(1),
            serde_json::to_string(&expired).unwrap(),
        )
        .unwrap();

        let report = archive.gc(&spec, cfg.ttl_ms).unwrap();
        // every stored cell is a live segment frame; the corrupt legacy
        // file is the one record removed
        assert_eq!(report.records_kept, spec.scenario_count());
        assert_eq!(report.records_removed, 1);
        assert_eq!(report.leases_active, 1);
        assert_eq!(report.leases_removed, 1);
        assert_eq!(report.tmp_removed, 1);
        // the live lease and the valid records survived
        assert!(matches!(
            archive.lease_state(0, cfg.ttl_ms),
            LeaseState::Held { .. }
        ));
        let load = archive.load(&spec, &spec.expand());
        assert_eq!(load.loaded, spec.scenario_count());
        assert_eq!(load.skipped, 0, "gc removed everything unloadable");
        archive.release(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_sweeps_refresh_orphans_of_killed_workers_as_temp_files() {
        let spec = tiny_spec();
        let dir = tmp_dir("gc-refresh-orphans");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        // what a worker killed mid-heartbeat leaves behind: refresh temp
        // files in leases/, plus an interrupted spec write at the root
        let leases = dir.join("leases");
        std::fs::create_dir_all(&leases).unwrap();
        std::fs::write(leases.join("group-00000.refresh-4242-1"), "{}").unwrap();
        std::fs::write(leases.join("group-00001.refresh-4242-7"), "{}").unwrap();
        std::fs::write(leases.join("group-00000.stale-pid9"), "").unwrap();
        std::fs::write(dir.join("campaign.toml.tmp"), "name = ").unwrap();

        let report = archive.gc(&spec, test_lease().ttl_ms).unwrap();
        assert_eq!(
            report.tmp_removed, 3,
            "two refresh orphans + the interrupted spec write"
        );
        assert_eq!(report.leases_removed, 1, "the takeover tombstone");
        assert_eq!(report.leases_active, 0);
        for name in [
            "leases/group-00000.refresh-4242-1",
            "leases/group-00001.refresh-4242-7",
            "leases/group-00000.stale-pid9",
            "campaign.toml.tmp",
        ] {
            assert!(!dir.join(name).exists(), "{name} must be swept");
        }
        // sweeping hygiene never touches the spec itself
        assert!(dir.join("campaign.toml").is_file());
        // and a second pass finds nothing left to do
        let again = archive.gc(&spec, test_lease().ttl_ms).unwrap();
        assert_eq!(again.tmp_removed, 0);
        assert_eq!(again.leases_removed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_states_reflect_records_and_leases() {
        let spec = tiny_spec();
        let dir = tmp_dir("cell-states");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let result = run_campaign(&spec, &RunnerConfig::serial());
        archive.store(&spec, &result.results[0]).unwrap();
        let cfg = test_lease();
        let lease = archive
            .try_claim(spec.group_of(1), &cfg)
            .unwrap()
            .expect("claimed");
        let states = archive.cell_states(&spec, cfg.ttl_ms);
        assert_eq!(states[0], CellState::Archived);
        assert_eq!(states[1], CellState::Leased);
        assert_eq!(states.len(), spec.scenario_count());
        archive.release(lease);
        let states = archive.cell_states(&spec, cfg.ttl_ms);
        assert_eq!(states[1], CellState::Pending);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coarse_and_fine_records_live_in_separate_stores() {
        let spec = tiny_spec();
        let dir = tmp_dir("fidelity-coexist");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let fine = run_campaign(&spec, &RunnerConfig::serial());
        let coarse = run_campaign(
            &spec,
            &RunnerConfig::serial().with_fidelity(Fidelity::Coarse),
        );
        // a full coarse screen ...
        for r in &coarse.results {
            archive.store_as(&spec, r, Fidelity::Coarse).unwrap();
        }
        // ... never satisfies a fine read
        let load = archive.load(&spec, &spec.expand());
        assert_eq!(load.loaded, 0, "screens must not stand in for fine cells");
        // cell 0 then completes at fine fidelity
        archive.store(&spec, &fine.results[0]).unwrap();
        let got = archive
            .load_cell(&spec, &spec.cell_at(0))
            .expect("fine record");
        assert_eq!(&got, &fine.results[0]);
        // the coarse record coexists, unshadowed — a resumed screen
        // replays byte-identically from its own store
        let got = archive
            .load_cell_as(&spec, &spec.cell_at(0), Fidelity::Coarse)
            .expect("coarse record");
        assert_eq!(&got, &coarse.results[0]);
        // and the fine record never leaks into coarse reads
        let screen = archive.load_as(&spec, &spec.expand(), Fidelity::Coarse);
        assert_eq!(screen.loaded, spec.scenario_count());
        for (slot, want) in screen.slots.iter().zip(&coarse.results) {
            assert_eq!(slot.as_ref().unwrap(), want);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coarse_only_cells_report_screened() {
        let spec = tiny_spec();
        let dir = tmp_dir("fidelity-states");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let coarse = run_campaign(
            &spec,
            &RunnerConfig::serial().with_fidelity(Fidelity::Coarse),
        );
        for r in &coarse.results {
            archive.store_as(&spec, r, Fidelity::Coarse).unwrap();
        }
        let cfg = test_lease();
        let states = archive.cell_states(&spec, cfg.ttl_ms);
        assert!(
            states.iter().all(|&s| s == CellState::Screened),
            "{states:?}"
        );
        // a fine completion promotes the cell past "screened"
        let fine = run_campaign(&spec, &RunnerConfig::serial());
        archive.store(&spec, &fine.results[0]).unwrap();
        let states = archive.cell_states(&spec, cfg.ttl_ms);
        assert_eq!(states[0], CellState::Archived);
        assert_eq!(states[1], CellState::Screened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_and_gc_preserve_both_fidelity_stores() {
        let spec = tiny_spec();
        let dir = tmp_dir("fidelity-compact");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let fine = run_campaign(&spec, &RunnerConfig::serial());
        let coarse = run_campaign(
            &spec,
            &RunnerConfig::serial().with_fidelity(Fidelity::Coarse),
        );
        for r in &coarse.results {
            archive.store_as(&spec, r, Fidelity::Coarse).unwrap();
        }
        for r in &fine.results {
            archive.store(&spec, r).unwrap();
        }
        let report = archive.compact(&spec).unwrap();
        assert_eq!(report.records, 2 * spec.scenario_count());
        let gc = archive.gc(&spec, test_lease().ttl_ms).unwrap();
        assert_eq!(gc.records_kept, 2 * spec.scenario_count());
        assert_eq!(gc.records_removed, 0);
        let fine_load = archive.load(&spec, &spec.expand());
        assert_eq!(fine_load.loaded, spec.scenario_count());
        let coarse_load = archive.load_as(&spec, &spec.expand(), Fidelity::Coarse);
        assert_eq!(coarse_load.loaded, spec.scenario_count());
        for (slot, want) in coarse_load.slots.iter().zip(&coarse.results) {
            assert_eq!(slot.as_ref().unwrap(), want);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_dated_heartbeats_are_fresh_not_reclaimable() {
        let spec = tiny_spec();
        let dir = tmp_dir("future-heartbeat");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        // a worker on a fast clock: heartbeat an hour in the future
        let skewed = LeaseRecord {
            lease_version: LEASE_VERSION,
            spec_fingerprint: archive.fingerprint(),
            group: 0,
            holder: "fast-clock".into(),
            heartbeat_ms: epoch_ms() + 3_600_000,
        };
        std::fs::create_dir_all(dir.join("leases")).unwrap();
        std::fs::write(
            archive.lease_path(0),
            serde_json::to_string(&skewed).unwrap(),
        )
        .unwrap();
        // fresh under any TTL, even one of a single millisecond
        assert_eq!(
            archive.lease_state(0, 1),
            LeaseState::Held {
                holder: "fast-clock".into()
            },
            "a future heartbeat must never be judged stale",
        );
        let claimant = LeaseConfig::for_process().with_ttl_ms(1);
        assert!(
            archive.try_claim(0, &claimant).unwrap().is_none(),
            "a future-dated lease must not be taken over",
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_five_digit_records_are_read_through() {
        let spec = tiny_spec();
        let dir = tmp_dir("legacy-5digit");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let result = run_campaign(&spec, &RunnerConfig::serial());
        // fabricate what an old binary left behind: 5-digit names
        for r in &result.results {
            archive.store_legacy(&spec, r).unwrap();
            let index = r.scenario.index;
            std::fs::rename(
                dir.join("cells").join(format!("cell-{index:08}.json")),
                dir.join("cells").join(format!("cell-{index:05}.json")),
            )
            .unwrap();
        }
        // a fresh handle (index built on open) loads them all
        let reopened = CampaignArchive::open(&dir, &spec).unwrap();
        let load = reopened.load(&spec, &spec.expand());
        assert_eq!(load.loaded, spec.scenario_count());
        assert_eq!(load.skipped, 0);
        assert!(reopened
            .cell_states(&spec, DEFAULT_LEASE_TTL_MS)
            .iter()
            .all(|s| *s == CellState::Archived));
        let cell = spec.cell_at(1);
        assert!(reopened.load_cell(&spec, &cell).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_segments_and_migrates_legacy() {
        let spec = tiny_spec();
        let dir = tmp_dir("compact");
        let result = run_campaign(&spec, &RunnerConfig::serial());
        // two writer handles → two segment files, plus one legacy file
        let a = CampaignArchive::open(&dir, &spec).unwrap();
        let b = CampaignArchive::open(&dir, &spec).unwrap();
        a.store(&spec, &result.results[0]).unwrap();
        b.store(&spec, &result.results[1]).unwrap();
        a.store_legacy(&spec, &result.results[1]).unwrap();
        let before = archive_reference(&a, &spec);

        let report = a.compact(&spec).unwrap();
        assert_eq!(report.records, spec.scenario_count());
        assert_eq!(report.segments_removed, 2);
        assert_eq!(report.legacy_migrated, 1);
        assert!(report.bytes_after > 0);
        let segments = std::fs::read_dir(dir.join("segments"))
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".log"))
            .count();
        assert_eq!(segments, 1, "one fresh segment holds everything");
        assert!(
            !dir.join("cells").join("cell-00000001.json").exists(),
            "migrated legacy files are gone"
        );

        // same handle and a fresh one both load identically
        assert_eq!(archive_reference(&a, &spec), before);
        let reopened = CampaignArchive::open(&dir, &spec).unwrap();
        assert_eq!(archive_reference(&reopened, &spec), before);

        // compaction is idempotent
        let again = reopened.compact(&spec).unwrap();
        assert_eq!(again.records, spec.scenario_count());
        assert_eq!(again.legacy_migrated, 0);
        assert_eq!(archive_reference(&reopened, &spec), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The loaded results of every cell, for before/after comparisons.
    fn archive_reference(
        archive: &CampaignArchive,
        spec: &CampaignSpec,
    ) -> Vec<Option<ScenarioResult>> {
        archive.load(spec, &spec.expand()).slots
    }

    #[test]
    fn gc_removes_segments_without_live_records() {
        let spec = tiny_spec();
        let dir = tmp_dir("gc-dead-segment");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let segdir = dir.join("segments");
        std::fs::create_dir_all(&segdir).unwrap();
        // a segment of foreign frames only, an empty one, and an
        // orphaned compaction temp
        let frame = crate::segment::encode_frame(0, 0xDEAD_BEEF, ARCHIVE_VERSION, b"{}");
        std::fs::write(segdir.join("seg-0007.log"), &frame).unwrap();
        std::fs::write(segdir.join("seg-0008.log"), b"").unwrap();
        std::fs::write(segdir.join("seg-0009.log.tmp"), b"half a rewrite").unwrap();
        let report = archive.gc(&spec, DEFAULT_LEASE_TTL_MS).unwrap();
        assert_eq!(report.records_removed, 1, "the foreign frame");
        assert_eq!(report.tmp_removed, 2, "empty segment + compaction temp");
        assert!(!segdir.join("seg-0007.log").exists());
        assert!(!segdir.join("seg-0008.log").exists());
        assert!(!segdir.join("seg-0009.log.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_location_is_a_clear_error() {
        let file = std::env::temp_dir().join(format!("dpm-archive-file-{}", std::process::id()));
        std::fs::write(&file, "x").unwrap();
        // a path *under* a regular file can never become a directory
        let err = CampaignArchive::open(&file.join("sub"), &tiny_spec()).unwrap_err();
        assert!(err.contains("cannot create campaign directory"), "{err}");
        let _ = std::fs::remove_file(&file);
    }
}
