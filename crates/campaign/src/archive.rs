//! Per-scenario campaign archives: resumable sweeps.
//!
//! A campaign directory persists one versioned JSON record per completed
//! grid cell, plus the spec that produced it:
//!
//! ```text
//! <dir>/
//!   campaign.toml        # the spec, as written by CampaignSpec::to_toml
//!   cells/
//!     cell-00000.json    # one CellRecord per *successful* cell
//!     cell-00017.json
//! ```
//!
//! Records carry the archive format version, a fingerprint of the spec,
//! and the full seed derivation (`master_seed` + the cell's
//! [`ScenarioSpec`]), so a resume can prove each record belongs to the
//! grid being run: anything stale — different spec, different format
//! version, index out of range, a mismatched cell — is skipped and
//! silently re-run. Failed (panicked) cells are never archived; a resume
//! retries them.
//!
//! Because the JSON layer round-trips `f64` bit-identically (shortest
//! representation, see the serde shim), a campaign resumed from any mix
//! of archived and fresh cells aggregates to the **byte-identical**
//! report a cold run produces.

use std::path::{Path, PathBuf};

use crate::runner::{ScenarioMetrics, ScenarioResult};
use crate::spec::{CampaignSpec, ScenarioSpec};

/// Archive format version; bump when [`CellRecord`]'s layout changes.
/// Records with any other version are ignored on load (and re-run).
pub const ARCHIVE_VERSION: u32 = 1;

/// Stable fingerprint of a campaign spec (FNV-1a over its canonical TOML
/// form), used to tie archived cells to the grid that produced them.
pub fn spec_fingerprint(spec: &CampaignSpec) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in spec.to_toml().bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One archived cell: enough context to prove it belongs to a spec, plus
/// the metrics themselves.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellRecord {
    /// Archive format version ([`ARCHIVE_VERSION`] at write time).
    pub archive_version: u32,
    /// Fingerprint of the producing spec ([`spec_fingerprint`]).
    pub spec_fingerprint: u64,
    /// The spec's master seed (root of every trace-seed derivation).
    pub master_seed: u64,
    /// The spec's horizon in milliseconds.
    pub horizon_ms: u64,
    /// The grid cell, including its index and logical workload seed.
    pub scenario: ScenarioSpec,
    /// The cell's metrics.
    pub metrics: ScenarioMetrics,
}

/// Outcome of loading an archive against an expanded grid.
#[derive(Debug)]
pub struct ArchiveLoad {
    /// One slot per grid cell; `Some` where a valid record was found.
    pub slots: Vec<Option<ScenarioResult>>,
    /// Records accepted.
    pub loaded: usize,
    /// Record files present but rejected (stale version, foreign spec,
    /// mismatched cell, or unparseable JSON); those cells re-run.
    pub skipped: usize,
}

/// A campaign directory opened against a specific spec.
#[derive(Debug, Clone)]
pub struct CampaignArchive {
    dir: PathBuf,
    fingerprint: u64,
}

impl CampaignArchive {
    /// Opens (creating if necessary) a campaign directory for `spec`.
    ///
    /// A fresh directory gets `campaign.toml` written; an existing one
    /// must have been created for the *same* spec — resuming a different
    /// grid into it is refused.
    ///
    /// # Errors
    ///
    /// Returns a description when the spec is invalid, the directory
    /// cannot be created or written, or it already holds a different
    /// campaign.
    pub fn open(dir: &Path, spec: &CampaignSpec) -> Result<Self, String> {
        // refuse to create (and fingerprint-lock) a directory for a spec
        // that can never run
        spec.validate()?;
        let cells = dir.join("cells");
        std::fs::create_dir_all(&cells)
            .map_err(|e| format!("cannot create campaign directory {}: {e}", cells.display()))?;
        let spec_path = dir.join("campaign.toml");
        let toml = spec.to_toml();
        match std::fs::read_to_string(&spec_path) {
            Ok(existing) => {
                let archived = CampaignSpec::from_toml(&existing)
                    .map_err(|e| format!("{} is not a campaign spec: {e}", spec_path.display()))?;
                if spec_fingerprint(&archived) != spec_fingerprint(spec) {
                    return Err(format!(
                        "archive {} holds campaign '{}' with a different grid; \
                         refusing to resume '{}' into it",
                        dir.display(),
                        archived.name,
                        spec.name,
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // tmp + rename, like cell records: a kill mid-write must
                // not leave a truncated campaign.toml that blocks resume
                let tmp = dir.join("campaign.toml.tmp");
                std::fs::write(&tmp, &toml)
                    .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
                std::fs::rename(&tmp, &spec_path)
                    .map_err(|e| format!("cannot finalize {}: {e}", spec_path.display()))?;
            }
            Err(e) => return Err(format!("cannot read {}: {e}", spec_path.display())),
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            fingerprint: spec_fingerprint(spec),
        })
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn cell_path(&self, index: usize) -> PathBuf {
        self.dir.join("cells").join(format!("cell-{index:05}.json"))
    }

    /// Loads every valid archived record against the given cells (the
    /// full expanded grid, or any subset of it — records live under their
    /// **grid** index, so a search evaluating scattered cells hits the
    /// same cache an exhaustive sweep fills). Slot `i` of the result
    /// corresponds to `cells[i]`. Invalid or foreign records count as
    /// `skipped` and their cells run fresh.
    pub fn load(&self, spec: &CampaignSpec, cells: &[ScenarioSpec]) -> ArchiveLoad {
        let mut slots: Vec<Option<ScenarioResult>> = vec![None; cells.len()];
        let mut loaded = 0;
        let mut skipped = 0;
        for (i, cell) in cells.iter().enumerate() {
            let Ok(text) = std::fs::read_to_string(self.cell_path(cell.index)) else {
                continue;
            };
            match serde_json::from_str::<CellRecord>(&text) {
                Ok(rec)
                    if rec.archive_version == ARCHIVE_VERSION
                        && rec.spec_fingerprint == self.fingerprint
                        && rec.master_seed == spec.master_seed
                        && rec.horizon_ms == spec.horizon_ms
                        && rec.scenario == *cell =>
                {
                    slots[i] = Some(ScenarioResult {
                        scenario: rec.scenario,
                        metrics: Some(rec.metrics),
                        error: None,
                    });
                    loaded += 1;
                }
                _ => skipped += 1,
            }
        }
        ArchiveLoad {
            slots,
            loaded,
            skipped,
        }
    }

    /// Persists one finished cell. Failed cells are not archived (a
    /// resume retries them); storing them is a silent no-op.
    ///
    /// The record is written to a temporary file and renamed into place,
    /// so a killed sweep never leaves a truncated record behind.
    ///
    /// # Errors
    ///
    /// Returns a description when the record cannot be written.
    pub fn store(&self, spec: &CampaignSpec, result: &ScenarioResult) -> Result<(), String> {
        let Some(metrics) = result.metrics.as_ref() else {
            return Ok(());
        };
        let record = CellRecord {
            archive_version: ARCHIVE_VERSION,
            spec_fingerprint: self.fingerprint,
            master_seed: spec.master_seed,
            horizon_ms: spec.horizon_ms,
            scenario: result.scenario,
            metrics: metrics.clone(),
        };
        let json = serde_json::to_string_pretty(&record).map_err(|e| e.to_string())?;
        let path = self.cell_path(result.scenario.index);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, &json).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("cannot finalize {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunnerConfig};
    use crate::spec::{BatteryAxis, ControllerAxis, ThermalAxis, TuningAxis, WorkloadAxis};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpm-archive-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "archive_tiny".into(),
            horizon_ms: 5,
            master_seed: 11,
            initial_soc: 0.9,
            controllers: vec![ControllerAxis::Dpm],
            tunings: vec![TuningAxis::Paper],
            workloads: vec![WorkloadAxis::Low],
            seeds: vec![1, 2],
            batteries: vec![BatteryAxis::Linear],
            thermals: vec![ThermalAxis::Cool],
            ip_counts: vec![1],
        }
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let spec = tiny_spec();
        assert_eq!(spec_fingerprint(&spec), spec_fingerprint(&spec.clone()));
        let mut other = spec.clone();
        other.master_seed += 1;
        assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&other));
    }

    #[test]
    fn records_round_trip_through_the_store() {
        let spec = tiny_spec();
        let dir = tmp_dir("roundtrip");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let result = run_campaign(&spec, &RunnerConfig::serial());
        for r in &result.results {
            archive.store(&spec, r).unwrap();
        }
        let load = archive.load(&spec, &spec.expand());
        assert_eq!(load.loaded, spec.scenario_count());
        assert_eq!(load.skipped, 0);
        for (slot, fresh) in load.slots.iter().zip(&result.results) {
            assert_eq!(slot.as_ref().unwrap(), fresh);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_spec_records_are_skipped_and_foreign_dirs_refused() {
        let spec = tiny_spec();
        let dir = tmp_dir("foreign");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        let result = run_campaign(&spec, &RunnerConfig::serial());
        archive.store(&spec, &result.results[0]).unwrap();

        // same directory, different grid: open refuses outright
        let mut other = spec.clone();
        other.seeds = vec![7, 8, 9];
        let err = CampaignArchive::open(&dir, &other).unwrap_err();
        assert!(err.contains("different grid"), "{err}");

        // a record rewritten with a stale version is skipped, not loaded
        let path = archive.cell_path(0);
        let stale = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"archive_version\": 1", "\"archive_version\": 0");
        std::fs::write(&path, stale).unwrap();
        let load = archive.load(&spec, &spec.expand());
        assert_eq!(load.loaded, 0);
        assert_eq!(load.skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_are_skipped() {
        let spec = tiny_spec();
        let dir = tmp_dir("corrupt");
        let archive = CampaignArchive::open(&dir, &spec).unwrap();
        std::fs::write(archive.cell_path(1), "{ not json").unwrap();
        let load = archive.load(&spec, &spec.expand());
        assert_eq!(load.loaded, 0);
        assert_eq!(load.skipped, 1);
        assert!(load.slots.iter().all(Option::is_none));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_location_is_a_clear_error() {
        let file = std::env::temp_dir().join(format!("dpm-archive-file-{}", std::process::id()));
        std::fs::write(&file, "x").unwrap();
        // a path *under* a regular file can never become a directory
        let err = CampaignArchive::open(&file.join("sub"), &tiny_spec()).unwrap_err();
        assert!(err.contains("cannot create campaign directory"), "{err}");
        let _ = std::fs::remove_file(&file);
    }
}
