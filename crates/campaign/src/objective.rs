//! Search objectives: what "best cell" means.
//!
//! An [`Objective`] names a metric, a direction (maximize or minimize —
//! defaulting to the metric's natural "better" direction), and an
//! optional [`Constraint`] (e.g. *energy saving subject to mean delay
//! overhead ≤ 5 %*). Cells violating the constraint are **infeasible**:
//! any feasible cell outranks every infeasible one, and infeasible cells
//! still compare by objective value so a search can climb back into the
//! feasible region. Failed (panicked) cells score as `None` and rank
//! below everything.
//!
//! A [`MultiObjective`] bundles **two or more** objectives for Pareto
//! exploration: cells compare by [`MultiObjective::dominates`] (feasible
//! dominates infeasible; among equals, componentwise no-worse and
//! strictly-better-somewhere), and the "best" of a result set is its
//! **non-dominated front** ([`MultiObjective::front`]) rather than a
//! single winner.
//!
//! All comparisons are strict; callers break ties by **grid index**, so
//! a search and an exhaustive sweep agree on the winner bit for bit.

use core::fmt;

use crate::aggregate::Metric;
use crate::runner::ScenarioResult;

/// Whether larger or smaller objective values win.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Larger values win.
    Maximize,
    /// Smaller values win.
    Minimize,
}

/// Comparison operator of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ConstraintOp {
    /// Metric must be `<=` the bound.
    Le,
    /// Metric must be `>=` the bound.
    Ge,
}

/// A feasibility bound on one metric, e.g. `delay_overhead_pct <= 5`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Constraint {
    /// The constrained metric.
    pub metric: Metric,
    /// The comparison direction.
    pub op: ConstraintOp,
    /// The bound.
    pub bound: f64,
}

impl Constraint {
    /// Parses `metric<=bound` or `metric>=bound` (e.g.
    /// `delay_overhead_pct<=5`).
    ///
    /// # Errors
    ///
    /// Returns a description when the operator is missing, the metric is
    /// unknown, or the bound is not a number.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (metric_name, op, bound_text) = if let Some((m, b)) = s.split_once("<=") {
            (m, ConstraintOp::Le, b)
        } else if let Some((m, b)) = s.split_once(">=") {
            (m, ConstraintOp::Ge, b)
        } else {
            return Err(format!(
                "constraint '{s}' must look like 'metric<=bound' or 'metric>=bound'"
            ));
        };
        let metric = parse_metric(metric_name.trim())?;
        let bound: f64 = bound_text
            .trim()
            .parse()
            .map_err(|_| format!("constraint bound '{}' is not a number", bound_text.trim()))?;
        Ok(Self { metric, op, bound })
    }

    /// `true` when `value` satisfies the bound.
    pub fn holds(&self, value: f64) -> bool {
        match self.op {
            ConstraintOp::Le => value <= self.bound,
            ConstraintOp::Ge => value >= self.bound,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
        };
        write!(f, "{} {op} {}", self.metric.label(), self.bound)
    }
}

/// What the search optimizes: a metric, a direction, and an optional
/// feasibility constraint.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Objective {
    /// The optimized metric.
    pub metric: Metric,
    /// Whether larger or smaller values win.
    pub direction: Direction,
    /// Optional feasibility bound on a (possibly different) metric.
    pub constraint: Option<Constraint>,
}

/// One evaluated cell's standing under an objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellScore {
    /// The objective metric's value.
    pub value: f64,
    /// `true` when the constraint (if any) holds.
    pub feasible: bool,
}

impl Objective {
    /// An unconstrained objective in the metric's natural direction
    /// (its [`Metric::higher_is_better`]).
    pub fn for_metric(metric: Metric) -> Self {
        Self {
            metric,
            direction: if metric.higher_is_better() {
                Direction::Maximize
            } else {
                Direction::Minimize
            },
            constraint: None,
        }
    }

    /// Parses an objective expression: a metric name (label or alias,
    /// see [`parse_metric`]) with an optional `min:`/`max:` prefix, e.g.
    /// `energy_saving`, `min:energy_j`, `max:final_soc`. Without a
    /// prefix the metric's natural direction applies.
    ///
    /// # Errors
    ///
    /// Returns a description when the metric name is unknown.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (direction, name) = match s.split_once(':') {
            Some(("min", rest)) => (Some(Direction::Minimize), rest),
            Some(("max", rest)) => (Some(Direction::Maximize), rest),
            Some((other, _)) => {
                return Err(format!(
                    "unknown objective prefix '{other}:' (expected 'min:' or 'max:')"
                ))
            }
            None => (None, s),
        };
        let mut objective = Self::for_metric(parse_metric(name.trim())?);
        if let Some(d) = direction {
            objective.direction = d;
        }
        Ok(objective)
    }

    /// This objective with a feasibility constraint attached.
    pub fn with_constraint(mut self, constraint: Constraint) -> Self {
        self.constraint = Some(constraint);
        self
    }

    /// Scores one result; `None` for failed (panicked) cells.
    pub fn score(&self, result: &ScenarioResult) -> Option<CellScore> {
        let value = self.metric.extract(result)?;
        let feasible = match self.constraint {
            Some(c) => c.holds(c.metric.extract(result)?),
            None => true,
        };
        Some(CellScore { value, feasible })
    }

    /// Strictly-better comparison: feasible beats infeasible, then the
    /// objective value decides in this objective's direction. Ties are
    /// *not* better — callers resolve them by grid index.
    pub fn better(&self, a: CellScore, b: CellScore) -> bool {
        if a.feasible != b.feasible {
            return a.feasible;
        }
        match self.direction {
            Direction::Maximize => a.value.total_cmp(&b.value) == std::cmp::Ordering::Greater,
            Direction::Minimize => a.value.total_cmp(&b.value) == std::cmp::Ordering::Less,
        }
    }

    /// The **argmax comparator**, shared by every consumer that ranks
    /// whole cells: `(a, ai)` outranks `(b, bi)` when `a` is strictly
    /// better, or tied with the lower grid index. Keeping this in one
    /// place is what lets the search strategies provably agree with the
    /// exhaustive campaign bit for bit.
    pub fn wins(&self, a: CellScore, ai: usize, b: CellScore, bi: usize) -> bool {
        self.better(a, b) || (!self.better(b, a) && ai < bi)
    }

    /// The best cell of a result set: the exhaustive-campaign reference
    /// the search must reproduce. Ties go to the lowest grid index;
    /// `None` when every cell failed.
    pub fn argbest<'a>(
        &self,
        results: impl IntoIterator<Item = &'a ScenarioResult>,
    ) -> Option<&'a ScenarioResult> {
        let mut best: Option<(&ScenarioResult, CellScore)> = None;
        for r in results {
            let Some(score) = self.score(r) else { continue };
            let wins = match &best {
                None => true,
                Some((br, bs)) => self.wins(score, r.scenario.index, *bs, br.scenario.index),
            };
            if wins {
                best = Some((r, score));
            }
        }
        best.map(|(r, _)| r)
    }

    /// Human-readable form, e.g.
    /// `maximize energy_saving_pct s.t. delay_overhead_pct <= 5`.
    pub fn describe(&self) -> String {
        let verb = match self.direction {
            Direction::Maximize => "maximize",
            Direction::Minimize => "minimize",
        };
        match &self.constraint {
            Some(c) => format!("{verb} {} s.t. {c}", self.metric.label()),
            None => format!("{verb} {}", self.metric.label()),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Two or more objectives optimized **jointly**: the Pareto search's
/// notion of "best" is the non-dominated front, not a single winner.
///
/// Each component [`Objective`] keeps its own direction and (optional)
/// per-metric constraint; an additional shared [`Constraint`] can gate
/// feasibility of the whole cell. A cell is feasible only when *every*
/// constraint holds, and any feasible cell dominates every infeasible
/// one.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiObjective {
    /// The jointly optimized objectives (at least two).
    pub objectives: Vec<Objective>,
    /// Optional shared feasibility bound on top of the per-objective
    /// constraints.
    pub constraint: Option<Constraint>,
}

/// One evaluated cell's standing under a [`MultiObjective`]: the
/// objective values in declaration order, plus joint feasibility.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiScore {
    /// Objective metric values, one per [`MultiObjective::objectives`]
    /// entry, in declaration order.
    pub values: Vec<f64>,
    /// `true` when every constraint (shared and per-objective) holds.
    pub feasible: bool,
}

impl MultiObjective {
    /// Builds a multi-objective from its components.
    ///
    /// # Errors
    ///
    /// Returns a description when fewer than two objectives are given —
    /// a single objective is a scalar search, not a front.
    pub fn new(objectives: Vec<Objective>) -> Result<Self, String> {
        if objectives.len() < 2 {
            return Err(format!(
                "a Pareto front needs at least two objectives, got {}",
                objectives.len()
            ));
        }
        Ok(Self {
            objectives,
            constraint: None,
        })
    }

    /// Parses a comma-separated list of objective expressions, e.g.
    /// `max:energy_saving, min:delay` (each component as in
    /// [`Objective::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a description when any component fails to parse or fewer
    /// than two are given.
    pub fn parse(s: &str) -> Result<Self, String> {
        let objectives: Vec<Objective> = s
            .split(',')
            .map(|part| Objective::parse(part.trim()))
            .collect::<Result<_, _>>()?;
        Self::new(objectives)
    }

    /// This multi-objective with a shared feasibility constraint.
    pub fn with_constraint(mut self, constraint: Constraint) -> Self {
        self.constraint = Some(constraint);
        self
    }

    /// Scores one result; `None` for failed (panicked) cells.
    pub fn score(&self, result: &ScenarioResult) -> Option<MultiScore> {
        let mut values = Vec::with_capacity(self.objectives.len());
        let mut feasible = match self.constraint {
            Some(c) => c.holds(c.metric.extract(result)?),
            None => true,
        };
        for objective in &self.objectives {
            let score = objective.score(result)?;
            values.push(score.value);
            feasible &= score.feasible;
        }
        Some(MultiScore { values, feasible })
    }

    /// Strict Pareto dominance: feasible dominates infeasible; among
    /// cells of equal feasibility, `a` dominates `b` when it is no worse
    /// in **every** objective (each in its own direction) and strictly
    /// better in at least one. Equal score vectors dominate neither way,
    /// so duplicated optima all stay on the front.
    pub fn dominates(&self, a: &MultiScore, b: &MultiScore) -> bool {
        if a.feasible != b.feasible {
            return a.feasible;
        }
        let mut strictly_better = false;
        for (objective, (&va, &vb)) in self.objectives.iter().zip(a.values.iter().zip(&b.values)) {
            let cmp = va.total_cmp(&vb);
            let (better, worse) = match objective.direction {
                Direction::Maximize => (std::cmp::Ordering::Greater, std::cmp::Ordering::Less),
                Direction::Minimize => (std::cmp::Ordering::Less, std::cmp::Ordering::Greater),
            };
            if cmp == worse {
                return false;
            }
            if cmp == better {
                strictly_better = true;
            }
        }
        strictly_better
    }

    /// The **one** non-dominated filter every front consumer shares
    /// (brute-force reference, search strategy, trajectory accounting):
    /// flag `i` is `true` when some other score dominates `scores[i]`.
    /// O(n²), fine at search scales; a future dominance variant
    /// (epsilon, hypervolume) changes exactly this function.
    pub fn dominated_flags(&self, scores: &[&MultiScore]) -> Vec<bool> {
        scores
            .iter()
            .map(|s| scores.iter().any(|other| self.dominates(other, s)))
            .collect()
    }

    /// The non-dominated front of a result set — the brute-force
    /// reference a full-budget Pareto search must reproduce. Failed
    /// cells never appear; the front comes back sorted by grid index.
    pub fn front<'a>(
        &self,
        results: impl IntoIterator<Item = &'a ScenarioResult>,
    ) -> Vec<&'a ScenarioResult> {
        let scored: Vec<(&ScenarioResult, MultiScore)> = results
            .into_iter()
            .filter_map(|r| self.score(r).map(|s| (r, s)))
            .collect();
        let flags = self.dominated_flags(&scored.iter().map(|(_, s)| s).collect::<Vec<_>>());
        let mut front: Vec<&ScenarioResult> = scored
            .iter()
            .zip(&flags)
            .filter(|(_, dominated)| !**dominated)
            .map(|((r, _), _)| *r)
            .collect();
        front.sort_by_key(|r| r.scenario.index);
        front
    }

    /// Human-readable form, e.g. `maximize energy_saving_pct, minimize
    /// delay_overhead_pct s.t. final_soc >= 0.5`.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self.objectives.iter().map(Objective::describe).collect();
        match &self.constraint {
            Some(c) => format!("{} s.t. {c}", parts.join(", ")),
            None => parts.join(", "),
        }
    }
}

impl fmt::Display for MultiObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Short CLI-friendly aliases for the metric labels.
const METRIC_ALIASES: &[(&str, Metric)] = &[
    ("energy_saving", Metric::EnergySavingPct),
    ("energy", Metric::EnergyJ),
    ("delay", Metric::DelayOverheadPct),
    ("temp_reduction", Metric::TempReductionPct),
    ("latency", Metric::MeanLatencyUs),
    ("low_power", Metric::LowPowerFrac),
    ("soc", Metric::FinalSoc),
];

/// Parses a metric by its report label (`energy_saving_pct`, …) or a
/// short alias (`energy_saving`, `energy`, `delay`, `temp_reduction`,
/// `latency`, `low_power`, `soc`).
///
/// # Errors
///
/// Returns a description listing the accepted names.
pub fn parse_metric(s: &str) -> Result<Metric, String> {
    if let Some(m) = Metric::ALL.into_iter().find(|m| m.label() == s) {
        return Ok(m);
    }
    if let Some((_, m)) = METRIC_ALIASES.iter().find(|(alias, _)| *alias == s) {
        return Ok(*m);
    }
    let labels: Vec<&str> = Metric::ALL.iter().map(|m| m.label()).collect();
    let aliases: Vec<&str> = METRIC_ALIASES.iter().map(|(a, _)| *a).collect();
    Err(format!(
        "unknown metric '{s}' (expected one of: {}; aliases: {})",
        labels.join(", "),
        aliases.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn result_with(index: usize, saving: f64, delay: f64) -> ScenarioResult {
        let spec = CampaignSpec::default_sweep();
        let mut cell = spec.cell_at(0);
        cell.index = index;
        let mut metrics = crate::runner::ScenarioMetrics {
            completed: 1,
            total_tasks: 1,
            deferred: 0,
            energy_j: 1.0,
            baseline_energy_j: 1.0,
            energy_saving_pct: saving,
            temp_reduction_pct: 0.0,
            delay_overhead_pct: delay,
            mean_latency_us: 10.0,
            max_temp_c: 30.0,
            final_soc: 0.9,
            low_power_frac: 0.5,
        };
        metrics.energy_j = 100.0 - saving;
        ScenarioResult {
            scenario: cell,
            metrics: Some(metrics),
            error: None,
        }
    }

    #[test]
    fn parse_labels_aliases_and_prefixes() {
        assert_eq!(
            Objective::parse("energy_saving_pct").unwrap(),
            Objective::for_metric(Metric::EnergySavingPct)
        );
        assert_eq!(
            Objective::parse("energy_saving").unwrap().metric,
            Metric::EnergySavingPct
        );
        let min_saving = Objective::parse("min:energy_saving").unwrap();
        assert_eq!(min_saving.direction, Direction::Minimize);
        let max_energy = Objective::parse("max:energy_j").unwrap();
        assert_eq!(max_energy.direction, Direction::Maximize);
        assert!(Objective::parse("warp_factor")
            .unwrap_err()
            .contains("unknown metric"));
        assert!(Objective::parse("most:energy")
            .unwrap_err()
            .contains("prefix"));
    }

    #[test]
    fn natural_directions_follow_the_metric() {
        assert_eq!(
            Objective::for_metric(Metric::EnergyJ).direction,
            Direction::Minimize
        );
        assert_eq!(
            Objective::for_metric(Metric::EnergySavingPct).direction,
            Direction::Maximize
        );
    }

    #[test]
    fn constraints_parse_and_gate_feasibility() {
        let c = Constraint::parse("delay_overhead_pct<=5").unwrap();
        assert!(c.holds(5.0) && !c.holds(5.1));
        let c = Constraint::parse(" final_soc >= 0.5 ").unwrap();
        assert!(c.holds(0.5) && !c.holds(0.4));
        assert!(Constraint::parse("delay_overhead_pct=5")
            .unwrap_err()
            .contains("must look like"));
        assert!(Constraint::parse("nope<=5")
            .unwrap_err()
            .contains("unknown metric"));
        assert!(Constraint::parse("final_soc<=lots")
            .unwrap_err()
            .contains("not a number"));
    }

    #[test]
    fn feasible_cells_outrank_better_infeasible_ones() {
        let objective = Objective::parse("energy_saving")
            .unwrap()
            .with_constraint(Constraint::parse("delay_overhead_pct<=3").unwrap());
        let feasible = result_with(0, 10.0, 1.0);
        let infeasible = result_with(1, 50.0, 9.0);
        let best = objective.argbest([&infeasible, &feasible]).unwrap();
        assert_eq!(best.scenario.index, 0);
        // without the constraint the bigger saving wins
        let best = Objective::parse("energy_saving")
            .unwrap()
            .argbest([&infeasible, &feasible])
            .unwrap();
        assert_eq!(best.scenario.index, 1);
    }

    #[test]
    fn ties_break_to_the_lowest_grid_index() {
        let objective = Objective::parse("energy_saving").unwrap();
        let a = result_with(7, 10.0, 1.0);
        let b = result_with(3, 10.0, 1.0);
        assert_eq!(objective.argbest([&a, &b]).unwrap().scenario.index, 3);
        assert_eq!(objective.argbest([&b, &a]).unwrap().scenario.index, 3);
    }

    #[test]
    fn multi_objective_needs_two_components_and_parses_lists() {
        assert!(MultiObjective::parse("energy_saving")
            .unwrap_err()
            .contains("at least two"));
        let multi = MultiObjective::parse("max:energy_saving, min:delay").unwrap();
        assert_eq!(multi.objectives.len(), 2);
        assert_eq!(multi.objectives[0].metric, Metric::EnergySavingPct);
        assert_eq!(multi.objectives[1].metric, Metric::DelayOverheadPct);
        assert_eq!(multi.objectives[1].direction, Direction::Minimize);
        assert!(MultiObjective::parse("energy_saving,warp")
            .unwrap_err()
            .contains("unknown metric"));
        assert!(multi.describe().contains("maximize energy_saving_pct"));
        assert!(multi.describe().contains("minimize delay_overhead_pct"));
    }

    #[test]
    fn dominance_is_componentwise_strict_and_feasibility_first() {
        let multi = MultiObjective::parse("energy_saving,min:delay").unwrap();
        let score = |saving: f64, delay: f64, feasible: bool| MultiScore {
            values: vec![saving, delay],
            feasible,
        };
        // better in both
        assert!(multi.dominates(&score(10.0, 1.0, true), &score(5.0, 2.0, true)));
        // better in one, equal in the other
        assert!(multi.dominates(&score(10.0, 1.0, true), &score(10.0, 2.0, true)));
        // trade-off: neither dominates
        assert!(!multi.dominates(&score(10.0, 2.0, true), &score(5.0, 1.0, true)));
        assert!(!multi.dominates(&score(5.0, 1.0, true), &score(10.0, 2.0, true)));
        // equal vectors: neither dominates (duplicated optima co-exist)
        assert!(!multi.dominates(&score(5.0, 1.0, true), &score(5.0, 1.0, true)));
        // feasible dominates infeasible regardless of values
        assert!(multi.dominates(&score(0.0, 9.0, true), &score(99.0, 0.0, false)));
        assert!(!multi.dominates(&score(99.0, 0.0, false), &score(0.0, 9.0, true)));
    }

    #[test]
    fn front_keeps_exactly_the_non_dominated_cells() {
        let multi = MultiObjective::parse("energy_saving,min:delay").unwrap();
        let a = result_with(0, 10.0, 5.0); // dominated by c
        let b = result_with(1, 30.0, 9.0); // front (best saving)
        let c = result_with(2, 20.0, 2.0); // front (trade-off)
        let d = result_with(3, 5.0, 1.0); // front (best delay)
        let failed = ScenarioResult {
            scenario: result_with(4, 0.0, 0.0).scenario,
            metrics: None,
            error: Some("boom".into()),
        };
        let front = multi.front([&b, &failed, &d, &a, &c]);
        let indices: Vec<usize> = front.iter().map(|r| r.scenario.index).collect();
        assert_eq!(indices, vec![1, 2, 3], "sorted by grid index");
    }

    #[test]
    fn shared_constraint_gates_the_whole_front() {
        let multi = MultiObjective::parse("energy_saving,min:delay")
            .unwrap()
            .with_constraint(Constraint::parse("delay_overhead_pct<=3").unwrap());
        let feasible = result_with(0, 10.0, 2.0);
        let infeasible = result_with(1, 50.0, 9.0); // better saving, violates bound
        assert!(multi.score(&feasible).unwrap().feasible);
        assert!(!multi.score(&infeasible).unwrap().feasible);
        let front = multi.front([&infeasible, &feasible]);
        let indices: Vec<usize> = front.iter().map(|r| r.scenario.index).collect();
        assert_eq!(indices, vec![0], "feasible cells dominate infeasible ones");
    }

    #[test]
    fn failed_cells_never_win() {
        let objective = Objective::parse("energy_saving").unwrap();
        let ok = result_with(5, 1.0, 1.0);
        let failed = ScenarioResult {
            scenario: ok.scenario,
            metrics: None,
            error: Some("boom".into()),
        };
        assert!(objective.score(&failed).is_none());
        assert_eq!(objective.argbest([&failed, &ok]).unwrap().scenario.index, 5);
        assert!(objective.argbest([&failed]).is_none());
    }
}
