//! The `dpm serve` daemon: a long-running campaign service with an
//! HTTP/JSON job API over the lease/archive layer.
//!
//! The daemon owns a [`CampaignStore`] root and exposes it over the
//! [`crate::http`] core:
//!
//! | Method | Path | Meaning |
//! |---|---|---|
//! | `POST` | `/campaigns` | submit a TOML (or JSON) spec; dedups by spec fingerprint |
//! | `GET`  | `/campaigns` | list campaigns with archived/leased/pending counts |
//! | `GET`  | `/campaigns/{id}` | the grid with per-cell lifecycle states |
//! | `GET`  | `/campaigns/{id}/report` | the campaign report (`?per_scenario=1` for full results) |
//! | `GET`  | `/campaigns/{id}/best` | best cell under `?objective=` (default `energy_saving`) |
//! | `GET`  | `/campaigns/{id}/pareto` | non-dominated front under `?objectives=a,b` |
//! | `GET`  | `/campaigns/{id}/events` | chunked NDJSON long-poll of cell completions |
//! | `POST` | `/campaigns/{id}/gc` | archive hygiene, returns the [`GcReport`] |
//! | `POST` | `/campaigns/{id}/compact` | rewrite the archive into one segment, returns the [`crate::archive::CompactReport`] |
//! | `GET`  | `/healthz` | liveness probe |
//! | `POST` | `/shutdown` | graceful shutdown (drain in-flight groups, release leases) |
//!
//! Three invariants carry over from the batch layers unchanged:
//!
//! * **Submission is idempotent.** A campaign's id is its spec
//!   fingerprint, so resubmitting — from any number of clients,
//!   concurrently — resolves to the same campaign directory and never
//!   duplicates work (leases partition the grid regardless).
//! * **Completed campaigns are served, never re-run.** `/report`,
//!   `/best` and `/pareto` answer straight from the archive with zero
//!   fresh simulations — a `GET` cannot start a simulation — and the
//!   report bytes are identical to `dpm campaign run` on the same spec.
//! * **The lease protocol is the only coordination.** The daemon's own
//!   job executor claims work exactly like an external `dpm worker DIR`
//!   attached to the campaign directory; both kinds of worker can drain
//!   one grid together.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::archive::{GcReport, LeaseConfig, DEFAULT_LEASE_POLL_MS, DEFAULT_LEASE_TTL_MS};
use crate::http::{
    error_body, read_request, write_error, write_json, BoundedPool, ChunkedWriter, HttpError,
    Request,
};
use crate::objective::{Constraint, MultiObjective, Objective};
use crate::report::run_stats_line;
use crate::runner::{run_campaign_with, Fidelity, RunnerConfig, RUN_CANCELLED};
use crate::store::{completed_run, grid_json, report_json, status_of, CampaignStore};
use crate::toml_spec::SearchDefaults;

/// Connection-handler threads; each long-poll `/events` stream occupies
/// one for its duration, so the pool is sized above the expected number
/// of concurrent watchers plus control requests.
const HTTP_THREADS: usize = 8;

/// Default `/events` long-poll budget, and its ceiling.
const EVENT_WAIT_DEFAULT_MS: u64 = 30_000;
const EVENT_WAIT_MAX_MS: u64 = 120_000;

/// Poll interval while an `/events` stream waits for archive progress.
const EVENT_POLL_MS: u64 = 100;

/// Options for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, `HOST:PORT` (`:0` picks a free port; the bound
    /// address is printed and returned).
    pub addr: String,
    /// In-daemon campaign executor slots: how many submitted campaigns
    /// run concurrently inside the daemon. `0` disables in-daemon
    /// execution entirely — the daemon only coordinates, and attached
    /// `dpm worker DIR` processes do all simulation.
    pub job_slots: usize,
    /// Simulation threads per executor slot; `0` = machine parallelism.
    pub threads: usize,
    /// Share always-`ON1` baselines within each job (default on).
    pub dedup_baselines: bool,
    /// Lease TTL for the daemon's own claims and for liveness judgement.
    pub ttl_ms: u64,
    /// Archive poll interval for the daemon's executor.
    pub poll_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            job_slots: 1,
            threads: 0,
            dedup_baselines: true,
            ttl_ms: DEFAULT_LEASE_TTL_MS,
            poll_ms: DEFAULT_LEASE_POLL_MS,
        }
    }
}

/// Lifecycle of one submitted campaign inside the daemon's queue.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobStatus {
    /// Waiting for an executor slot.
    Queued,
    /// An executor slot is driving `run_cells_leased` on it.
    Running,
    /// Every cell archived.
    Complete,
    /// Stopped by graceful shutdown; resubmission (or any worker)
    /// resumes from the archive.
    Cancelled,
    /// The run returned an error.
    Failed(String),
}

impl JobStatus {
    fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Complete => "complete",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// The daemon's job queue: pending campaign ids plus the status of every
/// campaign this daemon has touched.
#[derive(Debug, Default)]
struct JobBoard {
    queue: VecDeque<String>,
    status: HashMap<String, JobStatus>,
}

/// Per-campaign event history: NDJSON lines appended as cells are
/// discovered archived (whoever archived them — this daemon's executor
/// or an attached external worker), closed by one terminal `complete`
/// event. Streams replay from any cursor, so late or reconnecting
/// clients miss nothing.
#[derive(Debug, Default)]
struct EventLog {
    lines: Vec<String>,
    announced: Vec<bool>,
    terminal: bool,
}

/// Shared daemon state.
#[derive(Debug)]
struct ServerState {
    store: CampaignStore,
    options: ServeOptions,
    addr: SocketAddr,
    /// Accept no new work; flips once, never back.
    shutdown: AtomicBool,
    /// Cooperative cancel for in-flight runs (drain current group).
    cancel: Arc<AtomicBool>,
    jobs: Mutex<JobBoard>,
    jobs_ready: Condvar,
    events: Mutex<HashMap<String, EventLog>>,
    /// Serializes submissions: two concurrent submits of the *same* new
    /// spec would otherwise race their `campaign.toml` tmp+rename.
    submit_lock: Mutex<()>,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Initiates graceful shutdown: stop accepting, cancel in-flight
    /// runs after their current group, wake every sleeper, and unblock
    /// the accept loop with a self-connection.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.cancel.store(true, Ordering::Relaxed);
        self.jobs_ready.notify_all();
        let _ = TcpStream::connect(self.addr);
    }

    /// Queues a campaign for the in-daemon executor unless it is already
    /// queued, running, or has no executor to run on. Returns the status
    /// label after the attempt.
    fn enqueue(&self, id: &str) -> &'static str {
        let mut jobs = self.jobs.lock().expect("job board poisoned");
        match jobs.status.get(id) {
            Some(JobStatus::Queued) => return JobStatus::Queued.label(),
            Some(JobStatus::Running) => return JobStatus::Running.label(),
            _ => {}
        }
        if self.options.job_slots == 0 {
            // coordination-only daemon: external workers drain the grid
            return "external";
        }
        jobs.status.insert(id.to_string(), JobStatus::Queued);
        jobs.queue.push_back(id.to_string());
        self.jobs_ready.notify_one();
        JobStatus::Queued.label()
    }

    fn job_label(&self, id: &str) -> &'static str {
        let jobs = self.jobs.lock().expect("job board poisoned");
        jobs.status.get(id).map_or("none", JobStatus::label)
    }

    fn set_status(&self, id: &str, status: JobStatus) {
        let mut jobs = self.jobs.lock().expect("job board poisoned");
        jobs.status.insert(id.to_string(), status);
    }

    /// Scans the archive and appends an event line for every newly
    /// archived cell, plus the terminal `complete` line once the grid
    /// drains. Safe to call from any thread, any number of times.
    fn refresh_events(&self, id: &str) -> Result<(), String> {
        let (archive, spec) = self.store.open_campaign(id)?;
        let states = archive.cell_states(&spec, self.options.ttl_ms);
        let cells = spec.expand();
        let mut logs = self.events.lock().expect("event log poisoned");
        let log = logs.entry(id.to_string()).or_default();
        if log.terminal {
            return Ok(());
        }
        log.announced.resize(states.len(), false);
        let mut archived = 0usize;
        for (i, state) in states.iter().enumerate() {
            if *state != crate::archive::CellState::Archived {
                continue;
            }
            archived += 1;
            if !log.announced[i] {
                log.announced[i] = true;
                let seq = log.lines.len();
                log.lines.push(event_line(&[
                    ("seq", serde::Serialize::to_value(&seq)),
                    ("event", serde_json::Value::String("cell".into())),
                    ("index", serde::Serialize::to_value(&i)),
                    ("label", serde_json::Value::String(cells[i].label())),
                ]));
            }
        }
        if archived == states.len() {
            let seq = log.lines.len();
            log.lines.push(event_line(&[
                ("seq", serde::Serialize::to_value(&seq)),
                ("event", serde_json::Value::String("complete".into())),
                ("cells", serde::Serialize::to_value(&archived)),
            ]));
            log.terminal = true;
        }
        Ok(())
    }
}

/// One compact JSON object as an NDJSON line.
fn event_line(fields: &[(&str, serde_json::Value)]) -> String {
    serde_json::Value::Object(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    )
    .to_json()
}

/// A running daemon: its bound address plus the handle that joins it.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: std::thread::JoinHandle<()>,
}

impl RunningServer {
    /// The actually-bound address (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon shuts down (via `POST /shutdown`).
    pub fn join(self) {
        let _ = self.accept.join();
    }

    /// Initiates graceful shutdown from the owning process and waits for
    /// the drain: in-flight groups finish, leases are released, handler
    /// and executor threads join.
    pub fn shutdown(self) {
        self.state.request_shutdown();
        let _ = self.accept.join();
    }
}

/// Binds the address and spawns the daemon: an accept loop feeding a
/// bounded handler pool, plus `job_slots` campaign executor threads.
/// Returns once the socket is listening; the daemon runs until
/// `POST /shutdown` (or [`RunningServer::shutdown`]).
///
/// # Errors
///
/// Returns a description when the store root cannot be opened or the
/// address cannot be bound.
pub fn spawn(root: &Path, options: ServeOptions) -> Result<RunningServer, String> {
    let store = CampaignStore::open(root)?;
    let listener = TcpListener::bind(&options.addr)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let state = Arc::new(ServerState {
        store,
        options: options.clone(),
        addr,
        shutdown: AtomicBool::new(false),
        cancel: Arc::new(AtomicBool::new(false)),
        jobs: Mutex::new(JobBoard::default()),
        jobs_ready: Condvar::new(),
        events: Mutex::new(HashMap::new()),
        submit_lock: Mutex::new(()),
    });

    let executors: Vec<_> = (0..options.job_slots)
        .map(|slot| {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("dpm-serve-exec-{slot}"))
                .spawn(move || executor_loop(&state))
                .expect("spawn executor thread")
        })
        .collect();

    let pool = {
        let state = Arc::clone(&state);
        BoundedPool::new(HTTP_THREADS, move |stream| {
            handle_connection(&state, stream);
        })
    };

    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("dpm-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if state.shutting_down() {
                        break;
                    }
                    match conn {
                        Ok(stream) => pool.submit(stream),
                        Err(_) => {
                            if state.shutting_down() {
                                break;
                            }
                        }
                    }
                }
                // drain: finish queued connections, then the executors
                pool.shutdown();
                for handle in executors {
                    let _ = handle.join();
                }
            })
            .expect("spawn accept thread")
    };

    Ok(RunningServer {
        addr,
        state,
        accept,
    })
}

/// One executor slot: wait for a queued campaign, drive the leased
/// runner on it (exactly like an attached worker), record the outcome.
fn executor_loop(state: &ServerState) {
    loop {
        let id = {
            let mut jobs = state.jobs.lock().expect("job board poisoned");
            loop {
                if state.shutting_down() {
                    return;
                }
                if let Some(id) = jobs.queue.pop_front() {
                    jobs.status.insert(id.clone(), JobStatus::Running);
                    break id;
                }
                jobs = state.jobs_ready.wait(jobs).expect("job board poisoned");
            }
        };
        let outcome = run_one(state, &id);
        state.set_status(
            &id,
            match outcome {
                Ok(()) => JobStatus::Complete,
                Err(e) if e == RUN_CANCELLED => JobStatus::Cancelled,
                Err(e) => {
                    eprintln!("dpm serve: campaign {id} failed: {e}");
                    JobStatus::Failed(e)
                }
            },
        );
        let _ = state.refresh_events(&id);
    }
}

/// Runs one campaign to completion on the leased path.
fn run_one(state: &ServerState, id: &str) -> Result<(), String> {
    let (archive, spec) = state.store.open_campaign(id)?;
    let o = &state.options;
    let config = RunnerConfig {
        threads: o.threads,
        progress: false,
        dedup_baselines: o.dedup_baselines,
        lease: Some(
            LeaseConfig::for_process()
                .with_ttl_ms(o.ttl_ms)
                .with_poll_ms(o.poll_ms),
        ),
        cancel: Some(Arc::clone(&state.cancel)),
        fidelity: Fidelity::Fine,
        speculative: Vec::new(),
    };
    let run = run_campaign_with(&spec, &config, Some(&archive))?;
    println!(
        "dpm serve: campaign {id} complete; {}",
        run_stats_line(&run.stats)
    );
    Ok(())
}

/// Reads one request and routes it; every protocol failure becomes a
/// JSON error response, every handler panic a 500.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    // a stalled or silent client must not pin a handler thread forever
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
        Err(HttpError::TooLarge(n)) => {
            let _ = write_error(
                &mut stream,
                413,
                &format!("request body of {n} bytes exceeds the limit"),
            );
            return;
        }
        Err(HttpError::Malformed(m)) => {
            let _ = write_error(&mut stream, 400, &format!("malformed request: {m}"));
            return;
        }
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        route(state, &request, &mut stream)
    }));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(_)) => {} // client hung up mid-response; nothing to salvage
        Err(_) => {
            let _ = write_error(&mut stream, 500, "internal error (handler panicked)");
        }
    }
}

/// Maps `(method, path)` to a handler.
fn route(state: &ServerState, request: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", []) | ("GET", ["healthz"]) => write_json(
            stream,
            200,
            &serde_json::Value::Object(vec![
                ("ok".into(), serde_json::Value::Bool(true)),
                (
                    "service".into(),
                    serde_json::Value::String("dpm serve".into()),
                ),
                (
                    "draining".into(),
                    serde_json::Value::Bool(state.shutting_down()),
                ),
            ])
            .to_json(),
        ),
        ("POST", ["shutdown"]) => {
            let reply = write_json(stream, 200, "{\"ok\": true, \"draining\": true}");
            state.request_shutdown();
            reply
        }
        ("POST", ["campaigns"]) => submit(state, request, stream),
        ("GET", ["campaigns"]) => list(state, stream),
        ("GET", ["campaigns", id]) => campaign_grid(state, id, stream),
        ("GET", ["campaigns", id, "report"]) => report(state, id, request, stream),
        ("GET", ["campaigns", id, "best"]) => best(state, id, request, stream),
        ("GET", ["campaigns", id, "pareto"]) => pareto(state, id, request, stream),
        ("GET", ["campaigns", id, "events"]) => events(state, id, request, stream),
        ("POST", ["campaigns", id, "gc"]) => gc(state, id, stream),
        ("POST", ["campaigns", id, "compact"]) => compact(state, id, stream),
        (_, [] | ["healthz"] | ["shutdown"] | ["campaigns", ..]) => write_error(
            stream,
            405,
            &format!("method {} not allowed here", request.method),
        ),
        _ => write_error(stream, 404, &format!("no route for {}", request.path)),
    }
}

/// `POST /campaigns`: parse the spec (TOML, or JSON when the body leads
/// with `{`), dedup into the store, queue execution if incomplete.
fn submit(state: &ServerState, request: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    if state.shutting_down() {
        return write_error(stream, 503, "shutting down; not accepting campaigns");
    }
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return write_error(stream, 400, "spec must be UTF-8 text"),
    };
    let submission = {
        let _guard = state.submit_lock.lock().expect("submit lock poisoned");
        if body.trim_start().starts_with('{') {
            serde_json::from_str::<crate::spec::CampaignSpec>(body)
                .map_err(|e| format!("invalid JSON spec: {e}"))
                .and_then(|spec| state.store.submit_spec(spec, SearchDefaults::default()))
        } else {
            state.store.submit_toml(body)
        }
    };
    let submission = match submission {
        Ok(s) => s,
        Err(e) => return write_error(stream, 400, &e),
    };
    let status = status_of(
        &submission.id,
        &submission.archive,
        &submission.spec,
        state.options.ttl_ms,
    );
    let job = if status.complete() {
        state.set_status(&submission.id, JobStatus::Complete);
        JobStatus::Complete.label()
    } else {
        state.enqueue(&submission.id)
    };
    let _ = state.refresh_events(&submission.id);
    let mut doc = match serde::Serialize::to_value(&status) {
        serde_json::Value::Object(fields) => fields,
        _ => unreachable!("a struct serializes to an object"),
    };
    doc.push((
        "existed".into(),
        serde_json::Value::Bool(submission.existed),
    ));
    doc.push(("job".into(), serde_json::Value::String(job.into())));
    let code = if submission.existed { 200 } else { 201 };
    write_json(
        stream,
        code,
        &serde_json::Value::Object(doc).to_json_pretty(),
    )
}

/// `GET /campaigns`: every campaign in the store, with job status.
fn list(state: &ServerState, stream: &mut TcpStream) -> std::io::Result<()> {
    let statuses = match state.store.list(state.options.ttl_ms) {
        Ok(s) => s,
        Err(e) => return write_error(stream, 500, &e),
    };
    let campaigns: Vec<serde_json::Value> = statuses
        .iter()
        .map(|status| {
            let mut fields = match serde::Serialize::to_value(status) {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!("a struct serializes to an object"),
            };
            fields.push((
                "job".into(),
                serde_json::Value::String(state.job_label(&status.id).into()),
            ));
            serde_json::Value::Object(fields)
        })
        .collect();
    let doc = serde_json::Value::Object(vec![
        ("count".into(), serde::Serialize::to_value(&campaigns.len())),
        ("campaigns".into(), serde_json::Value::Array(campaigns)),
    ]);
    write_json(stream, 200, &doc.to_json_pretty())
}

/// `GET /campaigns/{id}`: the grid with per-cell lifecycle states —
/// exactly the `dpm campaign list --format json` document.
fn campaign_grid(state: &ServerState, id: &str, stream: &mut TcpStream) -> std::io::Result<()> {
    let (archive, spec) = match state.store.open_campaign(id) {
        Ok(pair) => pair,
        Err(e) => return write_error(stream, 404, &e),
    };
    let states = archive.cell_states(&spec, state.options.ttl_ms);
    write_json(stream, 200, &grid_json(&spec, Some(&states)))
}

/// Loads a campaign only if complete; otherwise answers 409 with
/// progress. The completeness gate is what guarantees a `GET` performs
/// **zero** simulations: either every cell is served from the archive,
/// or nothing is.
fn complete_or_conflict(
    state: &ServerState,
    id: &str,
    stream: &mut TcpStream,
) -> std::io::Result<Option<(crate::runner::CampaignResult, crate::runner::RunStats)>> {
    let (archive, spec) = match state.store.open_campaign(id) {
        Ok(pair) => pair,
        Err(e) => {
            write_error(stream, 404, &e)?;
            return Ok(None);
        }
    };
    match completed_run(&archive, &spec) {
        Ok(pair) => Ok(Some(pair)),
        Err(archived) => {
            let body = serde_json::Value::Object(vec![
                (
                    "error".into(),
                    serde_json::Value::String("campaign incomplete".into()),
                ),
                ("status".into(), serde::Serialize::to_value(&409u16)),
                ("archived".into(), serde::Serialize::to_value(&archived)),
                (
                    "cells".into(),
                    serde::Serialize::to_value(&spec.scenario_count()),
                ),
                (
                    "job".into(),
                    serde_json::Value::String(state.job_label(id).into()),
                ),
            ]);
            write_json(stream, 409, &body.to_json())?;
            Ok(None)
        }
    }
}

/// `GET /campaigns/{id}/report`: the campaign report, byte-identical to
/// `dpm campaign run --format json` on the same spec.
fn report(
    state: &ServerState,
    id: &str,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let Some((result, stats)) = complete_or_conflict(state, id, stream)? else {
        return Ok(());
    };
    let per_scenario = matches!(request.query_param("per_scenario"), Some("1" | "true"));
    let body = report_json(&result, per_scenario).expect("shim serializer never fails");
    // the service's honest accounting: a served report simulates nothing
    println!(
        "dpm serve: report {id} from archive; {}",
        run_stats_line(&stats)
    );
    write_json(stream, 200, &body)
}

/// Parses `?objective=`/`?constraint=` into an [`Objective`].
fn objective_from(request: &Request) -> Result<Objective, String> {
    let objective = Objective::parse(request.query_param("objective").unwrap_or("energy_saving"))?;
    match request.query_param("constraint") {
        Some(c) => Ok(objective.with_constraint(Constraint::parse(c)?)),
        None => Ok(objective),
    }
}

/// `GET /campaigns/{id}/best`: the best cell under the objective —
/// the cell a full-budget `dpm search` would report.
fn best(
    state: &ServerState,
    id: &str,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let objective = match objective_from(request) {
        Ok(o) => o,
        Err(e) => return write_error(stream, 400, &e),
    };
    let Some((result, stats)) = complete_or_conflict(state, id, stream)? else {
        return Ok(());
    };
    let best = crate::store::best_of(&result, &objective);
    println!(
        "dpm serve: best {id} from archive; {}",
        run_stats_line(&stats)
    );
    let doc = serde_json::Value::Object(vec![
        (
            "objective".into(),
            serde_json::Value::String(objective.describe()),
        ),
        (
            "best".into(),
            best.map_or(serde_json::Value::Null, |b| serde::Serialize::to_value(&b)),
        ),
    ]);
    write_json(stream, 200, &doc.to_json_pretty())
}

/// `GET /campaigns/{id}/pareto`: the non-dominated front under
/// `?objectives=a,b` (default `energy_saving,min:delay`).
fn pareto(
    state: &ServerState,
    id: &str,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let objectives = request
        .query_param("objectives")
        .unwrap_or("energy_saving,min:delay");
    let objectives = match MultiObjective::parse(objectives).and_then(|m| {
        match request.query_param("constraint") {
            Some(c) => Ok(m.with_constraint(Constraint::parse(c)?)),
            None => Ok(m),
        }
    }) {
        Ok(m) => m,
        Err(e) => return write_error(stream, 400, &e),
    };
    let Some((result, stats)) = complete_or_conflict(state, id, stream)? else {
        return Ok(());
    };
    let front = crate::store::front_of(&result, &objectives);
    println!(
        "dpm serve: pareto {id} from archive; {}",
        run_stats_line(&stats)
    );
    let doc = serde_json::Value::Object(vec![
        (
            "objectives".into(),
            serde_json::Value::String(objectives.describe()),
        ),
        ("size".into(), serde::Serialize::to_value(&front.len())),
        ("front".into(), serde::Serialize::to_value(&front)),
    ]);
    write_json(stream, 200, &doc.to_json_pretty())
}

/// `GET /campaigns/{id}/events`: chunked NDJSON long-poll. Replays the
/// event log from `?since=N`, then follows archive progress until the
/// campaign completes, the `?wait_ms=` budget runs out, or the daemon
/// shuts down. Each line is one event with a `seq` cursor; resume by
/// passing the last seen `seq + 1` as `since`.
fn events(
    state: &ServerState,
    id: &str,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    if let Err(e) = state.store.open_campaign(id) {
        return write_error(stream, 404, &e);
    }
    // an unparseable cursor is a client bug: reject it loudly instead
    // of silently replaying the whole log from 0
    let since: usize = match request.query_param("since") {
        None => 0,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                return write_error(
                    stream,
                    400,
                    &format!("invalid ?since= cursor {raw:?}: expected a non-negative integer"),
                );
            }
        },
    };
    let wait_ms: u64 = request
        .query_param("wait_ms")
        .and_then(|s| s.parse().ok())
        .unwrap_or(EVENT_WAIT_DEFAULT_MS)
        .min(EVENT_WAIT_MAX_MS);
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wait_ms);
    let mut writer = ChunkedWriter::begin(&mut *stream, 200, "application/x-ndjson")?;
    let mut cursor = since;
    loop {
        if let Err(e) = state.refresh_events(id) {
            writer.chunk(format!("{}\n", error_body(500, &e)).as_bytes())?;
            break;
        }
        let (fresh, terminal) = {
            let logs = state.events.lock().expect("event log poisoned");
            let log = logs.get(id).expect("refresh_events created the log");
            let fresh: Vec<String> = log.lines.get(cursor..).unwrap_or(&[]).to_vec();
            (fresh, log.terminal)
        };
        for line in &fresh {
            cursor += 1;
            writer.chunk(format!("{line}\n").as_bytes())?;
        }
        if terminal || state.shutting_down() || std::time::Instant::now() >= deadline {
            break;
        }
        // sleep in short slices, re-checking the shutdown flag: a
        // long-polling client must never make POST /shutdown wait out
        // the remainder of a full poll tick before the drain completes
        let mut remaining = EVENT_POLL_MS;
        while remaining > 0 && !state.shutting_down() {
            let slice = remaining.min(5);
            std::thread::sleep(std::time::Duration::from_millis(slice));
            remaining -= slice;
        }
    }
    writer.finish()
}

/// `POST /campaigns/{id}/gc`: archive hygiene, reported as JSON.
fn gc(state: &ServerState, id: &str, stream: &mut TcpStream) -> std::io::Result<()> {
    match state.store.gc(id, state.options.ttl_ms) {
        Ok(report) => {
            let body = serde_json::to_string_pretty::<GcReport>(&report)
                .expect("shim serializer never fails");
            write_json(stream, 200, &body)
        }
        Err(e) => write_error(stream, 404, &e),
    }
}

/// `POST /campaigns/{id}/compact`: rewrite the archive into a single
/// fresh segment, reported as JSON. A campaign with unexpired work
/// leases refuses with 409 (workers may still be appending; the client
/// retries once they finish) rather than silently dropping their
/// concurrent appends.
fn compact(state: &ServerState, id: &str, stream: &mut TcpStream) -> std::io::Result<()> {
    match state.store.compact(id) {
        Ok(report) => {
            let body = serde_json::to_string_pretty::<crate::archive::CompactReport>(&report)
                .expect("shim serializer never fails");
            write_json(stream, 200, &body)
        }
        Err(e) if e.contains("unexpired lease") => write_error(stream, 409, &e),
        Err(e) => write_error(stream, 404, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_status_labels_are_stable_api() {
        assert_eq!(JobStatus::Queued.label(), "queued");
        assert_eq!(JobStatus::Running.label(), "running");
        assert_eq!(JobStatus::Complete.label(), "complete");
        assert_eq!(JobStatus::Cancelled.label(), "cancelled");
        assert_eq!(JobStatus::Failed("x".into()).label(), "failed");
    }

    #[test]
    fn serve_options_default_to_one_slot_on_an_ephemeral_port() {
        let o = ServeOptions::default();
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.job_slots, 1);
        assert!(o.dedup_baselines);
    }

    #[test]
    fn event_lines_are_compact_json() {
        let line = event_line(&[
            ("seq", serde::Serialize::to_value(&3usize)),
            ("event", serde_json::Value::String("cell".into())),
        ]);
        assert_eq!(line, "{\"seq\":3,\"event\":\"cell\"}");
    }
}
