//! Parallel campaign execution.
//!
//! Scenarios are pulled from a shared atomic counter by a pool of scoped
//! OS threads (work stealing degenerates to self-scheduling because every
//! unit of work is independent), executed with panic isolation, and
//! written back into an index-addressed slot table — so the result order,
//! and everything aggregated from it, is **identical for any thread
//! count**. Each scenario runs its configuration *and* the always-`ON1`
//! baseline on the same traces, yielding Table 2-style relative metrics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dpm_kernel::Simulation;
use dpm_soc::experiment::table2_row;
use dpm_soc::{build_soc, collect_metrics, ControllerKind, SocConfig, SocMetrics};
use dpm_units::SimTime;

use crate::spec::{CampaignSpec, ScenarioSpec};

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Worker threads; `0` selects the machine's available parallelism.
    pub threads: usize,
    /// Progress callback, called after each finished scenario with
    /// `(done, total)`.
    pub progress: bool,
}

impl RunnerConfig {
    /// A serial runner (used as the speedup reference by the benches).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            progress: false,
        }
    }

    /// The effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Flat, compact metrics of one scenario (everything Table 2 reports,
/// plus absolute energies and residency).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioMetrics {
    /// Tasks completed by the scenario run.
    pub completed: usize,
    /// Tasks in the traces.
    pub total_tasks: usize,
    /// Tasks unfinished at the horizon.
    pub deferred: usize,
    /// Scenario energy (J), transitions and fan included.
    pub energy_j: f64,
    /// Baseline (always-`ON1`) energy (J) on the same traces.
    pub baseline_energy_j: f64,
    /// Energy saving vs the baseline (%).
    pub energy_saving_pct: f64,
    /// Temperature-elevation reduction vs the baseline (%).
    pub temp_reduction_pct: f64,
    /// Mean task latency overhead vs the baseline (%).
    pub delay_overhead_pct: f64,
    /// Mean arrival-to-completion latency (µs); zero when nothing
    /// completed.
    pub mean_latency_us: f64,
    /// Hottest observed temperature (°C).
    pub max_temp_c: f64,
    /// Final battery state of charge (0–1).
    pub final_soc: f64,
    /// Fraction of IP-time spent in a low-power state.
    pub low_power_frac: f64,
}

impl ScenarioMetrics {
    fn from_runs(dpm: &SocMetrics, baseline: &SocMetrics, horizon: SimTime) -> Self {
        let row = table2_row(dpm, baseline);
        let span = horizon.as_secs_f64() * dpm.per_ip.len().max(1) as f64;
        let low_power: f64 = dpm
            .per_ip
            .iter()
            .map(|ip| ip.low_power_time().as_secs_f64())
            .sum();
        Self {
            completed: dpm.completed(),
            total_tasks: dpm.total_tasks(),
            deferred: row.deferred,
            energy_j: dpm.total_energy.as_joules(),
            baseline_energy_j: baseline.total_energy.as_joules(),
            energy_saving_pct: row.energy_saving_pct,
            temp_reduction_pct: row.temp_reduction_pct,
            delay_overhead_pct: row.delay_overhead_pct,
            mean_latency_us: dpm.mean_latency().map_or(0.0, |d| d.as_secs_f64() * 1e6),
            max_temp_c: dpm.max_temp.as_celsius(),
            final_soc: dpm.final_soc,
            low_power_frac: if span > 0.0 { low_power / span } else { 0.0 },
        }
    }
}

/// One executed scenario: its spec plus metrics or the panic message.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioResult {
    /// The grid cell.
    pub scenario: ScenarioSpec,
    /// Metrics on success; `None` when the scenario panicked.
    pub metrics: Option<ScenarioMetrics>,
    /// The panic message when the scenario failed.
    pub error: Option<String>,
}

/// A finished campaign: every scenario result in grid order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignResult {
    /// Campaign name (from the spec).
    pub name: String,
    /// Horizon in milliseconds (from the spec).
    pub horizon_ms: u64,
    /// Master seed (from the spec).
    pub master_seed: u64,
    /// Results, indexed exactly like [`CampaignSpec::expand`].
    pub results: Vec<ScenarioResult>,
}

impl CampaignResult {
    /// Scenarios that panicked.
    pub fn failures(&self) -> impl Iterator<Item = &ScenarioResult> {
        self.results.iter().filter(|r| r.error.is_some())
    }
}

fn run_to_metrics(cfg: &SocConfig, horizon: SimTime) -> SocMetrics {
    let mut sim = Simulation::new();
    let handles = build_soc(&mut sim, cfg);
    sim.run_until(horizon);
    collect_metrics(&mut sim, &handles, horizon)
}

/// Executes one scenario: the configured run plus its always-`ON1`
/// baseline on identical traces.
pub fn run_scenario_cell(spec: &CampaignSpec, cell: &ScenarioSpec) -> ScenarioMetrics {
    let horizon = spec.horizon();
    let cfg = cell.build_config(spec);
    let baseline_cfg = cfg.clone().with_controller(ControllerKind::AlwaysOn);
    let dpm = run_to_metrics(&cfg, horizon);
    let baseline = run_to_metrics(&baseline_cfg, horizon);
    ScenarioMetrics::from_runs(&dpm, &baseline, horizon)
}

/// Runs the whole campaign.
///
/// # Panics
///
/// Panics only on an invalid spec (empty axis, zero horizon); scenario
/// panics are caught per cell and reported in the result instead.
pub fn run_campaign(spec: &CampaignSpec, config: &RunnerConfig) -> CampaignResult {
    spec.validate().expect("invalid campaign spec");
    let cells = spec.expand();
    let total = cells.len();
    let threads = config.effective_threads().min(total.max(1));

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ScenarioResult>>> = (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let cell = cells[i];
                let outcome = catch_unwind(AssertUnwindSafe(|| run_scenario_cell(spec, &cell)));
                let result = match outcome {
                    Ok(metrics) => ScenarioResult {
                        scenario: cell,
                        metrics: Some(metrics),
                        error: None,
                    },
                    Err(payload) => ScenarioResult {
                        scenario: cell,
                        metrics: None,
                        error: Some(panic_message(payload.as_ref())),
                    },
                };
                *slots[i].lock().expect("result slot poisoned") = Some(result);
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if config.progress {
                    eprint!("\r  [{finished}/{total}] scenarios done");
                    if finished == total {
                        eprintln!();
                    }
                }
            });
        }
    });

    let results: Vec<ScenarioResult> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every scenario slot is filled")
        })
        .collect();
    CampaignResult {
        name: spec.name.clone(),
        horizon_ms: spec.horizon_ms,
        master_seed: spec.master_seed,
        results,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "scenario panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BatteryAxis, ControllerAxis, ThermalAxis, TuningAxis, WorkloadAxis};

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            horizon_ms: 8,
            master_seed: 7,
            initial_soc: 0.9,
            controllers: vec![ControllerAxis::Dpm, ControllerAxis::AlwaysOn],
            tunings: vec![TuningAxis::Paper],
            workloads: vec![WorkloadAxis::Low],
            seeds: vec![1, 2],
            batteries: vec![BatteryAxis::Linear],
            thermals: vec![ThermalAxis::Cool],
            ip_counts: vec![1],
        }
    }

    #[test]
    fn runs_all_scenarios_in_grid_order() {
        let spec = tiny_spec();
        let result = run_campaign(&spec, &RunnerConfig::default());
        assert_eq!(result.results.len(), spec.scenario_count());
        for (i, r) in result.results.iter().enumerate() {
            assert_eq!(r.scenario.index, i);
            assert!(r.error.is_none(), "{:?}", r.error);
            let m = r.metrics.as_ref().unwrap();
            assert!(m.energy_j > 0.0);
            assert!(m.baseline_energy_j > 0.0);
        }
    }

    #[test]
    fn always_on_cells_save_nothing() {
        let spec = tiny_spec();
        let result = run_campaign(&spec, &RunnerConfig::serial());
        for r in &result.results {
            if r.scenario.controller == ControllerAxis::AlwaysOn {
                let m = r.metrics.as_ref().unwrap();
                assert!(
                    m.energy_saving_pct.abs() < 1e-9,
                    "always-on vs always-on baseline must be neutral: {}",
                    m.energy_saving_pct
                );
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = tiny_spec();
        let serial = run_campaign(&spec, &RunnerConfig::serial());
        let parallel = run_campaign(
            &spec,
            &RunnerConfig {
                threads: 4,
                progress: false,
            },
        );
        assert_eq!(serial, parallel);
    }
}
